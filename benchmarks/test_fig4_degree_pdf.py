"""Benchmark: regenerate Figure 4 (PDF of #links/node)."""

from __future__ import annotations

from repro.experiments import fig4_degree_pdf


def test_fig4_regenerate(benchmark, scale):
    dists = benchmark.pedantic(
        fig4_degree_pdf.distributions, args=(scale,), rounds=1, iterations=1
    )
    levels = sorted(dists)
    # Every PDF is normalised.
    for pdf in dists.values():
        assert abs(sum(pdf.values()) - 1.0) < 1e-9
    # Paper claims: mass shifts to the left of the flat mean as levels grow,
    # while the maximum degree barely moves.
    flat_mean = sum(d * p for d, p in dists[levels[0]].items())
    left_flat = sum(p for d, p in dists[levels[0]].items() if d < flat_mean - 1)
    left_deep = sum(p for d, p in dists[levels[-1]].items() if d < flat_mean - 1)
    assert left_deep >= left_flat
    assert max(dists[levels[-1]]) <= max(dists[levels[0]]) + 4
