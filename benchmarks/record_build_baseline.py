"""Record the reference-vs-bulk construction baseline into ``BENCH_build.json``.

Builds every DHT family twice — once on the scalar reference path
(``use_numpy=False``) and once through the :mod:`repro.perf.build` bulk
builders — on identical inputs, taking the best of ``--repeats`` timed
builds of each, and writes the timings plus derived speedups as JSON.
Setup (id draws, hierarchy, prefix trees) happens outside the timed
region; each timed build starts from a freshly seeded RNG so both paths
see the same state.  Every measurement is validated: deterministic
families must produce identical link tables on both paths, randomized
ones must agree on mean degree.  Run from the repo root::

    PYTHONPATH=src python benchmarks/record_build_baseline.py

CAN and Can-Can use a reduced node count (``--size // 8``) because their
reference constructions compare prefixes pairwise (quadratic); everything
else builds at the full ``--size``.  The checked-in ``BENCH_build.json``
is the reference point for the bulk-construction fast path (see
``docs/performance.md``); CI re-records it at small scale on every push
as a non-gating artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.hierarchy import Hierarchy, build_uniform_hierarchy  # noqa: E402
from repro.core.idspace import IdSpace  # noqa: E402
from repro.dhts.cacophony import CacophonyNetwork  # noqa: E402
from repro.dhts.can import CANNetwork, PrefixTree  # noqa: E402
from repro.dhts.cancan import CanCanNetwork  # noqa: E402
from repro.dhts.chord import ChordNetwork  # noqa: E402
from repro.dhts.crescendo import CrescendoNetwork  # noqa: E402
from repro.dhts.kademlia import KademliaNetwork  # noqa: E402
from repro.dhts.kandy import KandyNetwork  # noqa: E402
from repro.dhts.mixed import LanCrescendoNetwork  # noqa: E402
from repro.dhts.naive import NaiveHierarchicalChord  # noqa: E402
from repro.dhts.ndchord import NDChordNetwork, NDCrescendoNetwork  # noqa: E402
from repro.dhts.symphony import SymphonyNetwork  # noqa: E402
from repro.experiments.common import FANOUT, ZIPF_EXPONENT  # noqa: E402

LEVELS = 3


def best_of(fn, repeats):
    """(best seconds, last result) over ``repeats`` timed calls of ``fn``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _hierarchy_setup(size, seed):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(
        ids, FANOUT, LEVELS, rng, distribution="zipf", zipf_exponent=ZIPF_EXPONENT
    )
    return space, hierarchy


def _prefix_setup(size, seed):
    rng = random.Random(seed)
    space = IdSpace(32)
    paths = [(f"lan{i % FANOUT}",) for i in range(size)]
    leaves = PrefixTree(space.bits).grow_aligned(paths, rng)
    hierarchy = Hierarchy()
    prefixes = {}
    for i, leaf in enumerate(leaves):
        padded = leaf.padded(space.bits)
        prefixes[padded] = leaf
        hierarchy.place(padded, paths[i])
    return space, hierarchy, prefixes


def _exact(ref, bulk):
    assert ref.links == bulk.links, "bulk links differ from reference"


def _mean_degree(net):
    return sum(len(net.links[n]) for n in net.node_ids) / net.size


def _close(ref, bulk):
    delta = abs(_mean_degree(ref) - _mean_degree(bulk))
    assert delta < 0.5, f"mean degree diverges by {delta:.2f}"


def family_specs(size):
    """(name, nodes, make(use_numpy) -> unbuilt network, validate) tuples.

    ``make`` seeds a fresh RNG per call so the reference and bulk timed
    builds start from identical state.
    """
    small = max(256, size // 8)
    specs = []

    def hier(name, ctor, validate, nodes=size):
        space, hierarchy = _hierarchy_setup(nodes, seed=len(specs) + 1)
        specs.append((name, nodes, lambda un: ctor(space, hierarchy, un), validate))

    hier("chord", lambda s, h, un: _flagged(ChordNetwork(s, h), un), _exact)
    hier("crescendo", lambda s, h, un: _flagged(CrescendoNetwork(s, h), un), _exact)
    hier(
        "symphony",
        lambda s, h, un: SymphonyNetwork(s, h, random.Random(101), use_numpy=un),
        _close,
    )
    hier(
        "cacophony",
        lambda s, h, un: CacophonyNetwork(s, h, random.Random(102), un),
        _close,
    )
    hier(
        "ndchord",
        lambda s, h, un: NDChordNetwork(s, h, random.Random(103), un),
        _close,
    )
    hier(
        "ndcrescendo",
        lambda s, h, un: NDCrescendoNetwork(s, h, random.Random(104), un),
        _close,
    )
    hier("mixed", lambda s, h, un: LanCrescendoNetwork(s, h, un), _exact)
    hier("naive", lambda s, h, un: NaiveHierarchicalChord(s, h, un), _exact)
    hier(
        "kademlia",
        lambda s, h, un: KademliaNetwork(s, h, None, 1, use_numpy=un),
        _exact,
    )
    hier(
        "kandy",
        lambda s, h, un: KandyNetwork(s, h, None, 1, use_numpy=un),
        _exact,
    )

    space, hierarchy, prefixes = _prefix_setup(small, seed=90)
    specs.append(
        ("can", small, lambda un: CANNetwork(space, hierarchy, prefixes, un), _exact)
    )
    specs.append(
        (
            "cancan",
            small,
            lambda un: CanCanNetwork(space, hierarchy, prefixes, None, use_numpy=un),
            _exact,
        )
    )
    return specs


def _flagged(net, use_numpy):
    net.use_numpy = use_numpy
    return net


def bench_builds(size, repeats):
    out = {}
    for name, nodes, make, validate in family_specs(size):
        ref_s, ref = best_of(lambda: make(False).build(), repeats)
        bulk_s, bulk = best_of(lambda: make(True).build(), repeats)
        assert ref.built_with == "python", f"{name}: reference took the bulk path"
        assert bulk.built_with == "numpy", f"{name}: bulk fell back to reference"
        validate(ref, bulk)
        out[name] = {
            "nodes": nodes,
            "reference_seconds": ref_s,
            "bulk_seconds": bulk_s,
            "speedup": ref_s / bulk_s,
            "reference_nodes_per_s": nodes / ref_s,
            "bulk_nodes_per_s": nodes / bulk_s,
        }
        print(
            f"{name:12s} n={nodes:6d}  reference {ref_s * 1e3:8.1f}ms  "
            f"bulk {bulk_s * 1e3:8.1f}ms  ({ref_s / bulk_s:.1f}x)"
        )
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_build.json"),
        help="output path (default: repo-root BENCH_build.json)",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=16384,
        help="node count for the linear families (quadratic-reference "
        "families use size // 8; default 16384)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed builds per measurement (best-of)"
    )
    args = parser.parse_args(argv)

    doc = {
        "workload": {
            "nodes": args.size,
            "hierarchy": f"fanout {FANOUT}, {LEVELS} levels, zipf {ZIPF_EXPONENT}",
        },
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "build": bench_builds(args.size, args.repeats),
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
