"""Record the reference-vs-bulk construction baseline into ``BENCH_build.json``.

Builds every DHT family twice — once on the scalar reference path
(``use_numpy=False``) and once through the :mod:`repro.perf.build` bulk
builders — on identical inputs, taking the best of ``--repeats`` timed
builds of each, and writes the timings plus derived speedups as JSON.
Setup (id draws, hierarchy, prefix trees) happens outside the timed
region; each timed build starts from a freshly seeded RNG so both paths
see the same state.  Every measurement is validated: deterministic
families must produce identical link tables on both paths, randomized
ones must agree on mean degree.  Run from the repo root::

    PYTHONPATH=src python benchmarks/record_build_baseline.py

CAN and Can-Can use a reduced node count (``--size // 8``) because their
reference constructions compare prefixes pairwise (quadratic); everything
else builds at the full ``--size``.  The checked-in ``BENCH_build.json``
is the reference point for the bulk-construction fast path (see
``docs/performance.md``); CI re-records it at small scale on every push
as a non-gating artifact.

Each family row also records ``arena_bytes`` — the exact size of the
single shared-memory block its compiled routing state occupies under
:mod:`repro.perf.arena` (deterministic: a pure function of the network,
so the regression gate holds it to tolerance 0).  Unless ``--stream-size
0``, the recorder then exercises the streaming construction path
(:func:`repro.perf.build.stream_compiled_crescendo`): a Crescendo of
``--stream-size`` nodes (default 2^20) built straight into CSR arrays
with no Python node/link objects, exported to an arena, and served a
routing batch — with build time, arena bytes and peak RSS recorded under
``"streaming"`` and summarized in the top-level ``"memory_bytes"``.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.hierarchy import Hierarchy, build_uniform_hierarchy  # noqa: E402
from repro.core.idspace import IdSpace  # noqa: E402
from repro.dhts.cacophony import CacophonyNetwork  # noqa: E402
from repro.dhts.can import CANNetwork, PrefixTree  # noqa: E402
from repro.dhts.cancan import CanCanNetwork  # noqa: E402
from repro.dhts.chord import ChordNetwork  # noqa: E402
from repro.dhts.crescendo import CrescendoNetwork  # noqa: E402
from repro.dhts.kademlia import KademliaNetwork  # noqa: E402
from repro.dhts.kandy import KandyNetwork  # noqa: E402
from repro.dhts.mixed import LanCrescendoNetwork  # noqa: E402
from repro.dhts.naive import NaiveHierarchicalChord  # noqa: E402
from repro.dhts.ndchord import NDChordNetwork, NDCrescendoNetwork  # noqa: E402
from repro.dhts.symphony import SymphonyNetwork  # noqa: E402
from repro.analysis.metrics import sample_routing_compiled  # noqa: E402
from repro.experiments.common import FANOUT, ZIPF_EXPONENT  # noqa: E402
from repro.perf.arena import export_network  # noqa: E402
from repro.perf.build import stream_compiled_crescendo  # noqa: E402
from repro.perf.kernels import compile_network  # noqa: E402

LEVELS = 3


def peak_rss_bytes():
    """The process's peak resident set so far (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def arena_bytes_of(network):
    """Size of the one shared-memory block ``network``'s compiled state needs."""
    owner = export_network(compile_network(network), label="bench")
    try:
        return owner.nbytes
    finally:
        owner.dispose()


def best_of(fn, repeats):
    """(best seconds, last result) over ``repeats`` timed calls of ``fn``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _hierarchy_setup(size, seed):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(
        ids, FANOUT, LEVELS, rng, distribution="zipf", zipf_exponent=ZIPF_EXPONENT
    )
    return space, hierarchy


def _prefix_setup(size, seed):
    rng = random.Random(seed)
    space = IdSpace(32)
    paths = [(f"lan{i % FANOUT}",) for i in range(size)]
    leaves = PrefixTree(space.bits).grow_aligned(paths, rng)
    hierarchy = Hierarchy()
    prefixes = {}
    for i, leaf in enumerate(leaves):
        padded = leaf.padded(space.bits)
        prefixes[padded] = leaf
        hierarchy.place(padded, paths[i])
    return space, hierarchy, prefixes


def _exact(ref, bulk):
    assert ref.links == bulk.links, "bulk links differ from reference"


def _mean_degree(net):
    return sum(len(net.links[n]) for n in net.node_ids) / net.size


def _close(ref, bulk):
    delta = abs(_mean_degree(ref) - _mean_degree(bulk))
    assert delta < 0.5, f"mean degree diverges by {delta:.2f}"


def family_specs(size):
    """(name, nodes, make(use_numpy) -> unbuilt network, validate) tuples.

    ``make`` seeds a fresh RNG per call so the reference and bulk timed
    builds start from identical state.
    """
    small = max(256, size // 8)
    specs = []

    def hier(name, ctor, validate, nodes=size):
        space, hierarchy = _hierarchy_setup(nodes, seed=len(specs) + 1)
        specs.append((name, nodes, lambda un: ctor(space, hierarchy, un), validate))

    hier("chord", lambda s, h, un: _flagged(ChordNetwork(s, h), un), _exact)
    hier("crescendo", lambda s, h, un: _flagged(CrescendoNetwork(s, h), un), _exact)
    hier(
        "symphony",
        lambda s, h, un: SymphonyNetwork(s, h, random.Random(101), use_numpy=un),
        _close,
    )
    hier(
        "cacophony",
        lambda s, h, un: CacophonyNetwork(s, h, random.Random(102), un),
        _close,
    )
    hier(
        "ndchord",
        lambda s, h, un: NDChordNetwork(s, h, random.Random(103), un),
        _close,
    )
    hier(
        "ndcrescendo",
        lambda s, h, un: NDCrescendoNetwork(s, h, random.Random(104), un),
        _close,
    )
    hier("mixed", lambda s, h, un: LanCrescendoNetwork(s, h, un), _exact)
    hier("naive", lambda s, h, un: NaiveHierarchicalChord(s, h, un), _exact)
    hier(
        "kademlia",
        lambda s, h, un: KademliaNetwork(s, h, None, 1, use_numpy=un),
        _exact,
    )
    hier(
        "kandy",
        lambda s, h, un: KandyNetwork(s, h, None, 1, use_numpy=un),
        _exact,
    )

    space, hierarchy, prefixes = _prefix_setup(small, seed=90)
    specs.append(
        ("can", small, lambda un: CANNetwork(space, hierarchy, prefixes, un), _exact)
    )
    specs.append(
        (
            "cancan",
            small,
            lambda un: CanCanNetwork(space, hierarchy, prefixes, None, use_numpy=un),
            _exact,
        )
    )
    return specs


def _flagged(net, use_numpy):
    net.use_numpy = use_numpy
    return net


def bench_builds(size, repeats):
    out = {}
    for name, nodes, make, validate in family_specs(size):
        ref_s, ref = best_of(lambda: make(False).build(), repeats)
        bulk_s, bulk = best_of(lambda: make(True).build(), repeats)
        assert ref.built_with == "python", f"{name}: reference took the bulk path"
        assert bulk.built_with == "numpy", f"{name}: bulk fell back to reference"
        validate(ref, bulk)
        arena = arena_bytes_of(bulk)
        out[name] = {
            "nodes": nodes,
            "reference_seconds": ref_s,
            "bulk_seconds": bulk_s,
            "speedup": ref_s / bulk_s,
            "reference_nodes_per_s": nodes / ref_s,
            "bulk_nodes_per_s": nodes / bulk_s,
            "arena_bytes": arena,
        }
        print(
            f"{name:12s} n={nodes:6d}  reference {ref_s * 1e3:8.1f}ms  "
            f"bulk {bulk_s * 1e3:8.1f}ms  ({ref_s / bulk_s:.1f}x)  "
            f"arena {arena / 1e6:.1f}MB"
        )
    return out


def bench_streaming(size, levels, samples):
    """One streaming build + arena export + routing point at ``size`` nodes."""
    rng = random.Random(f"bench-stream:{size}:{levels}")
    start = time.perf_counter()
    compiled, top = stream_compiled_crescendo(size, levels, rng)
    build_s = time.perf_counter() - start
    owner = export_network(compiled, top_domain=top, label="bench-stream")
    try:
        start = time.perf_counter()
        stats = sample_routing_compiled(compiled, rng, samples=samples)
        route_s = time.perf_counter() - start
        row = {
            "nodes": size,
            "levels": levels,
            "build_seconds": build_s,
            "build_nodes_per_s": size / build_s,
            "route_samples": samples,
            "route_seconds": route_s,
            "mean_hops": stats.mean_hops,
            "success_rate": stats.success_rate,
            "arena_bytes": owner.nbytes,
            "peak_rss_bytes": peak_rss_bytes(),
        }
    finally:
        owner.dispose()
    print(
        f"{'streaming':12s} n={size:7d}  build {build_s:6.1f}s  "
        f"route {samples} in {route_s:.1f}s (mean {stats.mean_hops:.2f} hops)  "
        f"arena {row['arena_bytes'] / 1e6:.1f}MB  "
        f"peak rss {row['peak_rss_bytes'] / 1e6:.0f}MB"
    )
    return row


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_build.json"),
        help="output path (default: repo-root BENCH_build.json)",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=16384,
        help="node count for the linear families (quadratic-reference "
        "families use size // 8; default 16384)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed builds per measurement (best-of)"
    )
    parser.add_argument(
        "--stream-size",
        type=int,
        default=1 << 20,
        help="node count for the streaming-construction measurement "
        "(default 2^20; 0 disables it)",
    )
    parser.add_argument(
        "--stream-levels",
        type=int,
        default=3,
        help="hierarchy depth for the streaming measurement (default 3)",
    )
    parser.add_argument(
        "--stream-samples",
        type=int,
        default=2000,
        help="routing samples taken on the streamed network (default 2000)",
    )
    args = parser.parse_args(argv)

    doc = {
        "workload": {
            "nodes": args.size,
            "hierarchy": f"fanout {FANOUT}, {LEVELS} levels, zipf {ZIPF_EXPONENT}",
        },
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "build": bench_builds(args.size, args.repeats),
    }
    arena_total = sum(row["arena_bytes"] for row in doc["build"].values())
    if args.stream_size:
        doc["streaming"] = bench_streaming(
            args.stream_size, args.stream_levels, args.stream_samples
        )
        arena_total += doc["streaming"]["arena_bytes"]
    doc["memory_bytes"] = {
        "arena_bytes": arena_total,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
