"""Record BENCH_serving.json: sustained lookup-serving throughput.

Per population, the same seeded workload is served three ways over the
testbed network (FUZZ-style joins, converged, transit-stub latency):

- **scalar**: the discrete-event ``AsyncEngine``, one Python callback per
  message — the per-message baseline the frontier runtime replaces;
- **batched closed loop**: ``ServeRuntime`` at fixed concurrency, no
  policy — the sustained-throughput headline (and the source of the
  deterministic p50/p99 virtual-latency quantiles);
- **batched open loop** with per-domain token-bucket admission — the
  deterministic shed accounting;
- **batched closed loop under churn** with retries + hedging (a seeded
  slice of nodes crashed every few ticks, view recompiled) — the
  deterministic lost/retry/hedge accounting.

Before anything is recorded, ``compare_serving`` replays a shared lookup
schedule with mid-flight crashes through both engines and must find zero
outcome disagreements; at the largest measured population the batched
runtime must beat the scalar engine by at least ``MIN_SPEEDUP``x
lookups/sec or recording aborts.

Wall-clock leaves (``*_per_s``, ``*_seconds``, ``speedup``) are compared
at the timing tolerance by ``check_regression.py``; ``*_count`` leaves
gate at tolerance 0 and quantile-millisecond leaves at the deterministic
tolerance.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_serving_baseline.py
"""

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import (  # noqa: E402
    ServePolicy,
    ServeRuntime,
    compile_protocol_view,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.testbed import (  # noqa: E402
    build_serving_net,
    domain_labeler,
    lookup_workload,
)
from repro.simulation.async_lookup import AsyncEngine  # noqa: E402
from repro.verify.oracles import compare_serving  # noqa: E402

#: The acceptance floor: batched lookups/sec over scalar at the largest size.
MIN_SPEEDUP = 5.0


def validate_equivalence(seed):
    """compare_serving on a churning net: outcomes must agree exactly."""

    def factory():
        net, _ = build_serving_net(512, seed=seed, with_latency=False)
        return net

    net = factory()
    rng = random.Random(f"serving-gate:{seed}")
    live = sorted(net.live_view())
    lookups = [
        (live[rng.randrange(len(live))], rng.randrange(net.space.size))
        for _ in range(400)
    ]
    victims = rng.sample(live, 30)

    def crash_slice(part):
        def fn(target):
            for victim in part:
                if victim in target.nodes and target.nodes[victim].alive:
                    target.crash(victim)

        return fn

    churn = [(2, crash_slice(victims[:15])), (4, crash_slice(victims[15:]))]
    comparison = compare_serving(factory, lookups, churn=churn)
    assert comparison.equivalent, comparison.violations[:5]
    return (
        f"compare_serving: {len(lookups)} lookups @ population 512, "
        f"{len(victims)} mid-flight crashes, ok"
    )


def bench_size(size, lookups, seed, repeats):
    """All serving measurements for one population."""
    net, latency = build_serving_net(size, seed=seed)
    sources, keys = lookup_workload(net, lookups, seed=seed)
    concurrency = min(4096, lookups)

    # -- scalar: the per-message discrete-event engine.
    scalar_best = float("inf")
    for _ in range(repeats):
        engine = AsyncEngine(net)
        start = time.perf_counter()
        for src, key in zip(sources.tolist(), keys.tolist()):
            engine.lookup(src, key)
        net.sim.run()
        scalar_best = min(scalar_best, time.perf_counter() - start)
    assert engine.in_flight == 0 and len(engine.completed) == lookups

    # -- batched closed loop, no policy: the throughput headline.
    serve_best = float("inf")
    for _ in range(repeats):
        runtime = ServeRuntime(*compile_protocol_view(net), latency=latency)
        start = time.perf_counter()
        report = run_closed_loop(
            runtime, sources, keys, concurrency=concurrency
        )
        serve_best = min(serve_best, time.perf_counter() - start)
    assert report.counters["completed"] == lookups

    # -- open loop with admission control: deterministic shed accounting.
    admit = ServePolicy(admit_rate=48.0, admit_burst=96.0)
    runtime = ServeRuntime(
        *compile_protocol_view(net),
        policy=admit,
        latency=latency,
        domain_of=domain_labeler(net),
    )
    open_report = run_open_loop(runtime, sources, keys, per_tick=1024)

    # -- closed loop under churn with retries + hedging: deterministic
    #    lost/retry/hedge accounting (view recompiled after every slice).
    policy = ServePolicy(
        max_attempts=3, hedge_quantile=0.9, hedge_min_ms=400.0
    )
    runtime = ServeRuntime(
        *compile_protocol_view(net), policy=policy, latency=latency
    )
    churn_rng = random.Random(f"serving-baseline-churn:{seed}")

    def on_tick(rt, tick):
        if tick % 5 == 0:
            live = sorted(net.live_view())
            victims = churn_rng.sample(
                live, min(max(size // 128, 4), len(live) - 8)
            )
            for victim in victims:
                net.crash(victim)
            rt.set_view(*compile_protocol_view(net))

    churn_report = run_closed_loop(
        runtime, sources, keys, concurrency=concurrency, on_tick=on_tick
    )
    assert churn_report.counters["completed"] == lookups

    out = {
        "nodes": size,
        "lookups": lookups,
        "concurrency": concurrency,
        "async_seconds": scalar_best,
        "async_per_s": lookups / scalar_best,
        "serve_seconds": serve_best,
        "serve_per_s": lookups / serve_best,
        "speedup": scalar_best / serve_best,
        "p50_ms": report.quantile_ms(0.5),
        "p99_ms": report.quantile_ms(0.99),
        "delivered_count": report.counters["delivered"],
        "open_shed_count": open_report.counters["shed"],
        "open_delivered_count": open_report.counters["delivered"],
        "churn_lost_count": churn_report.counters["lost"],
        "churn_retry_count": churn_report.counters["retries"],
        "churn_hedge_count": churn_report.counters["hedges"],
        "churn_delivered_count": churn_report.counters["delivered"],
    }
    print(
        f"n={size:6d}  {lookups} lookups  "
        f"async {out['async_per_s']:9.0f}/s  "
        f"serve {out['serve_per_s']:9.0f}/s  ({out['speedup']:.1f}x)  "
        f"p50 {out['p50_ms']:6.1f} ms  p99 {out['p99_ms']:6.1f} ms  "
        f"shed {out['open_shed_count']}  lost {out['churn_lost_count']}  "
        f"retries {out['churn_retry_count']}  hedges {out['churn_hedge_count']}"
    )
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="output path (default: repo-root BENCH_serving.json)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[1024, 4096, 16384],
        help="populations to measure (default: 1024 4096 16384)",
    )
    parser.add_argument(
        "--lookups",
        type=int,
        default=12000,
        help="lookups served per population (default 12000)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--repeats", type=int, default=1, help="timed runs per engine (best-of)"
    )
    args = parser.parse_args(argv)

    equivalence = validate_equivalence(args.seed)
    print(equivalence)
    sizes = sorted(args.sizes)
    results = {
        str(size): bench_size(size, args.lookups, args.seed, args.repeats)
        for size in sizes
    }
    top = results[str(sizes[-1])]
    assert top["speedup"] >= MIN_SPEEDUP, (
        f"batched runtime only {top['speedup']:.1f}x over AsyncEngine at "
        f"{sizes[-1]} nodes (need >= {MIN_SPEEDUP}x)"
    )
    doc = {
        "workload": {
            "build": "FUZZ-path joins, stabilized to convergence",
            "latency": "transit-stub table (2x4x3x4 routers)",
            "lookups": args.lookups,
            "seed": args.seed,
        },
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": equivalence,
        "min_speedup_at_top_size": MIN_SPEEDUP,
        "serving": results,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
