"""Record the scalar-vs-batch routing baseline into ``BENCH_routing.json``.

Measures, on the same 4000-node / 500-pair workloads the pytest-benchmark
suite uses:

- scalar vs batch ring routing (Crescendo) and xor routing (Kandy),
- cold (uncached) vs warm (on-disk cache hit) Crescendo construction,

taking the best of ``--repeats`` timed runs of each, and writes the
timings plus derived speedups as JSON.  Run from the repo root::

    PYTHONPATH=src python benchmarks/record_routing_baseline.py

The checked-in ``BENCH_routing.json`` is the reference point for the
fast-path layer (see ``docs/performance.md``); CI re-records it on every
push as a non-gating artifact so regressions are visible without flaking
the build on shared-runner noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from test_routing_throughput import SIZE, setup_ring, setup_xor  # noqa: E402

from repro.core.routing import route_ring, route_xor  # noqa: E402
from repro.experiments.common import build_crescendo, seeded_rng  # noqa: E402
from repro.perf import NetworkCache, caching, compile_network  # noqa: E402


def best_of(fn, repeats):
    """(best seconds, last result) over ``repeats`` timed calls of ``fn``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_routing(repeats):
    """Scalar vs batch timings for the ring and xor workloads."""
    out = {}
    for label, setup, scalar in (
        ("ring_crescendo", setup_ring, route_ring),
        ("xor_kandy", setup_xor, route_xor),
    ):
        net, pairs = setup()
        compiled = compile_network(net)
        sources = np.asarray([a for a, _ in pairs], dtype=np.uint64)
        dests = np.asarray([b for _, b in pairs], dtype=np.uint64)
        kernel = compiled.route_ring if net.metric == "ring" else compiled.route_xor

        scalar_s, delivered = best_of(
            lambda: sum(scalar(net, a, b).success for a, b in pairs), repeats
        )
        batch_s, batch_result = best_of(lambda: kernel(sources, dests), repeats)
        assert delivered == batch_result.delivered == len(pairs)

        out[label] = {
            "pairs": len(pairs),
            "scalar_seconds": scalar_s,
            "batch_seconds": batch_s,
            "speedup": scalar_s / batch_s,
            "scalar_routes_per_s": len(pairs) / scalar_s,
            "batch_routes_per_s": len(pairs) / batch_s,
        }
    return out


def bench_cache(repeats):
    """Cold-build vs warm-load timings for Crescendo construction."""
    token = ("bench-cache",)
    cold_s, net = best_of(
        lambda: build_crescendo(SIZE, 3, seeded_rng(*token)), repeats
    )
    with tempfile.TemporaryDirectory() as tmp:
        with caching(NetworkCache(Path(tmp) / "networks")):
            build_crescendo(SIZE, 3, seeded_rng(*token), cache_token=token)
            warm_s, warm = best_of(
                lambda: build_crescendo(
                    SIZE, 3, seeded_rng(*token), cache_token=token
                ),
                repeats,
            )
    assert warm.links == net.links
    return {
        "cold_build_seconds": cold_s,
        "warm_load_seconds": warm_s,
        "speedup": cold_s / warm_s,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_routing.json"),
        help="output path (default: repo-root BENCH_routing.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=15, help="timed runs per measurement (best-of)"
    )
    args = parser.parse_args(argv)

    doc = {
        "workload": {"nodes": SIZE, "hierarchy": "fanout 10, 3 levels"},
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "routing": bench_routing(args.repeats),
        "network_cache": bench_cache(args.repeats),
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    ring = doc["routing"]["ring_crescendo"]
    xor = doc["routing"]["xor_kandy"]
    cache = doc["network_cache"]
    print(f"wrote {args.out}")
    print(
        f"ring: scalar {ring['scalar_seconds'] * 1e3:.1f}ms "
        f"batch {ring['batch_seconds'] * 1e3:.1f}ms "
        f"({ring['speedup']:.1f}x)"
    )
    print(
        f"xor:  scalar {xor['scalar_seconds'] * 1e3:.1f}ms "
        f"batch {xor['batch_seconds'] * 1e3:.1f}ms "
        f"({xor['speedup']:.1f}x)"
    )
    print(
        f"cache: cold {cache['cold_build_seconds']:.2f}s "
        f"warm {cache['warm_load_seconds']:.2f}s ({cache['speedup']:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
