"""Benchmark harness configuration.

Every paper figure/table has one benchmark that regenerates it (timed) and
asserts its qualitative shape.  The parameter grid defaults to the "smoke"
scale so ``pytest benchmarks/ --benchmark-only`` completes in minutes; set
``REPRO_BENCH_SCALE=small`` (or ``paper`` for the full grid, up to 65536
nodes) to run larger.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()
