"""Benchmark: regenerate Figure 8 (hop/latency overlap fraction vs level)."""

from __future__ import annotations

from repro.experiments import fig8_overlap


def test_fig8_regenerate(benchmark, scale):
    data = benchmark.pedantic(
        fig8_overlap.measurements, args=(scale,), rounds=1, iterations=1
    )
    levels = (0, 1, 2, 3, 4)
    cres_hop = [data[("Crescendo", lv)][0] for lv in levels]
    cres_lat = [data[("Crescendo", lv)][1] for lv in levels]
    chord_hop = [data[("Chord (Prox.)", lv)][0] for lv in levels]
    # Crescendo's overlap rises strongly with domain level...
    assert cres_hop[3] > cres_hop[0]
    assert cres_hop[3] > 0.5
    # ...latency overlap exceeds hop overlap (local non-shared hops are cheap)...
    for lv in (1, 2, 3):
        assert data[("Crescendo", lv)][1] >= data[("Crescendo", lv)][0]
    # ...and Chord (Prox.) has little overlap anywhere.
    for lv in (1, 2, 3):
        assert chord_hop[lv] < 0.5
        assert cres_hop[lv] > chord_hop[lv]
