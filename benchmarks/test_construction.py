"""Micro-benchmarks: network construction throughput.

Compares the vectorised bulk builder against the pure-Python reference and
tracks the cost of building each DHT family at a fixed size — regressions
here make the paper-scale (65536-node) figure runs impractical.
"""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.cacophony import CacophonyNetwork
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.kademlia import KademliaNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.ndchord import NDCrescendoNetwork
from repro.dhts.symphony import SymphonyNetwork

SIZE = 2000
LEVELS = 3


def make_inputs(seed=0, levels=LEVELS):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    hierarchy = build_uniform_hierarchy(ids, 10, levels, rng)
    return space, hierarchy, rng


def test_build_chord_numpy(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(lambda: ChordNetwork(space, hierarchy, use_numpy=True).build())
    assert net.size == SIZE


def test_build_crescendo_numpy(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(
        lambda: CrescendoNetwork(space, hierarchy, use_numpy=True).build()
    )
    assert net.size == SIZE


def test_build_crescendo_python(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(
        lambda: CrescendoNetwork(space, hierarchy, use_numpy=False).build()
    )
    assert net.size == SIZE


def test_build_symphony(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(lambda: SymphonyNetwork(space, hierarchy, rng).build())
    assert net.size == SIZE


def test_build_symphony_python(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(
        lambda: SymphonyNetwork(space, hierarchy, rng, use_numpy=False).build()
    )
    assert net.size == SIZE


def test_build_cacophony(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(lambda: CacophonyNetwork(space, hierarchy, rng).build())
    assert net.size == SIZE


def test_build_nd_crescendo(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(lambda: NDCrescendoNetwork(space, hierarchy, rng).build())
    assert net.size == SIZE


def test_build_kademlia(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(lambda: KademliaNetwork(space, hierarchy, rng).build())
    assert net.size == SIZE


def test_build_kademlia_python(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(
        lambda: KademliaNetwork(space, hierarchy, rng, use_numpy=False).build()
    )
    assert net.size == SIZE


def test_build_kandy(benchmark):
    space, hierarchy, rng = make_inputs()
    net = benchmark(lambda: KandyNetwork(space, hierarchy, rng).build())
    assert net.size == SIZE
