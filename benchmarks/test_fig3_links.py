"""Benchmark: regenerate Figure 3 (avg #links/node vs n, levels 1-5)."""

from __future__ import annotations

import math

from repro.experiments import fig3_links


def test_fig3_regenerate(benchmark, scale):
    data = benchmark.pedantic(
        fig3_links.measurements, args=(scale,), rounds=1, iterations=1
    )
    # Shape assertions (the paper's claims about this figure):
    # 1) average degree stays within ~1 link of log2(n) at every depth;
    # 2) adding hierarchy levels never increases the average degree by more
    #    than noise — empirically it decreases.
    for (size, levels), degree in data.items():
        assert abs(degree - math.log2(size)) < 2.0, (size, levels, degree)
    sizes = sorted({size for size, _ in data})
    levels = sorted({lv for _, lv in data})
    for size in sizes:
        assert data[(size, levels[-1])] <= data[(size, levels[0])] + 0.1
