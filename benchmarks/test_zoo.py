"""Benchmark: the all-families flat-vs-Canonical comparison.

Asserts the paper's §3 thesis for every family at once: the Canonical
version keeps its flat sibling's state budget, routes in comparable hops,
and achieves *perfect* intra-domain path locality (flat versions leak)."""

from __future__ import annotations

from repro.experiments import zoo


def test_zoo(benchmark, scale):
    data = benchmark.pedantic(zoo.measurements, args=(scale,), rounds=1, iterations=1)
    for family in zoo.FAMILIES:
        flat_degree, flat_hops, flat_local = data[(family, "flat")]
        canon_degree, canon_hops, canon_local = data[(family, "canon")]
        # State budget: canon never pays more than a successor's worth extra.
        assert canon_degree <= flat_degree + 1.0, family
        # Hops: near-identical (the paper's <= +0.7 claim, with slack for
        # the randomized families).
        assert canon_hops <= flat_hops + 1.5, family
        # Locality: Canon routes stay entirely inside the common domain.
        assert canon_local == 1.0, family
        assert flat_local < 0.8, family
