"""Benchmark: regenerate Figure 7 (latency vs query locality level)."""

from __future__ import annotations

from repro.experiments import fig7_locality


def test_fig7_regenerate(benchmark, scale):
    data = benchmark.pedantic(
        fig7_locality.measurements, args=(scale,), rounds=1, iterations=1
    )
    crescendo = [data[("Crescendo (No Prox.)", lv)] for lv in (0, 1, 2, 3, 4)]
    crescendo_prox = [data[("Crescendo (Prox.)", lv)] for lv in (0, 1, 2, 3, 4)]
    chord_prox = [data[("Chord (Prox.)", lv)] for lv in (0, 1, 2, 3, 4)]
    # Crescendo: latency collapses as locality rises (virtually zero by the
    # stub-domain level); monotone decreasing.
    assert all(x >= y for x, y in zip(crescendo, crescendo[1:]))
    assert crescendo[-1] < crescendo[0] / 20
    assert crescendo_prox[-1] < crescendo_prox[0] / 20
    # Chord (Prox.) barely improves: no path locality in flat routing.
    assert chord_prox[-1] > chord_prox[0] / 4
    # Proximity only helps Crescendo's top-level queries (paper text).
    assert crescendo_prox[0] <= crescendo[0] + 1.0
