"""Micro-benchmarks: routing throughput of the greedy engines."""

from __future__ import annotations

import random

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring, route_ring_lookahead, route_xor
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.symphony import SymphonyNetwork

SIZE = 4000


def setup_ring():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    hierarchy = build_uniform_hierarchy(ids, 10, 3, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(500)]
    return net, pairs


def test_route_crescendo(benchmark):
    net, pairs = setup_ring()

    def run():
        delivered = 0
        for a, b in pairs:
            delivered += route_ring(net, a, b).success
        return delivered

    assert benchmark(run) == len(pairs)


def test_route_lookahead_symphony(benchmark):
    rng = random.Random(1)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    hierarchy = build_uniform_hierarchy(ids, 10, 1, rng)
    net = SymphonyNetwork(space, hierarchy, rng).build()
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(200)]

    def run():
        return sum(route_ring_lookahead(net, a, b).success for a, b in pairs)

    assert benchmark(run) == len(pairs)


def test_route_kandy_xor(benchmark):
    rng = random.Random(2)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    hierarchy = build_uniform_hierarchy(ids, 10, 3, rng)
    net = KandyNetwork(space, hierarchy, rng).build()
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(500)]

    def run():
        return sum(route_xor(net, a, b).success for a, b in pairs)

    assert benchmark(run) == len(pairs)
