"""Micro-benchmarks: routing throughput, scalar vs batch, cache cold vs warm.

``benchmarks/record_routing_baseline.py`` runs the same workloads with a
plain ``perf_counter`` harness and checks the results into
``BENCH_routing.json``.
"""

from __future__ import annotations

import random

import numpy as np

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring, route_ring_lookahead, route_xor
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.symphony import SymphonyNetwork
from repro.experiments.common import build_crescendo, seeded_rng
from repro.perf import NetworkCache, caching, compile_network

SIZE = 4000


def setup_ring():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    hierarchy = build_uniform_hierarchy(ids, 10, 3, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(500)]
    return net, pairs


def setup_xor():
    rng = random.Random(2)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    hierarchy = build_uniform_hierarchy(ids, 10, 3, rng)
    net = KandyNetwork(space, hierarchy, rng).build()
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(500)]
    return net, pairs


def test_route_crescendo(benchmark):
    net, pairs = setup_ring()

    def run():
        delivered = 0
        for a, b in pairs:
            delivered += route_ring(net, a, b).success
        return delivered

    assert benchmark(run) == len(pairs)


def test_route_lookahead_symphony(benchmark):
    rng = random.Random(1)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    hierarchy = build_uniform_hierarchy(ids, 10, 1, rng)
    net = SymphonyNetwork(space, hierarchy, rng).build()
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(200)]

    def run():
        return sum(route_ring_lookahead(net, a, b).success for a, b in pairs)

    assert benchmark(run) == len(pairs)


def test_route_kandy_xor(benchmark):
    net, pairs = setup_xor()

    def run():
        return sum(route_xor(net, a, b).success for a, b in pairs)

    assert benchmark(run) == len(pairs)


def test_route_crescendo_batch(benchmark):
    """Same workload as ``test_route_crescendo`` on the vectorized kernel."""
    net, pairs = setup_ring()
    compiled = compile_network(net)
    sources = np.asarray([a for a, _ in pairs], dtype=np.uint64)
    dests = np.asarray([b for _, b in pairs], dtype=np.uint64)

    def run():
        return compiled.route_ring(sources, dests).delivered

    assert benchmark(run) == len(pairs)


def test_route_kandy_xor_batch(benchmark):
    """Same workload as ``test_route_kandy_xor`` on the vectorized kernel."""
    net, pairs = setup_xor()
    compiled = compile_network(net)
    sources = np.asarray([a for a, _ in pairs], dtype=np.uint64)
    dests = np.asarray([b for _, b in pairs], dtype=np.uint64)

    def run():
        return compiled.route_xor(sources, dests).delivered

    assert benchmark(run) == len(pairs)


def test_build_crescendo_cache_cold(benchmark, tmp_path):
    """Full Crescendo construction, no cache (the warm benchmark's baseline)."""

    def run():
        return build_crescendo(SIZE, 3, seeded_rng("bench-cache"))

    net = benchmark(run)
    assert len(net.node_ids) == SIZE


def test_build_crescendo_cache_warm(benchmark, tmp_path):
    """Crescendo construction served from a pre-primed on-disk cache."""
    token = ("bench-cache",)
    with caching(NetworkCache(tmp_path / "networks")):
        build_crescendo(SIZE, 3, seeded_rng(*token), cache_token=token)  # prime

        def run():
            return build_crescendo(SIZE, 3, seeded_rng(*token), cache_token=token)

        net = benchmark(run)
    assert len(net.node_ids) == SIZE
