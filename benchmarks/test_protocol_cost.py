"""Benchmarks for dynamic maintenance: join cost and stabilization."""

from __future__ import annotations

import random
import statistics

from repro import IdSpace
from repro.simulation.protocol import SimulatedCrescendo

PATHS = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]


def grown(size, seed):
    rng = random.Random(seed)
    space = IdSpace(32)
    net = SimulatedCrescendo(space)
    for node_id in space.random_ids(size, rng):
        net.join(node_id, PATHS[rng.randrange(len(PATHS))])
    return net, rng


def test_join_protocol(benchmark):
    """Time 25 joins into a 400-node network; assert O(log n) messages."""
    net, rng = grown(400, seed=0)

    def run():
        costs = []
        for _ in range(25):
            new_id = net.space.random_id(rng)
            while new_id in net.nodes:
                new_id = net.space.random_id(rng)
            costs.append(net.join(new_id, PATHS[rng.randrange(4)]))
        return statistics.mean(costs)

    mean_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    import math

    assert mean_cost < 12 * math.log2(len(net.nodes))


def test_stabilization_round(benchmark):
    net, rng = grown(400, seed=1)
    benchmark.pedantic(net.stabilize, rounds=1, iterations=1)
    assert net.static_links() == net.oracle_links()


def test_churn_recovery(benchmark):
    """Crash 10% of a 300-node network and time convergence to the oracle."""
    net, rng = grown(300, seed=2)
    victims = rng.sample(list(net.nodes), 30)
    for victim in victims:
        net.crash(victim)

    rounds = benchmark.pedantic(
        net.stabilize_to_convergence, rounds=1, iterations=1
    )
    assert rounds <= 20
