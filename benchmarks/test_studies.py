"""Benchmarks for the non-figure studies: theorems, isolation, churn.

Each regenerates its study table (timed) and asserts the paper's claim.
"""

from __future__ import annotations

from repro.experiments import churn_study, isolation_study, theorems


def test_theorem_bounds(benchmark, scale):
    """Every proved bound (Theorems 1-5) holds on measured instances."""
    data = benchmark.pedantic(
        theorems.measurements, args=(scale,), rounds=1, iterations=1
    )
    for (metric, size), (measured, bound) in data.items():
        assert measured <= bound, f"{metric} violated at n={size}"


def test_fault_isolation(benchmark, scale):
    """Crescendo: perfect intra-domain delivery under external failure."""
    data = benchmark.pedantic(
        isolation_study.measurements, args=(scale,), rounds=1, iterations=1
    )
    for depth in (1, 2):
        rate, inflation = data[("Crescendo", depth)]
        assert rate == 1.0
        assert abs(inflation - 1.0) < 1e-9
        assert data[("Chord", depth)][0] < rate


def test_churn_resilience(benchmark, scale):
    """Delivery stays high and the network re-converges at every intensity."""
    data = benchmark.pedantic(
        churn_study.measurements, args=(scale,), rounds=1, iterations=1
    )
    for label in ("light", "moderate", "heavy"):
        row = data[label]
        assert row["delivery_rate"] > 0.9, label
        assert row["converged"] == 1.0, label
