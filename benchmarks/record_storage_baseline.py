"""Record the storage data-plane baseline into ``BENCH_storage.json``.

Four sections, each a scalar-vs-vectorized pairing at 1K/4K/16K keys:

- **placement** — :meth:`repro.storage.replication.ReplicatedStore.
  replica_nodes` plus the access-domain pointer pick, one key at a time,
  vs one :func:`repro.perf.storage.plan_puts` searchsorted sweep per
  ``(storage, access)`` domain pair.  Homes, pointer nodes and replica
  sets are asserted elementwise-identical.  This isolates the placement
  kernel itself — the ≥10x headline — from the dict-insert floor that
  both put paths share.
- **put** — :meth:`repro.storage.replication.ReplicatedStore.put` one key
  at a time vs :func:`repro.perf.storage.bulk_put_replicated` grouped by
  ``(storage, access)`` domain pair.  The two stores' item tables, pointer
  tables and replica sets are asserted dict-identical before any number
  is recorded.
- **get** — :meth:`repro.storage.store.HierarchicalStore.get` per key vs
  :meth:`repro.perf.storage.CompiledStore.batch_get` frontier-at-a-time.
  Every batch row is asserted field-identical to its scalar
  :class:`~repro.storage.store.SearchResult` (values, path, found_at,
  via_pointer, pointer_hops, content_node).
- **repair** — one crash era over a :class:`~repro.simulation.protocol.
  SimulatedCrescendo`: the scalar :meth:`DataLayer._rebalance` loop vs the
  :class:`~repro.perf.storage.FastDataLayer` ``repair_scan`` sweep on an
  identically grown twin network.  Holder assignments, lost keys,
  surviving-copy counts and ``replicate`` message totals must agree
  exactly — the recorded ``surviving_keys`` / ``lost_keys`` counts are the
  surviving-copy accuracy check.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_storage_baseline.py

The checked-in ``BENCH_storage.json`` is the reference point for
``benchmarks/check_regression.py``; counts gate at tolerance 0 (1e-6),
``*_per_s`` / ``speedup`` leaves are wall-clock and never gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.idspace import IdSpace  # noqa: E402
from repro.perf.storage import (  # noqa: E402
    CompiledStore,
    FastDataLayer,
    bulk_put_replicated,
    plan_puts,
    store_domain_index,
)
from repro.simulation.data import DataLayer  # noqa: E402
from repro.simulation.protocol import SimulatedCrescendo  # noqa: E402
from repro.storage.replication import ReplicatedStore  # noqa: E402
from repro.storage.store import HierarchicalStore  # noqa: E402
from repro.verify.builders import small_network  # noqa: E402
from repro.verify.oracles import storage_workload  # noqa: E402

RESULT_FIELDS = (
    "values", "path", "found_at", "via_pointer", "pointer_hops", "content_node"
)


def _grouped(put_ops):
    """Puts grouped by (storage, access) pair in first-occurrence order."""
    groups = {}
    for origin, key, value, sd, ad in put_ops:
        groups.setdefault((sd, ad), []).append((origin, key, value))
    return groups


def bench_placement(network, keys, replicas):
    """Scalar vs vectorized replica placement on one seeded workload."""
    rng = random.Random(f"storage-bench-placement:{keys}")
    put_ops, _ = storage_workload(network, rng, puts=keys, gets=0)
    store = HierarchicalStore(network)
    rstore = ReplicatedStore(store, replicas=replicas)
    index = store_domain_index(store)
    space = store.space
    groups = [
        (sd, ad, [space.hash_key(key) for _, key, _ in ops])
        for (sd, ad), ops in _grouped(put_ops).items()
    ]

    start = time.perf_counter()
    scalar_rows = []
    for sd, ad, hashes in groups:
        for key_hash in hashes:
            holders = rstore.replica_nodes(key_hash, sd)
            pointer = store.home_node(key_hash, ad) if ad != sd else None
            scalar_rows.append((holders, pointer))
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    plans = [
        (plan_puts(index, hashes, sd, ad, replicas=replicas), ad != sd)
        for sd, ad, hashes in groups
    ]
    bulk_s = time.perf_counter() - start

    it = iter(scalar_rows)
    pointer_keys = 0
    homes = set()
    for plan, has_pointer in plans:
        assert plan.replica_sets is not None
        pointers = (
            plan.pointer_nodes.tolist() if has_pointer else [None] * plan.homes.size
        )
        for j, (holders, pointer) in enumerate(
            (next(it) for _ in range(plan.homes.size))
        ):
            assert plan.replica_sets[j].tolist() == holders
            assert pointers[j] == pointer
            homes.add(holders[0])
            pointer_keys += pointer is not None and pointer != holders[0]
    return {
        "keys": keys,
        "distinct_homes": len(homes),
        "pointer_keys": pointer_keys,
        "scalar_plan_per_s": keys / scalar_s,
        "bulk_plan_per_s": keys / bulk_s,
        "plan_speedup": scalar_s / bulk_s,
    }


def bench_putget(network, keys, replicas):
    """Scalar vs bulk put and get over one seeded workload; returns a row."""
    rng = random.Random(f"storage-bench:{keys}")
    put_ops, get_ops = storage_workload(network, rng, puts=keys, gets=keys)

    scalar_rstore = ReplicatedStore(HierarchicalStore(network), replicas=replicas)
    start = time.perf_counter()
    for origin, key, value, sd, ad in put_ops:
        scalar_rstore.put(origin, key, value, sd, ad)
    scalar_put_s = time.perf_counter() - start

    bulk_rstore = ReplicatedStore(HierarchicalStore(network), replicas=replicas)
    start = time.perf_counter()
    for (sd, ad), ops in _grouped(put_ops).items():
        origins = [o for o, _, _ in ops]
        names = [k for _, k, _ in ops]
        values = [v for _, _, v in ops]
        bulk_put_replicated(bulk_rstore, origins, names, values, sd, ad)
    bulk_put_s = time.perf_counter() - start
    assert scalar_rstore.store._items == bulk_rstore.store._items
    assert scalar_rstore.store._pointers == bulk_rstore.store._pointers
    assert scalar_rstore.replica_sets == bulk_rstore.replica_sets

    origins = [o for o, _ in get_ops]
    names = [k for _, k in get_ops]
    start = time.perf_counter()
    scalar_results = [
        scalar_rstore.store.get(origin, key) for origin, key in get_ops
    ]
    scalar_get_s = time.perf_counter() - start

    compiled = CompiledStore(bulk_rstore.store)
    start = time.perf_counter()
    batch = compiled.batch_get(origins, names)
    bulk_get_s = time.perf_counter() - start
    found = 0
    for scalar, row in zip(scalar_results, batch.results()):
        for field in RESULT_FIELDS:
            assert getattr(scalar, field) == getattr(row, field), (
                f"{field} mismatch for key {scalar.key!r}"
            )
        found += scalar.found_at is not None
    pointer_hops = sum(r.pointer_hops for r in scalar_results)

    return {
        "keys": keys,
        "puts": len(put_ops),
        "gets": len(get_ops),
        "gets_found": found,
        "pointer_hops_total": pointer_hops,
        "scalar_put_per_s": len(put_ops) / scalar_put_s,
        "bulk_put_per_s": len(put_ops) / bulk_put_s,
        "put_speedup": scalar_put_s / bulk_put_s,
        "scalar_get_per_s": len(get_ops) / scalar_get_s,
        "bulk_get_per_s": len(get_ops) / bulk_get_s,
        "get_speedup": scalar_get_s / bulk_get_s,
    }


PATHS = [("a", "x"), ("a", "y"), ("b", "x")]


def _grown_pair(size, seed, replicas):
    """Two identically grown protocol networks, one data layer each."""
    layers = []
    for layer_cls in (DataLayer, FastDataLayer):
        rng = random.Random(seed)
        net = SimulatedCrescendo(IdSpace(32))
        for node_id in net.space.random_ids(size, rng):
            net.join(node_id, PATHS[rng.randrange(3)])
        net.stabilize()
        layers.append((net, layer_cls(net, replicas=replicas)))
    return layers


def bench_repair(keys, size, replicas, crash_fraction, seed):
    """Scalar rebalance loop vs repair_scan sweep after one crash era."""
    (scalar_net, scalar_data), (fast_net, fast_data) = _grown_pair(
        size, seed, replicas
    )
    rng = random.Random(f"storage-bench-repair:{keys}")
    live = sorted(scalar_net.nodes)
    for i in range(keys):
        origin = live[rng.randrange(len(live))]
        depth = rng.randrange(3)
        domain = scalar_net.hierarchy.path_of(origin)[:depth]
        for data in (scalar_data, fast_data):
            data.put(origin, f"k{i}", f"v{i}", domain)
    assert scalar_data.holders == fast_data.holders
    victims = rng.sample(live, max(1, int(len(live) * crash_fraction)))
    for victim in victims:
        scalar_net.crash(victim)
        fast_net.crash(victim)

    scalar_before = scalar_net.msgs.stats.counts.get("replicate", 0)
    start = time.perf_counter()
    scalar_data.stabilized()
    scalar_repair_s = time.perf_counter() - start
    scalar_msgs = scalar_net.msgs.stats.counts.get("replicate", 0) - scalar_before

    fast_before = fast_net.msgs.stats.counts.get("replicate", 0)
    start = time.perf_counter()
    fast_data.stabilized()
    fast_repair_s = time.perf_counter() - start
    fast_msgs = fast_net.msgs.stats.counts.get("replicate", 0) - fast_before

    assert scalar_data.holders == fast_data.holders
    assert sorted(scalar_data.lost_keys()) == sorted(fast_data.lost_keys())
    assert scalar_msgs == fast_msgs
    lost = len(fast_data.lost_keys())
    return {
        "keys": keys,
        "population": size,
        "crashed": len(victims),
        "surviving_keys": keys - lost,
        "lost_keys": lost,
        "replicate_msgs": fast_msgs,
        "scalar_repair_per_s": keys / scalar_repair_s,
        "bulk_repair_per_s": keys / fast_repair_s,
        "repair_speedup": scalar_repair_s / fast_repair_s,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_storage.json"),
        help="output path (default: repo-root BENCH_storage.json)",
    )
    parser.add_argument(
        "--keys",
        type=int,
        nargs="+",
        default=[1024, 4096, 16384],
        help="workload sizes in keys (default: 1024 4096 16384)",
    )
    parser.add_argument(
        "--size", type=int, default=2048, help="store network population"
    )
    parser.add_argument(
        "--repair-size", type=int, default=512, help="repair-era population"
    )
    parser.add_argument(
        "--replicas", type=int, default=3, help="replication degree"
    )
    parser.add_argument("--seed", type=int, default=9, help="network seed")
    args = parser.parse_args(argv)

    network = small_network("crescendo", seed=args.seed, size=args.size)
    placement = {}
    putget = {}
    repair = {}
    for keys in args.keys:
        prow = bench_placement(network, keys, args.replicas)
        placement[str(keys)] = prow
        print(
            f"keys={keys:6d}  plan {prow['bulk_plan_per_s']:10.0f}/s "
            f"({prow['plan_speedup']:5.1f}x)"
        )
        row = bench_putget(network, keys, args.replicas)
        putget[str(keys)] = row
        print(
            f"keys={keys:6d}  put {row['bulk_put_per_s']:10.0f}/s "
            f"({row['put_speedup']:5.1f}x)  get {row['bulk_get_per_s']:10.0f}/s "
            f"({row['get_speedup']:5.1f}x)"
        )
        rrow = bench_repair(
            keys, args.repair_size, args.replicas, 0.15, args.seed
        )
        repair[str(keys)] = rrow
        print(
            f"keys={keys:6d}  repair {rrow['bulk_repair_per_s']:8.0f}/s "
            f"({rrow['repair_speedup']:5.1f}x)  "
            f"surviving {rrow['surviving_keys']}/{keys}"
        )
    doc = {
        "workload": {
            "family": "crescendo",
            "population": args.size,
            "repair_population": args.repair_size,
            "replicas": args.replicas,
            "seed": args.seed,
            "crash_fraction": 0.15,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": {
            "placement": "homes, pointer nodes and replica sets elementwise-"
            "identical scalar vs plan_puts at every size",
            "put": "store state dict-identical scalar vs bulk at every size",
            "get": "every batch row field-identical to its scalar SearchResult",
            "repair": "holders, lost keys and replicate counts equal scalar "
            "vs repair_scan at every size",
        },
        "placement": placement,
        "putget": putget,
        "repair": repair,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
