"""Benchmarks for the design-choice ablations (see DESIGN.md §4).

Each ablation is timed and its conclusion asserted — if a refactor silently
destroys the property a design decision was based on, these fail.
"""

from __future__ import annotations

from repro.experiments import ablations, caching_study


def test_merge_economy(benchmark, scale):
    """Canon condition (b) vs naive per-level Chord: big state saving."""
    data = benchmark.pedantic(
        ablations.merge_economy, args=(scale,), rounds=1, iterations=1
    )
    assert data["degree_ratio"] > 1.5, "naive should pay >1.5x the state"
    # ...without the naive construction being dramatically faster to route.
    assert data["crescendo_hops"] < 2 * data["naive_hops"]


def test_lookahead_gain(benchmark, scale):
    """Greedy-with-lookahead saves hops on both Symphony and Cacophony."""
    data = benchmark.pedantic(
        ablations.lookahead_gain, args=(scale,), rounds=1, iterations=1
    )
    assert data["symphony_saving"] > 0
    assert data["cacophony_saving"] > 0


def test_sampling_curve(benchmark, scale):
    """Link latency decays with sample size and flattens by s ~ 32."""
    curve = benchmark.pedantic(
        ablations.sampling_curve, args=(scale,), rounds=1, iterations=1
    )
    assert curve[32] < curve[1] / 2
    assert curve[32] < 2.5 * curve[64], "diminishing returns beyond s=32"


def test_group_target_sweep(benchmark, scale):
    """Crescendo (Prox.) is never worse than Chord (Prox.) at any group size."""
    data = benchmark.pedantic(
        ablations.group_target_sweep, args=(scale,), rounds=1, iterations=1
    )
    for target, (chord_prox, crescendo_prox) in data.items():
        assert crescendo_prox <= chord_prox + 0.15, f"group target {target}"


def test_leaf_set_sweep(benchmark, scale):
    """Bigger leaf sets deliver more lookups under unrepaired crashes."""
    data = benchmark.pedantic(
        ablations.leaf_set_sweep, args=(scale,), rounds=1, iterations=1
    )
    assert data[4] >= data[1]
    assert data[8] >= 0.9


def test_bucket_replication_sweep(benchmark, scale):
    """Kandy: per-bucket redundancy buys crash resilience (k=2+ over k=1)."""
    data = benchmark.pedantic(
        ablations.bucket_replication_sweep, args=(scale,), rounds=1, iterations=1
    )
    assert max(data[2], data[3]) >= data[1]
    assert data[3] >= 0.8


def test_cancan_alignment(benchmark, scale):
    """Domain-aligned identifiers give Can-Can strict path locality."""
    data = benchmark.pedantic(
        ablations.cancan_alignment, args=(scale,), rounds=1, iterations=1
    )
    assert data["aligned"] == 1.0
    assert data["random"] < 0.9


def test_caching_study(benchmark, scale):
    """Proxy caching: a fraction of path caching's copies, comparable hits."""
    data = benchmark.pedantic(
        caching_study.measurements, args=(scale,), rounds=1, iterations=1
    )
    assert data["path"]["copies"] > 3 * data["proxy"]["copies"]
    assert data["proxy"]["hit_rate"] > 0.6
