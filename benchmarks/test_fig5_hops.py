"""Benchmark: regenerate Figure 5 (avg routing hops vs n, levels 1-5)."""

from __future__ import annotations

import math

from repro.experiments import fig5_hops


def test_fig5_regenerate(benchmark, scale):
    data = benchmark.pedantic(
        fig5_hops.measurements, args=(scale,), rounds=1, iterations=1
    )
    sizes = sorted({size for size, _ in data})
    levels = sorted({lv for _, lv in data})
    # Hops ~ 0.5*log2(n) + small constant at every depth.
    for (size, lv), hops in data.items():
        assert hops <= 0.5 * math.log2(size) + 1.5
    # The hierarchy penalty is bounded (paper: at most 0.7 hops).
    for size in sizes:
        penalty = data[(size, levels[-1])] - data[(size, levels[0])]
        assert penalty <= 1.0
    # Hops grow with n (log-shaped curve).
    if len(sizes) >= 2:
        assert data[(sizes[-1], levels[0])] >= data[(sizes[0], levels[0])] - 0.3
