"""Benchmark: regenerate Figure 9 (inter-domain links in the multicast tree)."""

from __future__ import annotations

from repro.experiments import fig9_multicast


def test_fig9_regenerate(benchmark, scale):
    data = benchmark.pedantic(
        fig9_multicast.measurements, args=(scale,), rounds=1, iterations=1
    )
    # Paper (32K nodes): Crescendo uses ~1/44 of Chord (Prox.)'s top-level
    # inter-domain links and ~15% at level 3.  At reduced scale we assert the
    # direction and a substantial factor at the top level.
    for depth in (1, 2, 3):
        crescendo = data[("Crescendo", depth)]
        chord = data[("Chord (Prox.)", depth)]
        assert crescendo <= chord, f"depth {depth}"
    assert data[("Crescendo", 1)] < data[("Chord (Prox.)", 1)] / 4
    # Inter-domain link counts rise as domains get finer, for both systems.
    assert data[("Crescendo", 1)] <= data[("Crescendo", 3)]
