"""Record the latency/SLO baseline into ``BENCH_latency.json``.

Two sections, both anchored on the transit-stub internet model
(:mod:`repro.topology.transit_stub`):

- **routing** — for each ``--sizes`` population and each fig6 family
  (Chord/Crescendo, plain and proximity-adapted), p50/p95/p99 lookup
  milliseconds, mean latency and stretch vs direct IP, measured through
  :func:`repro.analysis.metrics.sample_routing` with SLO recording on.
  The greedy-ring families are measured through both the scalar reference
  engine and the batch kernels (whose fused per-hop latency accumulator
  must reproduce the scalar ``Route.latency`` fold **bit-for-bit** — the
  two runs' full ``slo.*`` snapshots are asserted identical, and the
  recorded numbers come from the batch run).

- **churn** — one seed-derived fuzz schedule replayed through both
  dynamic-maintenance engines via
  :func:`repro.verify.oracles.compare_protocols` with a latency table:
  lookup paths, outcomes, message counts *and per-lookup latency totals*
  (reference = scalar per-hop fold, fast = vectorized gather) must agree
  exactly; p50/p99 lookup ms under churn are then recorded from the
  common paths.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record_latency_baseline.py

The checked-in ``BENCH_latency.json`` is the reference point for
``benchmarks/check_regression.py``; the deterministic milliseconds in it
are tolerance-checked (not the wall-clock timings).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.metrics import sample_routing  # noqa: E402
from repro.core.routing import route_ring  # noqa: E402
from repro.experiments.common import build_topology_setup, seeded_rng  # noqa: E402
from repro.experiments.fig6_stretch import SYSTEMS  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs.quantiles import percentile  # noqa: E402
from repro.obs.slo import SLOReport  # noqa: E402
from repro.topology.transit_stub import (  # noqa: E402
    TopologyParams,
    TransitStubTopology,
)
from repro.verify.fuzz import (  # noqa: E402
    FuzzConfig,
    bootstrap_network,
    generate_schedule,
)
from repro.verify.oracles import compare_protocols  # noqa: E402


def _measure_family(setup, size, family, router, samples, engine):
    """One family at one size through one engine; returns (row, snapshot)."""
    rng = seeded_rng("latency-bench-route", size, family)
    with obs_metrics.collecting() as registry:
        stats = sample_routing(
            setup_net(setup, family),
            rng,
            samples=samples,
            router=router,
            latency_fn=setup.latency,
            engine=engine,
            slo_label=family,
        )
    snapshot = registry.snapshot()
    report = SLOReport.from_snapshot(snapshot)
    row = report.row(family)
    assert row is not None and stats.mean_latency is not None
    return {
        "samples": row.samples,
        "delivered": row.delivered,
        "p50_ms": row.p50_ms,
        "p95_ms": row.p95_ms,
        "p99_ms": row.p99_ms,
        "mean_ms": stats.mean_latency,
        "stretch": stats.mean_latency / setup.direct_latency,
    }, snapshot


def setup_net(setup, family):
    return getattr(setup, family)


def _without_perf(snapshot):
    data = dict(snapshot.data)
    data["counters"] = {
        name: value
        for name, value in data["counters"].items()
        if not name.startswith("perf.")
    }
    return data


def bench_routing(sizes, samples):
    """Per-size, per-family latency rows + the scalar/batch equivalence."""
    out = {}
    checked_routes = 0
    for size in sizes:
        setup = build_topology_setup(size, "latency-bench")
        per_family = {}
        for label, family, router in SYSTEMS:
            start = time.perf_counter()
            if router is route_ring:
                scalar_row, scalar_snap = _measure_family(
                    setup, size, family, router, samples, "scalar"
                )
                batch_row, batch_snap = _measure_family(
                    setup, size, family, router, samples, "batch"
                )
                # Bit-for-bit: identical histograms, reservoirs and counters
                # means every per-route latency matched to the last bit.
                # (perf.* counters describe the engine itself, not the routes,
                # so the batch run legitimately has extras.)
                assert _without_perf(scalar_snap) == _without_perf(batch_snap), (
                    f"n={size} {family}: scalar vs batch slo snapshots differ"
                )
                assert scalar_row == batch_row
                row, engine = batch_row, "scalar+batch (bit-identical)"
                checked_routes += samples
            else:
                row, _ = _measure_family(
                    setup, size, family, router, samples, "scalar"
                )
                engine = "scalar (grouped-proximity router)"
            row["engine"] = engine
            per_family[family] = row
            print(
                f"n={size:6d}  {label:24s}  p50 {row['p50_ms']:8.2f} ms  "
                f"p99 {row['p99_ms']:8.2f} ms  stretch {row['stretch']:.3f}  "
                f"({time.perf_counter() - start:.1f}s)"
            )
        out[str(size)] = per_family
    equivalence = (
        f"scalar vs batch slo snapshots bit-identical on "
        f"{checked_routes} ring routes across {len(sizes)} sizes"
    )
    return out, equivalence


def bench_churn(seed):
    """Reference vs fast engine latency parity on one fuzz schedule."""
    config = FuzzConfig(seed=seed, events=120, population=128, checkpoints=2)
    schedule = generate_schedule(config)
    topology = TransitStubTopology(
        TopologyParams(2, 5, 2, 11), rng=seeded_rng("latency-bench-topo", seed)
    )
    # Attach every id the schedule can ever route through: the bootstrap
    # population plus every scheduled join.
    probe = bootstrap_network(config, engine="reference")
    for node_id in sorted(probe.nodes):
        topology.attach_node(node_id)
    for event in schedule:
        if event.kind == "join" and event.node not in probe.nodes:
            topology.attach_node(event.node)
    table = topology.latency_table()
    comparison = compare_protocols(
        lambda engine: bootstrap_network(config, engine=engine),
        schedule,
        latency=table,
    )
    assert comparison.equivalent, comparison.violations[:5]
    lookup_ms = [
        table.path_ms(path) for path in comparison.fast_report.lookup_paths
    ]
    ordered = sorted(lookup_ms)
    equivalence = (
        f"compare_protocols with latency: {len(schedule)} events @ "
        f"population {config.population}, {len(lookup_ms)} lookups, "
        f"latency totals bit-identical"
    )
    print(equivalence)
    return {
        "population": config.population,
        "events": len(schedule),
        "lookups": len(lookup_ms),
        "p50_ms": percentile(ordered, 0.50),
        "p99_ms": percentile(ordered, 0.99),
    }, equivalence


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_latency.json"),
        help="output path (default: repo-root BENCH_latency.json)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[512, 2048],
        help="overlay populations to measure (default: 512 2048)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=200,
        help="routed pairs per family per size (default 200)",
    )
    parser.add_argument("--seed", type=int, default=11, help="churn schedule seed")
    args = parser.parse_args(argv)

    routing, routing_equivalence = bench_routing(args.sizes, args.samples)
    churn, churn_equivalence = bench_churn(args.seed)
    doc = {
        "workload": {
            "topology": "transit-stub (2040 routers) for routing; "
            "120 routers for churn",
            "route_samples": args.samples,
            "seed_token": "latency-bench",
            "churn_seed": args.seed,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": {
            "routing": routing_equivalence,
            "engines": churn_equivalence,
        },
        "routing": routing,
        "churn": churn,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
