"""Benchmark: regenerate Figure 6 (latency & stretch on the transit-stub model)."""

from __future__ import annotations

from repro.experiments import fig6_stretch


def test_fig6_regenerate(benchmark, scale):
    data = benchmark.pedantic(
        fig6_stretch.measurements, args=(scale,), rounds=1, iterations=1
    )
    sizes = sorted({size for _, size in data})
    for size in sizes:
        chord = data[("Chord (No Prox.)", size)][0]
        crescendo = data[("Crescendo (No Prox.)", size)][0]
        chord_prox = data[("Chord (Prox.)", size)][0]
        crescendo_prox = data[("Crescendo (Prox.)", size)][0]
        # Paper's ordering: Crescendo beats Chord in both regimes, and
        # proximity adaptation helps Chord substantially.
        assert crescendo < chord
        assert crescendo_prox < chord_prox
        assert chord_prox < chord
        assert crescendo_prox == min(
            crescendo_prox, chord_prox, crescendo, chord
        ), "Crescendo (Prox.) is the best system"
    if len(sizes) >= 2:
        # Crescendo's stretch is near-constant in n; plain Chord's grows.
        growth_crescendo = (
            data[("Crescendo (No Prox.)", sizes[-1])][0]
            - data[("Crescendo (No Prox.)", sizes[0])][0]
        )
        growth_chord = (
            data[("Chord (No Prox.)", sizes[-1])][0]
            - data[("Chord (No Prox.)", sizes[0])][0]
        )
        assert growth_crescendo <= growth_chord + 0.3
