"""Benchmark regression gate: fresh re-record vs the checked-in baselines.

Re-runs a recorder at the baseline's own workload, then compares every
numeric leaf of the fresh document against the checked-in ``BENCH_*.json``:

- **deterministic** metrics (milliseconds, stretch, counts — everything the
  seeded workloads pin exactly) must match within ``--exact-tol`` relative
  tolerance (default 1e-6; they are bit-reproducible, the tolerance only
  absorbs JSON round-tripping);
- **timing** metrics (``*_seconds``, ``*_per_s``, ``speedup`` — wall-clock,
  machine-dependent) are compared at ``--timing-tol`` relative tolerance
  (default 0.5) and reported, but never fail the gate on their own;
- **memory** metrics split the same way: ``*arena_bytes`` (the exact size
  of a workload's shared-memory arena — a pure function of the network
  and the dtype-minimization rules) must match with tolerance 0 and
  gates like a deterministic metric, while ``*rss_bytes`` (allocator- and
  OS-dependent) reports at the timing tolerance and never gates;
- **count** metrics (``*_count`` — shed/hedge/retry/lost event counts from
  seeded serving workloads) must match with tolerance 0 and gate like
  deterministic metrics.

By default only the latency baseline is re-recorded (it finishes in
seconds); ``--baseline churn`` etc. opt into the slower ones.  Output is a
markdown table on stdout, also appended to ``$GITHUB_STEP_SUMMARY`` when
set (the CI job-summary annotation).  Exit status is 0 unless ``--strict``
is given *and* a deterministic metric regressed — the CI step stays
non-gating while the signal lands in the job summary.

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --strict
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent

#: name -> (baseline file, recorder module, extra recorder argv).
#: Recorder argv beyond --out must reproduce the checked-in workload.
BASELINES = {
    "latency": ("BENCH_latency.json", "record_latency_baseline", []),
    "churn": ("BENCH_churn.json", "record_churn_baseline", []),
    "build": ("BENCH_build.json", "record_build_baseline", []),
    "routing": ("BENCH_routing.json", "record_routing_baseline", []),
    "storage": ("BENCH_storage.json", "record_storage_baseline", []),
    "serving": ("BENCH_serving.json", "record_serving_baseline", []),
}

#: Leaf-key suffixes whose values are wall-clock measurements.
TIMING_MARKERS = ("_seconds", "_per_s", "speedup", "_us")

#: Memory leaves: arena sizes are deterministic (tolerance 0, gating);
#: RSS readings are allocator/OS noise (timing tolerance, never gate).
MEMORY_EXACT_MARKER = "arena_bytes"
MEMORY_NOISY_MARKER = "rss_bytes"

#: Event-count leaves (``*_count``): seeded workloads pin these exactly —
#: tolerance 0, gating (the serving baseline's shed/hedge/retry/lost
#: accounting).
COUNT_MARKER = "_count"


def is_timing(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1]
    return any(leaf.endswith(marker) or leaf == marker.strip("_") for marker in TIMING_MARKERS)


def metric_kind(path: str) -> str:
    """Classify a dotted leaf path: memory / rss / timing / deterministic."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith(MEMORY_EXACT_MARKER):
        return "memory"
    if leaf.endswith(MEMORY_NOISY_MARKER):
        return "rss"
    if leaf.endswith(COUNT_MARKER):
        return "count"
    if is_timing(path):
        return "timing"
    return "deterministic"


def numeric_leaves(doc, prefix=""):
    """Flatten nested dicts to {dotted.path: float} over numeric leaves."""
    out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            out.update(numeric_leaves(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


def rel_delta(old: float, new: float) -> float:
    if old == new:
        return 0.0
    scale = max(abs(old), abs(new), 1e-12)
    return abs(new - old) / scale


def compare(name: str, baseline: dict, fresh: dict, exact_tol: float, timing_tol: float):
    """Yield (metric, old, new, delta, kind, ok) rows for mismatched leaves."""
    old_leaves = numeric_leaves(baseline)
    new_leaves = numeric_leaves(fresh)
    rows = []
    for path in sorted(set(old_leaves) | set(new_leaves)):
        old = old_leaves.get(path)
        new = new_leaves.get(path)
        if old is None or new is None:
            rows.append((path, old, new, math.inf, "missing", False))
            continue
        kind = metric_kind(path)
        delta = rel_delta(old, new)
        tol = {
            "timing": timing_tol,
            "rss": timing_tol,
            "memory": 0.0,
            "count": 0.0,
        }.get(kind, exact_tol)
        if delta > tol:
            rows.append((path, old, new, delta, kind, False))
    return rows


def rerecord(name: str) -> dict:
    """Run the recorder for ``name`` into a temp file; return its document."""
    import importlib

    _, recorder, extra = BASELINES[name]
    module = importlib.import_module(recorder)
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "fresh.json"
        code = module.main(["--out", str(out)] + extra)
        if code not in (0, None):
            raise RuntimeError(f"{recorder} exited with {code}")
        return json.loads(out.read_text())


def render_markdown(results) -> str:
    lines = ["## Benchmark regression check", ""]
    any_rows = False
    for name, rows, gating_failures in results:
        status = "regressed" if gating_failures else "ok"
        lines.append(f"### `{BASELINES[name][0]}` — {status}")
        lines.append("")
        if not rows:
            lines.append("All deterministic metrics match the checked-in baseline; "
                         "timings within tolerance.")
            lines.append("")
            continue
        any_rows = True
        lines.append("| metric | baseline | fresh | rel. delta | kind |")
        lines.append("|---|---|---|---|---|")
        for path, old, new, delta, kind, _ in rows:
            fmt = lambda v: "—" if v is None else f"{v:.6g}"
            lines.append(
                f"| `{path}` | {fmt(old)} | {fmt(new)} | {delta:.3g} | {kind} |"
            )
        lines.append("")
    if not any_rows:
        lines.append("_No drift anywhere — fresh runs reproduce every baseline._")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        action="append",
        choices=sorted(BASELINES),
        help="baseline(s) to check (repeatable; default: latency — the only "
        "one cheap enough for every CI run)",
    )
    parser.add_argument(
        "--exact-tol",
        type=float,
        default=1e-6,
        help="relative tolerance for deterministic metrics (default 1e-6)",
    )
    parser.add_argument(
        "--timing-tol",
        type=float,
        default=0.5,
        help="relative tolerance for wall-clock metrics (default 0.5; "
        "never gates)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when a deterministic metric drifts (default: report only)",
    )
    args = parser.parse_args(argv)
    names = args.baseline or ["latency"]

    results = []
    exit_code = 0
    for name in names:
        baseline_path = REPO_ROOT / BASELINES[name][0]
        if not baseline_path.exists():
            print(f"note: {baseline_path.name} not checked in; skipping {name}")
            continue
        baseline = json.loads(baseline_path.read_text())
        fresh = rerecord(name)
        rows = compare(name, baseline, fresh, args.exact_tol, args.timing_tol)
        gating = [
            r
            for r in rows
            if r[4] in ("deterministic", "memory", "count", "missing")
        ]
        results.append((name, rows, gating))
        if gating and args.strict:
            exit_code = 1

    markdown = render_markdown(results)
    print(markdown)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(markdown + "\n")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
