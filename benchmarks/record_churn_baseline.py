"""Record the reference-vs-fast maintenance baseline into ``BENCH_churn.json``.

Replays one seed-derived churn schedule (the fuzzer's event mix: joins,
leaves, crashes, lookups, stabilization rounds and convergence
checkpoints) through both maintenance engines —
:class:`repro.simulation.protocol.SimulatedCrescendo` (reference) and
:class:`repro.perf.dynamic.FastSimulatedCrescendo` — at each ``--sizes``
population, and writes wall time plus events/second per engine as JSON.

Methodology: each engine bootstraps the identical membership, stabilizes
to link convergence and then runs a few extra settle rounds — leaf sets
keep refining for a couple of rounds past link convergence, and the
baseline measures steady-state churn from a true protocol fixpoint, not
the tail of the bootstrap transient.  Both engines replay the exact same
schedule; equivalence is asserted on the measured runs themselves (same
lookup outcomes, same per-kind message counts, same final link tables)
and additionally via :func:`repro.verify.oracles.compare_protocols` on a
small randomized schedule.  Run from the repo root::

    PYTHONPATH=src python benchmarks/record_churn_baseline.py

The checked-in ``BENCH_churn.json`` is the reference point for the
dynamic-maintenance fast path (see ``docs/performance.md``); CI re-records
it at small scale on every push as a non-gating artifact.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.idspace import IdSpace  # noqa: E402
from repro.perf.dynamic import make_protocol  # noqa: E402
from repro.simulation.churn import run_schedule  # noqa: E402
from repro.verify.fuzz import (  # noqa: E402
    DEFAULT_WEIGHTS,
    FUZZ_PATHS,
    FuzzConfig,
    bootstrap_network,
    generate_schedule,
)
from repro.verify.oracles import compare_protocols  # noqa: E402

#: Extra stabilization rounds past link convergence before measuring.
SETTLE_ROUNDS = 6


def build_network(engine, size, seed):
    """A settled network of ``size`` nodes (identical for both engines)."""
    rng = random.Random(f"churn-baseline:{seed}")
    space = IdSpace(32)
    net = make_protocol(space, engine=engine)
    for node_id in space.random_ids(size, rng):
        net.join(node_id, FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))])
    net.stabilize_to_convergence()
    for _ in range(SETTLE_ROUNDS):
        net.stabilize()
    return net


def bench_size(size, events, checkpoints, seed, repeats):
    """Timings for one population, plus the cross-engine equivalence check."""
    config = FuzzConfig(
        seed=seed, events=events, population=size, checkpoints=checkpoints
    )
    schedule = generate_schedule(config)
    seconds = {}
    reports = {}
    finals = {}
    messages = {}
    for engine in ("fast", "reference"):
        best = float("inf")
        for _ in range(repeats):
            net = build_network(engine, size, seed)
            base = dict(net.msgs.stats.counts)
            start = time.perf_counter()
            report = run_schedule(net, list(schedule))
            best = min(best, time.perf_counter() - start)
            reports[engine] = report
            finals[engine] = net.static_links()
            messages[engine] = {
                kind: count - base.get(kind, 0)
                for kind, count in net.msgs.stats.counts.items()
                if count != base.get(kind, 0)
            }
        seconds[engine] = best
    # The measured runs must be observably identical run-for-run.
    assert dataclasses.asdict(reports["fast"]) == dataclasses.asdict(
        reports["reference"]
    ), f"n={size}: schedule reports diverge between engines"
    assert messages["fast"] == messages["reference"], (
        f"n={size}: per-kind message counts diverge between engines"
    )
    assert finals["fast"] == finals["reference"], (
        f"n={size}: final link tables diverge between engines"
    )
    total = len(schedule)
    out = {
        "nodes": size,
        "events": total,
        "fast_seconds": seconds["fast"],
        "reference_seconds": seconds["reference"],
        "fast_events_per_s": total / seconds["fast"],
        "reference_events_per_s": total / seconds["reference"],
        "speedup": seconds["reference"] / seconds["fast"],
    }
    print(
        f"n={size:6d}  {total:4d} events  "
        f"reference {seconds['reference']:7.2f}s ({out['reference_events_per_s']:7.2f} ev/s)  "
        f"fast {seconds['fast']:7.2f}s ({out['fast_events_per_s']:7.2f} ev/s)  "
        f"({out['speedup']:.1f}x)"
    )
    return out


def validate_equivalence(seed):
    """A randomized compare_protocols run (beyond the measured workloads)."""
    config = FuzzConfig(seed=seed, events=80, population=128, checkpoints=4)
    schedule = generate_schedule(config)
    comparison = compare_protocols(
        lambda engine: bootstrap_network(config, engine=engine), schedule
    )
    assert comparison.equivalent, comparison.violations[:5]
    return f"compare_protocols: {len(schedule)} events @ population 128, ok"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_churn.json"),
        help="output path (default: repo-root BENCH_churn.json)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[1000, 4000, 16000],
        help="populations to measure (default: 1000 4000 16000)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=150,
        help="schedule length before checkpoints (default 150)",
    )
    parser.add_argument(
        "--checkpoints", type=int, default=2, help="convergence checkpoints"
    )
    parser.add_argument("--seed", type=int, default=7, help="schedule seed")
    parser.add_argument(
        "--repeats", type=int, default=1, help="timed replays per engine (best-of)"
    )
    args = parser.parse_args(argv)

    equivalence = validate_equivalence(args.seed)
    print(equivalence)
    doc = {
        "workload": {
            "hierarchy": "3 x 2 fuzz domains",
            "events": args.events,
            "checkpoints": args.checkpoints,
            "mix": DEFAULT_WEIGHTS,
            "settle_rounds": SETTLE_ROUNDS,
            "seed": args.seed,
        },
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": equivalence,
        "churn": {
            str(size): bench_size(
                size, args.events, args.checkpoints, args.seed, args.repeats
            )
            for size in args.sizes
        },
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
