"""Trace parity: FastSimulator emits the reference engine's event records.

The fast engine buffers per-event trace records and flushes them as one
batch per drain (one lock round-trip instead of one per event), but the
*content* — the ``sim.event`` sequence with virtual-time ``t`` and
``action`` attrs — must be exactly what the reference heap emits, so
``--trace`` output is engine-independent.
"""

from __future__ import annotations

from repro.obs.trace import Tracer, tracing
from repro.simulation.events import ConstantLatency, FastSimulator, Simulator


def drive(sim):
    """A deterministic mixed workload: closures, posts, nested schedules."""
    log = []

    def ping(i):
        log.append(("ping", i))

    def make_cascade(depth):
        def cascade():
            log.append(("cascade", depth))
            if depth:
                sim.schedule(0.5, make_cascade(depth - 1))

        return cascade

    sim.on("ping", ping)
    for i in range(5):
        sim.post(float(i % 3), "ping", i)
    sim.schedule(1.25, make_cascade(3))
    sim.run()
    sim.post(0.0, "ping", 99)
    sim.run()  # a second drain: buffered records must flush per drain
    return log


def sim_events(tracer):
    return [
        (r["attrs"]["t"], r["attrs"]["action"])
        for r in tracer.records
        if r.get("name") == "sim.event"
    ]


def test_fast_simulator_traces_match_reference():
    ref_tracer, fast_tracer = Tracer(), Tracer()
    ref_log = drive(Simulator(tracer=ref_tracer))
    fast_log = drive(FastSimulator(tracer=fast_tracer))
    assert ref_log == fast_log  # behavior parity first
    ref_events = sim_events(ref_tracer)
    fast_events = sim_events(fast_tracer)
    assert ref_events == fast_events
    assert len(ref_events) == len(ref_log)


def test_fast_simulator_picks_up_active_tracer():
    with tracing() as tracer:
        sim = FastSimulator()
        sim.on("tick", lambda: None)
        sim.post(0.0, "tick")
        sim.run()
    events = sim_events(tracer)
    assert events == [(0.0, "tick")]


def test_no_tracer_no_buffering():
    sim = FastSimulator()
    sim.on("tick", lambda: None)
    for _ in range(10):
        sim.post(0.0, "tick")
    assert sim.run() == 10
    assert sim._trace_buffer == []


def test_closure_actions_get_qualified_names():
    with tracing() as tracer:
        sim = FastSimulator()

        def my_action():
            pass

        sim.schedule(0.0, my_action)
        sim.run()
    (event,) = sim_events(tracer)
    assert "my_action" in event[1]


def test_events_many_shares_parent_span():
    tracer = Tracer()
    with tracer.span("drain"):
        tracer.events_many("sim.event", [{"t": 0.0}, {"t": 1.0}])
    children = [r for r in tracer.records if r.get("name") == "sim.event"]
    assert len(children) == 2
    assert all(c["parent"] == "drain" for c in children)
    # One shared wall-clock timestamp per batch, by design.
    assert children[0]["ts"] == children[1]["ts"]


def test_message_layer_trace_parity():
    """Messages delivered through either queue backend trace identically."""
    from repro.simulation.events import MessageLayer

    def run(sim_cls):
        delivered = []
        with tracing() as tracer:
            sim = sim_cls()
            msgs = MessageLayer(sim, ConstantLatency(2.0))

            def deliver(src, dst):
                delivered.append((src, dst))
                if len(delivered) < 8:  # each delivery triggers a forward
                    msgs.send(dst, dst + 1, "forward", make(dst, dst + 1))

            def make(src, dst):
                return lambda: deliver(src, dst)

            msgs.send(0, 1, "lookup", make(0, 1))
            sim.run()
        return delivered, dict(msgs.stats.counts), sim_events(tracer)

    ref_delivered, ref_counts, ref_events = run(Simulator)
    fast_delivered, fast_counts, fast_events = run(FastSimulator)
    assert ref_delivered == fast_delivered
    assert ref_counts == fast_counts == {"lookup": 1, "forward": 7}
    assert ref_events == fast_events
    assert len(ref_events) == 8
