"""Tests for the fast dynamic-maintenance engine (``repro.perf.dynamic``).

The load-bearing property is engine equivalence: the fast engine must be
observably indistinguishable from the reference — same lookup outcomes,
same per-kind message counts, same final protocol state — on any churn
schedule.  Everything else here (arena bookkeeping, memoization, engine
selection) supports that contract.
"""

import json
import random
from pathlib import Path

import pytest

from repro.core.idspace import IdSpace
from repro.perf.dynamic import (
    ENGINE_MODES,
    FastSimulatedCrescendo,
    NodeArena,
    get_engine_mode,
    make_protocol,
    resolve_engine,
    set_engine_mode,
)
from repro.simulation.churn import run_schedule
from repro.simulation.events import FastSimulator
from repro.simulation.protocol import SimulatedCrescendo
from repro.verify.fuzz import (
    FUZZ_PATHS,
    FuzzConfig,
    bootstrap_network,
    generate_schedule,
    replay,
    schedule_from_json,
)
from repro.verify.oracles import compare_protocols

FIXTURE = Path(__file__).parent / "fixtures" / "fuzz_counterexample.json"


class TestEngineSelection:
    def teardown_method(self):
        set_engine_mode("auto")

    def test_auto_resolves_to_fast(self):
        assert resolve_engine("auto") == "fast"
        assert resolve_engine("fast") == "fast"
        assert resolve_engine("reference") == "reference"

    def test_make_protocol_engine_classes(self):
        space = IdSpace(16)
        assert type(make_protocol(space, engine="reference")) is SimulatedCrescendo
        fast = make_protocol(space, engine="fast")
        assert isinstance(fast, FastSimulatedCrescendo)
        assert isinstance(fast.sim, FastSimulator)

    def test_engine_class_attribute(self):
        space = IdSpace(16)
        assert make_protocol(space, engine="reference").engine == "reference"
        assert make_protocol(space, engine="fast").engine == "fast"

    def test_process_wide_mode(self):
        set_engine_mode("reference")
        assert get_engine_mode() == "reference"
        assert type(make_protocol(IdSpace(16))) is SimulatedCrescendo
        set_engine_mode("auto")
        assert isinstance(make_protocol(IdSpace(16)), FastSimulatedCrescendo)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown engine mode"):
            set_engine_mode("turbo")
        with pytest.raises(ValueError, match="unknown engine mode"):
            resolve_engine("turbo")
        assert "turbo" not in ENGINE_MODES


class TestNodeArena:
    def test_rings_stay_sorted_per_level(self):
        arena = NodeArena()
        for node_id in (50, 10, 30):
            arena.add(node_id, ("a", "x"))
        arena.add(20, ("a", "y"))
        assert arena.ring_members(()) == [10, 20, 30, 50]
        assert arena.ring_members(("a",)) == [10, 20, 30, 50]
        assert arena.ring_members(("a", "x")) == [10, 30, 50]
        assert arena.ring_members(("a", "y")) == [20]

    def test_crash_drops_live_but_keeps_insertion_order(self):
        arena = NodeArena()
        for node_id in (5, 9, 3):
            arena.add(node_id, ("a",))
        arena.crash(9)
        assert arena.ring_members(("a",)) == [3, 5]
        assert list(arena.ordered_members(("a",))) == [5, 9, 3]
        arena.remove(9, ("a",))
        assert list(arena.ordered_members(("a",))) == [5, 3]

    def test_rejoin_appends_at_end_of_insertion_order(self):
        # Mirrors Hierarchy.members: a purged node that rejoins is a new
        # arrival, so the bootstrap directory lists it last.
        arena = NodeArena()
        for node_id in (1, 2, 3):
            arena.add(node_id, ("a",))
        arena.crash(2)
        arena.remove(2, ("a",))
        arena.add(2, ("a",))
        assert list(arena.ordered_members(("a",))) == [1, 3, 2]

    def test_successor_table_is_the_rolled_ring(self):
        arena = NodeArena()
        for node_id in (40, 10, 99, 70):
            arena.add(node_id, ("a",))
        arena.add(7, ("b",))
        table = arena.successor_table()
        assert table[("a",)] == {10: 40, 40: 70, 70: 99, 99: 10}
        assert table[()] == {7: 10, 10: 40, 40: 70, 70: 99, 99: 7}
        assert ("b",) not in table  # singleton rings have no successor


def _twin_networks(size=48, seed=3):
    """The same bootstrap joined into both engines, in the same order."""
    rng = random.Random(f"twin:{seed}")
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    paths = [FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))] for _ in ids]
    nets = []
    for engine in ("reference", "fast"):
        net = make_protocol(IdSpace(32), engine=engine)
        for node_id, path in zip(ids, paths):
            net.join(node_id, path)
        nets.append(net)
    return nets


def _ring_state(net):
    return {
        node_id: {
            depth: (ring.predecessor, list(ring.successors), sorted(ring.fingers))
            for depth, ring in node.rings.items()
        }
        for node_id, node in net.nodes.items()
        if node.alive
    }


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_schedules_equivalent(self, seed):
        config = FuzzConfig(seed=seed, events=90, population=48, checkpoints=3)
        schedule = generate_schedule(config)
        comparison = compare_protocols(
            lambda engine: bootstrap_network(config, engine=engine), schedule
        )
        assert comparison.equivalent, comparison.violations[:5]

    def test_batched_stabilization_round_matches_reference_under_damage(self):
        # Satellite property: one stabilize() round after crashes must be
        # message-count- and state-equivalent between the engines.
        ref, fast = _twin_networks()
        for net in (ref, fast):
            net.stabilize_to_convergence()
        victims = sorted(n for n in ref.nodes)[::7][:5]
        for net in (ref, fast):
            for victim in victims:
                net.crash(victim)
            net.msgs.stats.reset()
            net.stabilize()
        assert dict(ref.msgs.stats.counts) == dict(fast.msgs.stats.counts)
        assert _ring_state(ref) == _ring_state(fast)
        assert ref.static_links() == fast.static_links()

    def test_lookup_outcomes_and_messages_match(self):
        ref, fast = _twin_networks()
        for net in (ref, fast):
            net.stabilize_to_convergence()
            net.msgs.stats.reset()
        live = list(ref.live_view())
        rng = random.Random(9)
        for _ in range(40):
            src = live[rng.randrange(len(live))]
            key = ref.space.random_id(rng)
            ref_route = ref.lookup(src, key)
            fast_route = fast.lookup(src, key)
            assert ref_route.path == fast_route.path
            assert ref_route.success == fast_route.success
        assert dict(ref.msgs.stats.counts) == dict(fast.msgs.stats.counts)

    def test_checked_in_counterexample_replays_identically(self):
        # The fixture must reproduce bit-for-bit under either engine.
        config, events, expect_violations = schedule_from_json(
            FIXTURE.read_text()
        )
        assert expect_violations
        reports = {}
        for engine in ENGINE_MODES:
            config.engine = engine
            report = replay(config, events)
            assert report.failed, f"{engine}: fixture no longer fails"
            reports[engine] = [
                (v.check, v.family, v.node, v.level) for v in report.violations
            ]
        assert reports["fast"] == reports["reference"] == reports["auto"]


class TestMemoization:
    def _settled(self, size=48):
        net = make_protocol(IdSpace(32), engine="fast")
        rng = random.Random("memo")
        for node_id in net.space.random_ids(size, rng):
            net.join(node_id, FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))])
        net.stabilize_to_convergence()
        while True:
            epoch = net._epoch
            net.stabilize()
            if net._epoch == epoch:
                return net

    def test_quiescent_rounds_replay_identical_counts(self):
        net = self._settled()
        net.msgs.stats.reset()
        first = net.stabilize()
        counts = dict(net.msgs.stats.counts)
        net.msgs.stats.reset()
        second = net.stabilize()
        assert first == second
        assert counts == dict(net.msgs.stats.counts)
        live_levels = sum(
            node.leaf_depth + 1 for node in net.nodes.values() if node.alive
        )
        assert len(net._stab_memo) == live_levels

    def test_writes_invalidate_dependent_memos(self):
        net = self._settled()
        net.stabilize()
        before = len(net._stab_memo)
        assert before > 0
        victim = next(iter(net.live_view()))
        net.crash(victim)
        assert len(net._stab_memo) < before
        # And the round after the crash still converges on the oracle.
        net.stabilize_to_convergence()

    def test_purged_nodes_leave_no_memo_entries(self):
        net = self._settled()
        net.stabilize()
        victim = next(iter(net.live_view()))
        net.crash(victim)
        net.stabilize()  # purges the crashed node
        assert victim not in net.nodes
        assert not any(key[0] == victim for key in net._stab_memo)
        assert victim not in net._stab_deps


class TestLiveViewCache:
    def test_cache_invalidated_on_membership_changes(self):
        for engine in ("reference", "fast"):
            net = make_protocol(IdSpace(32), engine=engine)
            rng = random.Random(4)
            ids = net.space.random_ids(8, rng)
            for node_id in ids:
                net.join(node_id, ("a", "x"))
            assert list(net.live_view()) == sorted(ids)
            net.crash(ids[0])
            assert list(net.live_view()) == sorted(ids[1:])
            newcomer = max(ids) + 1
            net.join(newcomer, ("a", "x"))
            assert newcomer in net.live_view()

    def test_live_set_is_preseeded(self):
        net = make_protocol(IdSpace(32), engine="fast")
        rng = random.Random(5)
        for node_id in net.space.random_ids(6, rng):
            net.join(node_id, ("a", "x"))
        live = net.live_set()
        assert live.sorted_ids == list(net.live_view())


class TestFastEventCore:
    def test_schedule_replay_uses_calendar_queue_simulator(self):
        config = FuzzConfig(seed=2, events=40, population=24, checkpoints=2)
        net = bootstrap_network(config, engine="fast")
        assert isinstance(net.sim, FastSimulator)
        report = run_schedule(net, generate_schedule(config))
        assert report.checkpoints >= 2
