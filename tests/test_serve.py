"""Tests for the ``repro.serve`` batched lookup-serving runtime.

The load-bearing claims: frontier stepping is hop-for-hop the batch
router (kernel level), the runtime completes every admitted ticket with
the routing verdict of :meth:`CompiledNetwork.route` on a static view,
and — the differential anchor — batched serving agrees with the scalar
:class:`AsyncEngine` per lookup on a *live, churning* network.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.serve import (
    STATUS_LOST,
    STATUS_OK,
    ServeRuntime,
    compile_protocol_view,
    run_closed_loop,
)
from repro.serve.batcher import FREE, RUNNING, FrontierBatcher
from repro.serve.testbed import build_serving_net, domain_labeler, lookup_workload
from repro.verify.oracles import compare_serving


class TestFrontierBatcher:
    def test_alloc_release_recycles_slots(self):
        b = FrontierBatcher(capacity=16)
        slots = b.alloc(10)
        assert b.in_flight == 10
        b.state[slots] = RUNNING
        b.ticket[slots] = np.arange(10)
        b.release(slots[:4])
        assert b.in_flight == 6
        assert np.all(b.state[slots[:4]] == FREE)
        assert np.all(b.ticket[slots[:4]] == -1)
        again = b.alloc(4)
        assert set(again.tolist()) == set(slots[:4].tolist())

    def test_grow_preserves_existing_state(self):
        b = FrontierBatcher(capacity=16)
        first = b.alloc(16)
        b.ticket[first] = np.arange(16)
        b.state[first] = RUNNING
        more = b.alloc(20)
        assert b.capacity >= 36
        assert np.array_equal(np.sort(b.ticket[first]), np.arange(16))
        assert np.all(b.ticket[more] == -1)
        assert b.in_flight == 36

    def test_slots_in_filters_by_state(self):
        b = FrontierBatcher(capacity=16)
        slots = b.alloc(6)
        b.state[slots[:2]] = RUNNING
        running = b.slots_in(RUNNING)
        assert set(running.tolist()) == set(slots[:2].tolist())


class TestFrontierStepping:
    """Repeated frontier_step calls must reproduce route() exactly."""

    def test_stepping_matches_batch_route_with_latency(self):
        net, latency = build_serving_net(192, seed=3)
        compiled, alive = compile_protocol_view(net)
        sources, keys = lookup_workload(net, 300, seed=3)
        expected = compiled.route(
            sources, keys, alive=set(alive.tolist()), latency=latency
        )
        state = compiled.begin_frontier(sources, keys)
        for _ in range(10_000):
            if compiled.step_frontier(state, alive, latency=latency) == 0:
                break
        assert np.all(state.done)
        assert np.array_equal(state.hops, expected.hops)
        assert np.array_equal(state.cur, expected.terminals)
        assert np.array_equal(state.success, expected.success)
        assert np.allclose(state.latency_ms, expected.latency_ms)


class TestRuntimeBasics:
    def test_every_ticket_completes_with_route_verdict(self):
        net, _ = build_serving_net(128, seed=5, with_latency=False)
        compiled, alive = compile_protocol_view(net)
        runtime = ServeRuntime(compiled, alive)
        sources, keys = lookup_workload(net, 200, seed=5)
        tickets = runtime.submit_many(sources, keys)
        assert tickets.size == 200 and runtime.outstanding == 200
        runtime.drain()
        assert runtime.outstanding == 0 and runtime.in_flight == 0
        report = runtime.report()
        assert report.size == 200
        assert sorted(report.tickets.tolist()) == tickets.tolist()
        expected = compiled.route(sources, keys, alive=set(alive.tolist()))
        want = {
            (int(s), int(k)): (bool(ok), int(term))
            for s, k, ok, term in zip(
                sources, keys, expected.success, expected.terminals
            )
        }
        for i in range(report.size):
            pair = (int(report.sources[i]), int(report.keys[i]))
            assert want[pair] == (
                bool(report.success[i]),
                int(report.terminals[i]),
            )
        c = report.counters
        assert c["submitted"] == c["completed"] == 200
        assert c["delivered"] == int(np.count_nonzero(report.success))
        assert c["shed"] == c["denied"] == c["expired"] == 0

    def test_domain_labels_are_cached_per_node(self):
        net, _ = build_serving_net(64, seed=6, with_latency=False)
        compiled, alive = compile_protocol_view(net)
        runtime = ServeRuntime(compiled, alive, domain_of=domain_labeler(net))
        sources, keys = lookup_workload(net, 50, seed=6)
        runtime.submit_many(sources, keys)
        runtime.drain()
        live = set(net.live_view())
        for node_id, label in runtime._domain_cache.items():
            assert node_id in live
            assert label == str(net.nodes[node_id].path[0])

    def test_set_view_after_churn_keeps_inflight_tickets(self):
        net, _ = build_serving_net(256, seed=7, with_latency=False)
        compiled, alive = compile_protocol_view(net)
        runtime = ServeRuntime(compiled, alive)
        sources, keys = lookup_workload(net, 300, seed=7)
        runtime.submit_many(sources, keys)
        runtime.tick()
        runtime.tick()
        rng = random.Random("serve-test-churn")
        for victim in rng.sample(sorted(net.live_view()), 40):
            net.crash(victim)
        runtime.set_view(*compile_protocol_view(net))
        runtime.drain()
        report = runtime.report()
        # Every admitted ticket still resolves exactly once; runners parked
        # on crashed nodes surface as LOST rather than hanging.
        assert report.size == 300
        assert report.counters["lost"] == int(
            np.count_nonzero(report.status == STATUS_LOST)
        )

    def test_closed_loop_caps_outstanding(self):
        net, _ = build_serving_net(128, seed=8, with_latency=False)
        compiled, alive = compile_protocol_view(net)
        runtime = ServeRuntime(compiled, alive)
        sources, keys = lookup_workload(net, 400, seed=8)
        seen = []
        report = run_closed_loop(
            runtime,
            sources,
            keys,
            concurrency=64,
            on_tick=lambda rt, _t: seen.append(rt.outstanding),
        )
        assert report.size == 400
        assert max(seen) <= 64

    def test_report_quantiles_and_summary(self):
        net, latency = build_serving_net(128, seed=9)
        compiled, alive = compile_protocol_view(net)
        runtime = ServeRuntime(compiled, alive, latency=latency)
        sources, keys = lookup_workload(net, 100, seed=9)
        runtime.submit_many(sources, keys)
        runtime.drain()
        report = runtime.report()
        assert report.quantile_ms(0.5) <= report.quantile_ms(0.99)
        text = report.summary()
        assert "100 submitted" in text and "p99" in text

    def test_mismatched_batch_shapes_rejected(self):
        net, _ = build_serving_net(64, seed=1, with_latency=False)
        runtime = ServeRuntime(*compile_protocol_view(net))
        with pytest.raises(ValueError):
            runtime.submit_many([1, 2, 3], [4, 5])


class TestDifferentialAsync:
    """Pin batched frontier serving to AsyncEngine, hop for hop."""

    def test_agrees_with_async_engine_on_static_net(self):
        net, _ = build_serving_net(200, seed=12, with_latency=False)
        live = sorted(net.live_view())
        rng = random.Random("serve-diff-static")
        lookups = [
            (rng.choice(live), rng.randrange(net.space.size)) for _ in range(250)
        ]
        comparison = compare_serving(
            lambda: build_serving_net(200, seed=12, with_latency=False)[0],
            lookups,
        )
        assert comparison.equivalent, comparison.violations
        assert len(comparison.scalar) == 250

    def test_agrees_with_async_engine_under_live_churn(self):
        """Mid-flight crashes: the batched runtime must lose, fail and
        deliver exactly the lookups the discrete-event engine does."""

        def factory():
            return build_serving_net(
                300, seed=13, engine="reference", with_latency=False
            )[0]

        net = factory()
        live = sorted(net.live_view())
        rng = random.Random("serve-diff-churn")
        lookups = [
            (rng.choice(live), rng.randrange(net.space.size)) for _ in range(250)
        ]
        victims = rng.sample(live, 30)

        def crash_some(target, batch):
            for victim in batch:
                if victim in target.nodes and target.nodes[victim].alive:
                    target.crash(victim)

        churn = [
            (2, lambda n: crash_some(n, victims[:15])),
            (4, lambda n: crash_some(n, victims[15:])),
        ]
        comparison = compare_serving(factory, lookups, churn=churn)
        assert comparison.equivalent, comparison.violations
        statuses = comparison.report.status
        assert comparison.report.size == 250
        # The schedule is hot enough that churn actually bites: at least
        # one lookup must terminate off the happy path on both engines.
        assert np.any(statuses != STATUS_OK)
        assert any(not r.success for r in comparison.scalar)
