"""Seed robustness: the headline claims hold across independent seeds.

Every experiment uses fixed seeds for reproducibility; these tests re-check
the core qualitative claims on several *other* seeds so the results cannot
be an artifact of one lucky draw.
"""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork

SEEDS = (1001, 2002, 3003, 4004)


def build_pair(seed, size=800, levels=3):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    flat = build_uniform_hierarchy(ids, 10, 1, random.Random(seed))
    deep = build_uniform_hierarchy(ids, 10, levels, random.Random(seed))
    return (
        ChordNetwork(space, flat).build(),
        CrescendoNetwork(space, deep).build(),
        ids,
        rng,
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestAcrossSeeds:
    def test_degree_economy(self, seed):
        chord, crescendo, ids, rng = build_pair(seed)
        assert crescendo.average_degree() <= chord.average_degree()
        assert abs(chord.average_degree() - math.log2(len(ids))) < 1.0

    def test_hop_penalty_bounded(self, seed):
        chord, crescendo, ids, rng = build_pair(seed)
        pairs = [tuple(rng.sample(ids, 2)) for _ in range(250)]
        chord_hops = statistics.mean(route_ring(chord, a, b).hops for a, b in pairs)
        cres_hops = statistics.mean(
            route_ring(crescendo, a, b).hops for a, b in pairs
        )
        assert cres_hops - chord_hops <= 1.0

    def test_locality_absolute(self, seed):
        _, crescendo, ids, rng = build_pair(seed)
        hierarchy = crescendo.hierarchy
        for _ in range(80):
            a, b = rng.sample(ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            result = route_ring(crescendo, a, b)
            assert result.success
            assert all(
                hierarchy.path_of(n)[: len(shared)] == shared
                for n in result.path
            )

    def test_convergence_property(self, seed):
        _, crescendo, ids, rng = build_pair(seed)
        hierarchy = crescendo.hierarchy
        checked = 0
        while checked < 25:
            src = rng.choice(ids)
            domain = hierarchy.path_of(src)[:1]
            key = crescendo.space.random_id(rng)
            if hierarchy.path_of(crescendo.responsible_node(key))[:1] == domain:
                continue
            expected = crescendo.exit_node(domain, key)
            path = route_ring(crescendo, src, key).path
            inside = [n for n in path if hierarchy.path_of(n)[:1] == domain]
            assert inside[-1] == expected
            checked += 1


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_protocol_oracle_equality_across_seeds(seed):
    from repro.simulation.protocol import SimulatedCrescendo

    rng = random.Random(seed)
    space = IdSpace(32)
    net = SimulatedCrescendo(space)
    for node_id in space.random_ids(120, rng):
        net.join(node_id, (rng.choice("abc"), rng.choice("xy")))
    net.stabilize()
    assert net.static_links() == net.oracle_links()
