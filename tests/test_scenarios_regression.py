"""Bit-for-bit replay of the checked-in scenario fixtures, both engines.

Each ``tests/fixtures/scenario_<name>.json`` was produced by the
generator run recorded in its ``note`` field (compiled at smoke scale,
seed 0; negative controls additionally ddmin-shrunk).  The ``expect``
block pins every observable of the replay — event counts, final
population, lookup/data outcome digests, total message cost, residual
oracle violations and the exact latency sum — computed on the reference
engine.  Replaying on *either* engine must reproduce all of it: any
regression in the DSL substrate, the churn replay, either maintenance
engine, the latency attach or the oracle stack shows up as a digest
mismatch here without re-running the compiler.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.scenarios import __main__ as scenarios_cli
from repro.scenarios.catalog import CATALOG
from repro.scenarios.dsl import scenario_from_json
from repro.scenarios.runner import run_scenario

FIXTURES = Path(__file__).parent / "fixtures"
NAMES = sorted(CATALOG)


def _digest(value) -> str:
    return hashlib.sha256(json.dumps(value).encode()).hexdigest()


def _load(name):
    text = (FIXTURES / f"scenario_{name}.json").read_text()
    document = scenario_from_json(text)
    expect = json.loads(text)["expect"]
    return document, expect


def test_every_catalog_scenario_has_a_fixture():
    on_disk = {p.stem[len("scenario_"):] for p in FIXTURES.glob("scenario_*.json")}
    assert on_disk == set(NAMES)


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("name", NAMES)
def test_fixture_replays_bit_for_bit(name, engine):
    document, expect = _load(name)
    result = run_scenario(
        document.spec,
        seed=document.seed,
        engine=engine,
        families=(),
        routing_pairs=0,
        events=document.events,
        latency=True,
    )
    report = result.report
    observed = {
        "joins": report.joins,
        "leaves": report.leaves,
        "crashes": report.crashes,
        "killed": report.killed,
        "suspended": report.suspended,
        "revived": report.revived,
        "checkpoints": report.checkpoints,
        "final_population": report.final_population,
        "lookups_attempted": report.lookups_attempted,
        "lookups_delivered": report.lookups_delivered,
        "puts": report.puts,
        "data_gets": report.data_gets,
        "outcomes_sha256": _digest(report.lookup_outcomes),
        "paths_sha256": _digest(report.lookup_paths),
        "data_outcomes_sha256": _digest(report.data_outcomes),
        "messages": result.message_total,
        "residual_violations": len(result.residual),
        "lookup_ms_sum": sum(result.lookup_ms),
    }
    assert observed == expect, f"{name} no longer replays on {engine}"
    assert result.failed == document.expect_violations


def test_noheal_fixture_is_shrunk_and_still_trips():
    document, expect = _load("partition_noheal")
    assert document.expect_violations
    # ddmin got it down to the single partition event: the reachable
    # side's rings are instantly stale against live membership.
    assert [e.kind for e in document.events] == ["partition"]
    assert expect["residual_violations"] > 0


@pytest.mark.parametrize("name", ["slow_join", "partition_noheal"])
def test_cli_replay_exits_zero(name, capsys):
    code = scenarios_cli.main(
        [
            "replay",
            str(FIXTURES / f"scenario_{name}.json"),
            "--families",
            "chord",
            "--routing-pairs",
            "4",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    if name == "partition_noheal":
        assert "tripped as expected" in out
