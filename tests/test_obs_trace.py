"""Tests for the span/event/route tracer (`repro.obs.trace`)."""

from __future__ import annotations

import json

import pytest

from repro import hierarchy_from_names
from repro.core.routing import Route, route_ring
from repro.obs.trace import (
    HopAnnotation,
    Tracer,
    active_tracer,
    annotate_hops,
    jsonl_to_chrome,
    tracing,
)

from conftest import make_crescendo


@pytest.fixture
def named_hierarchy():
    return hierarchy_from_names(
        {
            1: "stanford.cs.db",
            2: "stanford.cs.db",
            3: "stanford.cs.ai",
            4: "stanford.ee",
            5: "mit.csail",
        }
    )


class TestSpans:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", n=4096):
            pass
        (rec,) = tracer.records
        assert rec["type"] == "span"
        assert rec["name"] == "work"
        assert rec["dur"] >= 0
        assert rec["attrs"] == {"n": 4096}

    def test_nested_spans_record_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.event("tick")
        inner, tick, outer = tracer.records
        assert inner["parent"] == "outer"
        assert tick["parent"] == "outer"
        assert "parent" not in outer

    def test_span_recorded_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.records[0]["name"] == "doomed"

    def test_clear_and_len(self):
        tracer = Tracer()
        tracer.event("a")
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0


class TestHopAnnotation:
    def test_annotate_hops_levels_and_domains(self, named_hierarchy):
        hops = annotate_hops([1, 2, 3, 4, 5], named_hierarchy)
        assert hops[0] == HopAnnotation(1, 2, 3, "stanford.cs.db")
        assert hops[1] == HopAnnotation(2, 3, 2, "stanford.cs")
        assert hops[2] == HopAnnotation(3, 4, 1, "stanford")
        assert hops[3] == HopAnnotation(4, 5, 0, "")

    def test_route_record_carries_annotated_path(self, named_hierarchy):
        tracer = Tracer()
        tracer.route(Route([1, 3, 5], True, 5), hierarchy=named_hierarchy)
        (rec,) = tracer.records
        assert rec["type"] == "route"
        assert rec["hops"] == 2
        assert rec["success"] is True
        assert [h["level"] for h in rec["path"]] == [2, 0]
        assert [h["domain"] for h in rec["path"]] == ["stanford.cs", ""]

    def test_route_record_without_hierarchy_keeps_raw_path(self):
        tracer = Tracer()
        tracer.route(Route([1, 2], True, 2))
        assert tracer.records[0]["path"] == [1, 2]


class TestExports:
    def test_jsonl_one_valid_record_per_line(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", k=1):
            tracer.event("e")
        out = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(out))
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {r["type"] for r in records} == {"span", "event"}

    def test_chrome_export_is_loadable(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("e")
        tracer.route(Route([1, 2], True, 2))
        out = tmp_path / "trace.json"
        tracer.export_chrome(str(out))
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        assert len(events) == 3
        assert {e["ph"] for e in events} == {"X", "i"}
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_jsonl_to_chrome_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        tracer.export_jsonl(str(jsonl))
        assert jsonl_to_chrome(str(jsonl), str(chrome)) == 1
        data = json.loads(chrome.read_text())
        assert data["traceEvents"][0]["name"] == "s"
        assert data["traceEvents"][0]["ph"] == "X"


class TestActiveTracer:
    def test_tracing_context_installs_and_restores(self):
        assert active_tracer() is None
        with tracing() as tracer:
            assert active_tracer() is tracer
            with tracing() as inner:
                assert active_tracer() is inner
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_routing_engine_emits_to_given_tracer(self):
        net = make_crescendo(size=60, levels=2, seed=3)
        tracer = Tracer()
        a, b = net.node_ids[0], net.node_ids[7]
        result = route_ring(net, a, b, tracer=tracer)
        (rec,) = tracer.records
        assert rec["hops"] == result.hops
        assert rec["src"] == a
        assert rec["dest_key"] == b
        assert all("level" in hop for hop in rec["path"])
