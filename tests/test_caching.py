"""Tests for proxy-node caching and level-aware replacement (§4.2)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.crescendo import CrescendoNetwork
from repro.storage.caching import CachingStore, LevelAwareCache
from repro.storage.store import HierarchicalStore


class TestLevelAwareCache:
    def test_put_get(self):
        cache = LevelAwareCache(4)
        cache.put(1, "a", 1)
        assert cache.get(1) == "a"
        assert cache.get(2) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LevelAwareCache(0)

    def test_eviction_prefers_deeper_levels(self):
        cache = LevelAwareCache(2)
        cache.put(1, "top", 1)
        cache.put(2, "deep", 3)
        cache.put(3, "mid", 2)  # forces one eviction
        assert cache.get(2) is None, "deepest level (largest number) evicted first"
        assert cache.get(1) == "top"
        assert cache.get(3) == "mid"

    def test_lru_within_level(self):
        cache = LevelAwareCache(2)
        cache.put(1, "a", 1)
        cache.put(2, "b", 1)
        cache.get(1)  # touch 1
        cache.put(3, "c", 1)
        assert cache.get(2) is None
        assert cache.get(1) == "a"

    def test_reinsert_keeps_smaller_level(self):
        cache = LevelAwareCache(4)
        cache.put(1, "v", 3)
        cache.put(1, "v", 1)
        assert cache.level_of(1) == 1
        cache.put(1, "v", 5)
        assert cache.level_of(1) == 1, "a proxy for several levels keeps the smallest"

    def test_eviction_counter(self):
        cache = LevelAwareCache(1)
        cache.put(1, "a", 1)
        cache.put(2, "b", 1)
        assert cache.evictions == 1
        assert len(cache) == 1


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(500, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 3, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    store = HierarchicalStore(net)
    return net, store, rng


class TestCachingStore:
    def test_first_query_misses_then_hits(self, env):
        net, store, rng = env
        caching = CachingStore(store, capacity=64)
        owner = net.node_ids[0]
        caching.put(owner, "doc1", "v1")
        src_domain = net.hierarchy.path_of(net.node_ids[5])[:2]
        queriers = net.hierarchy.members(src_domain)[:6]
        first = caching.get(queriers[0], "doc1")
        assert first.found
        again = caching.get(queriers[0], "doc1")
        assert again.found
        assert caching.stats.hits >= 1

    def test_same_domain_queriers_benefit(self, env):
        """After one query, same-domain peers find the cached copy at their
        shared proxy: hop counts drop."""
        net, store, rng = env
        caching = CachingStore(store, capacity=64)
        owner = net.node_ids[1]
        caching.put(owner, "doc2", "v2")
        domain = net.hierarchy.path_of(net.node_ids[7])[:1]
        members = net.hierarchy.members(domain)
        warm = caching.get(members[0], "doc2")
        assert warm.found
        later_hops = []
        for src in members[1:8]:
            result = caching.get(src, "doc2")
            assert result.found and result.values == ["v2"]
            later_hops.append(result.hops)
        assert min(later_hops) <= warm.hops

    def test_cached_copy_found_in_lowest_shared_domain(self, env):
        net, store, rng = env
        caching = CachingStore(store, capacity=64)
        owner = net.node_ids[2]
        caching.put(owner, "doc3", "v3")
        # First querier warms the caches along its ancestor chain.
        src = net.node_ids[11]
        caching.get(src, "doc3")
        path = net.hierarchy.path_of(src)
        key_hash = net.space.hash_key("doc3")
        for depth in range(1, len(path) + 1):
            proxy = store.home_node(key_hash, path[:depth])
            answered_domain = net.hierarchy.path_of(
                net.responsible_node(key_hash)
            )
            # Proxies below the answer's shared domain must hold the value.
            cache = caching.cache_at(proxy)
            shared_depth = len(
                net.hierarchy.lca_of_nodes(src, net.responsible_node(key_hash))
            )
            if depth > shared_depth:
                assert cache.get(key_hash) == "v3"

    def test_level_annotations_increase_with_depth(self, env):
        net, store, rng = env
        caching = CachingStore(store, capacity=64)
        owner = net.node_ids[3]
        caching.put(owner, "doc4", "v4")
        src = net.node_ids[13]
        caching.get(src, "doc4")
        key_hash = net.space.hash_key("doc4")
        path = net.hierarchy.path_of(src)
        shared_depth = len(
            net.hierarchy.lca_of_nodes(src, net.responsible_node(key_hash))
        )
        levels = []
        for depth in range(shared_depth + 1, len(path) + 1):
            proxy = store.home_node(key_hash, path[:depth])
            level = caching.cache_at(proxy).level_of(key_hash)
            if level is not None:
                levels.append((depth, level))
        for (d1, l1), (d2, l2) in zip(levels, levels[1:]):
            assert l2 >= l1, "deeper proxies carry larger level numbers"

    def test_miss_returns_not_found(self, env):
        net, store, rng = env
        caching = CachingStore(store, capacity=16)
        result = caching.get(net.node_ids[4], "absent-key")
        assert not result.found
        assert caching.stats.misses >= 1

    def test_eviction_count_aggregates(self, env):
        net, store, rng = env
        caching = CachingStore(store, capacity=1)
        owner = net.node_ids[5]
        # Enough keys that some proxy node (the responsible member of the
        # querier's small leaf domain) sees more than one key.
        for i in range(40):
            caching.put(owner, f"bulk{i}", i)
        src = net.node_ids[17]
        for i in range(40):
            caching.get(src, f"bulk{i}")
        assert caching.eviction_count() >= 1

    def test_hit_rate_property(self, env):
        net, store, rng = env
        caching = CachingStore(store, capacity=64)
        assert caching.stats.hit_rate == 0.0
        owner = net.node_ids[6]
        caching.put(owner, "rate", 1)
        src = net.node_ids[19]
        caching.get(src, "rate")
        caching.get(src, "rate")
        assert 0.0 < caching.stats.hit_rate < 1.0


# --------------------------------------------------- replacement properties


class ModelCache:
    """Executable spec of the level-aware policy: a recency-ordered list.

    Entries are ``[key, value, level]`` oldest-first; eviction removes the
    first (least recently used) entry carrying the maximum level, and a
    re-inserted key keeps the smaller of its old and new level labels.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries = []
        self.evictions = 0

    def get(self, key):
        for row in self.entries:
            if row[0] == key:
                self.entries.remove(row)
                self.entries.append(row)
                return row[1]
        return None

    def put(self, key, value, level):
        for row in list(self.entries):
            if row[0] == key:
                level = min(level, row[2])
                self.entries.remove(row)
        self.entries.append([key, value, level])
        while len(self.entries) > self.capacity:
            worst = max(row[2] for row in self.entries)
            victim = next(row for row in self.entries if row[2] == worst)
            self.entries.remove(victim)
            self.evictions += 1

    def state(self):
        return [(row[0], row[1], row[2]) for row in self.entries]


class TestLevelAwareCacheProperties:
    """Randomized op sequences against the executable spec, step for step."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_model(self, seed):
        rng = random.Random(f"cache-model:{seed}")
        capacity = rng.randrange(1, 8)
        cache = LevelAwareCache(capacity)
        model = ModelCache(capacity)
        for step in range(400):
            key = rng.randrange(12)
            if rng.random() < 0.4:
                assert cache.get(key) == model.get(key), f"step {step}"
            else:
                value, level = f"v{step}", rng.randrange(1, 6)
                cache.put(key, value, level)
                model.put(key, value, level)
            assert [
                (k, v, lvl) for k, (v, lvl) in cache._entries.items()
            ] == model.state(), f"step {step}"
            assert cache.evictions == model.evictions

    @pytest.mark.parametrize("seed", range(4))
    def test_eviction_takes_lru_of_deepest_level(self, seed):
        rng = random.Random(f"cache-tie:{seed}")
        cache = LevelAwareCache(6)
        for key in range(6):
            cache.put(key, key, rng.randrange(1, 4))
        order = list(range(6))
        rng.shuffle(order)
        for key in order:
            cache.get(key)  # refresh recency in a random order
        worst = max(level for _, level in cache._entries.values())
        expected_victim = next(
            k for k, (_, level) in cache._entries.items() if level == worst
        )
        cache.put(99, "spill", 1)
        assert cache.get(expected_victim) is None
        assert cache.get(99) == "spill"

    @pytest.mark.parametrize("seed", range(4))
    def test_reinserted_keys_never_deepen(self, seed):
        rng = random.Random(f"cache-level:{seed}")
        cache = LevelAwareCache(32)
        floor = {}
        for step in range(200):
            key = rng.randrange(8)
            level = rng.randrange(1, 7)
            cache.put(key, step, level)
            floor[key] = min(floor.get(key, level), level)
            assert cache.level_of(key) == floor[key]


class TestCacheMetrics:
    def test_storage_cache_counters_recorded(self, env):
        from repro.obs import metrics as obs_metrics

        net, store, rng = env
        caching = CachingStore(store, capacity=1)
        owner = net.node_ids[3]
        with obs_metrics.collecting() as registry:
            for i in range(20):
                caching.put(owner, f"ctr{i}", i)
            src = net.node_ids[23]
            for i in range(20):
                caching.get(src, f"ctr{i}")
            caching.get(src, "ctr0")
            assert registry.counter("storage.cache.misses").value >= 20
            assert registry.counter("storage.cache.insertions").value >= 20
            assert registry.counter("storage.gets").value == 0  # caching path
            assert (
                registry.counter("storage.cache.evictions").value
                == caching.eviction_count()
            )
