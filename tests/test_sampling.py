"""Tests for random-sampling proximity selection (§3.6)."""

from __future__ import annotations

import random

import pytest

from repro.proximity.sampling import best_of_sample, sampling_quality


def metric(a: int, b: int) -> float:
    return abs(a - b) / 7.0


class TestBestOfSample:
    def test_full_pool_gives_optimum(self):
        rng = random.Random(0)
        nodes = list(range(0, 1000, 7))
        best = best_of_sample(500, nodes, metric, rng, sample=10_000)
        assert metric(500, best) == min(metric(500, n) for n in nodes if n != 500)

    def test_excludes_self(self):
        rng = random.Random(1)
        assert best_of_sample(3, [3, 9], metric, rng) == 9

    def test_no_candidates(self):
        with pytest.raises(ValueError):
            best_of_sample(3, [3], metric, random.Random(0))

    def test_sample_limits_probes(self):
        """With sample=1 the choice is a single random candidate."""
        rng = random.Random(2)
        nodes = list(range(100))
        picks = {best_of_sample(0, nodes, metric, rng, sample=1) for _ in range(50)}
        assert len(picks) > 5, "sample=1 should not always find the optimum"


class TestSamplingQuality:
    def test_latency_decreases_with_sample_size(self):
        rng = random.Random(3)
        nodes = [rng.randrange(10_000) for _ in range(400)]
        curve = sampling_quality(
            nodes, metric, rng, sample_sizes=(1, 4, 16, 64), trials=300
        )
        values = [curve[s] for s in (1, 4, 16, 64)]
        assert all(x >= y for x, y in zip(values, values[1:]))

    def test_s32_close_to_exhaustive(self):
        """The paper's claim: s = 32 is 'sufficient' — close to the best."""
        rng = random.Random(4)
        nodes = [rng.randrange(10_000) for _ in range(500)]
        curve = sampling_quality(
            nodes, metric, rng, sample_sizes=(32, 499), trials=400
        )
        assert curve[32] <= 16 * max(curve[499], 1e-9)
