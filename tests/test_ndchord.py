"""Tests for nondeterministic Chord and ND-Crescendo (Section 3.2)."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.hierarchy import Hierarchy, lca
from repro.core.routing import route_ring
from repro.dhts.ndchord import NDChordNetwork, NDCrescendoNetwork, annulus_choice


class TestAnnulusChoice:
    def test_in_range(self):
        space = IdSpace(8)
        rng = random.Random(0)
        members = sorted(space.random_ids(40, rng))
        node = members[0]
        for _ in range(100):
            choice = annulus_choice(node, members, 8, 16, space, rng)
            if choice is not None:
                assert 8 <= space.ring_distance(node, choice) < 16

    def test_empty_annulus(self):
        space = IdSpace(8)
        assert annulus_choice(0, [0, 128], 2, 4, space, random.Random(0)) is None

    def test_never_self(self):
        space = IdSpace(8)
        members = [0, 5]
        for _ in range(50):
            choice = annulus_choice(0, members, 1, 256, space, random.Random(1))
            assert choice != 0

    def test_full_circle_annulus(self):
        space = IdSpace(8)
        members = [10, 20, 30]
        rng = random.Random(2)
        picks = {annulus_choice(10, members, 1, 256, space, rng) for _ in range(100)}
        assert picks == {20, 30}

    def test_lower_bound_validation(self):
        space = IdSpace(8)
        with pytest.raises(ValueError):
            annulus_choice(0, [0, 1], 0, 4, space, random.Random(0))

    def test_uniformity(self):
        """Each member of the annulus is picked with similar frequency."""
        space = IdSpace(8)
        members = sorted([0, 100, 110, 120, 130])
        rng = random.Random(3)
        counts = {m: 0 for m in members[1:]}
        for _ in range(4000):
            counts[annulus_choice(0, members, 64, 256, space, rng)] += 1
        values = list(counts.values())
        assert max(values) < 2 * min(values)


class TestNDChord:
    @pytest.fixture(scope="class")
    def net(self):
        rng = random.Random(4)
        space = IdSpace(32)
        ids = space.random_ids(500, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        return NDChordNetwork(space, h, rng).build()

    def test_octave_rule(self, net):
        """Every link lies in some octave [2**k, 2**(k+1))  — trivially true —
        and no two non-successor links share an octave redundantly beyond
        the rule's one-per-octave budget."""
        space = net.space
        for node in net.node_ids[:50]:
            octaves = [
                space.ring_distance(node, link).bit_length() - 1
                for link in net.links[node]
            ]
            # one choice per octave, plus possibly the successor sharing one
            assert len(octaves) - len(set(octaves)) <= 1

    def test_successor_linked(self, net):
        ids = net.node_ids
        for i, node in enumerate(ids[:100]):
            assert ids[(i + 1) % len(ids)] in net.links[node]

    def test_degree_logarithmic(self, net):
        assert net.average_degree() < 1.5 * math.log2(net.size)

    def test_routing_total(self, net):
        rng = random.Random(5)
        for _ in range(150):
            a, b = rng.sample(net.node_ids, 2)
            r = route_ring(net, a, b)
            assert r.success and r.terminal == b

    def test_hops_logarithmic(self, net):
        rng = random.Random(6)
        hops = [
            route_ring(net, *rng.sample(net.node_ids, 2)).hops for _ in range(200)
        ]
        assert statistics.mean(hops) < 1.5 * math.log2(net.size)


class TestNDCrescendo:
    @pytest.fixture(scope="class")
    def net(self):
        rng = random.Random(7)
        space = IdSpace(32)
        ids = space.random_ids(500, rng)
        h = build_uniform_hierarchy(ids, 4, 3, rng)
        return NDCrescendoNetwork(space, h, rng).build()

    def test_constrained_choice(self, net):
        """Section 3.2: inter-domain links lie in [2**k, min(2**(k+1), gap))."""
        space = net.space
        hierarchy = net.hierarchy
        for node in net.node_ids[:60]:
            path = hierarchy.path_of(node)
            for link in net.links[node]:
                shared = lca(path, hierarchy.path_of(link))
                if len(shared) >= len(path):
                    continue
                own = hierarchy.sorted_members(path[: len(shared) + 1])
                own_dists = [space.ring_distance(node, o) for o in own if o != node]
                if own_dists:
                    assert space.ring_distance(node, link) < min(own_dists) or any(
                        link == m
                        for m in _level_successors(hierarchy, node, len(shared))
                    )

    def test_paper_example(self):
        """The Section 3.2 worked example: node m with own-ring neighbor at
        distance 12 must not link to a node at distance 14, but may link to
        one at distance 10."""
        space = IdSpace(4)
        h = Hierarchy()
        h.place(0, ("A",))
        h.place(12, ("A",))  # closest own-ring node at distance 12
        h.place(10, ("B",))  # candidate p at distance 10: allowed
        h.place(14, ("B",))  # candidate q at distance 14: must be excluded
        rng = random.Random(8)
        links_seen = set()
        for _ in range(50):
            net = NDCrescendoNetwork(space, h, random.Random(rng.random())).build()
            links_seen.update(net.links[0])
        assert 14 not in links_seen, "distance-14 candidate violates the gap"
        assert 10 in links_seen, "distance-10 candidate should be choosable"

    def test_routing_total(self, net):
        rng = random.Random(9)
        for _ in range(150):
            a, b = rng.sample(net.node_ids, 2)
            r = route_ring(net, a, b)
            assert r.success and r.terminal == b

    def test_locality(self, net):
        rng = random.Random(10)
        hierarchy = net.hierarchy
        for _ in range(100):
            a, b = rng.sample(net.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            r = route_ring(net, a, b)
            assert all(
                hierarchy.path_of(n)[: len(shared)] == shared for n in r.path
            )

    def test_degree_close_to_flat(self, net):
        rng = random.Random(11)
        space = net.space
        ids = list(net.node_ids)
        h1 = build_uniform_hierarchy(ids, 4, 1, rng)
        flat = NDChordNetwork(space, h1, rng).build()
        assert abs(net.average_degree() - flat.average_degree()) < 3.0


def _level_successors(hierarchy, node, max_depth):
    out = []
    path = hierarchy.path_of(node)
    for depth in range(max_depth + 1):
        members = hierarchy.sorted_members(path[:depth])
        idx = members.index(node)
        out.append(members[(idx + 1) % len(members)])
    return out
