"""Tests for the vectorized data plane (``repro.perf.storage``).

The load-bearing property is scalar equivalence: bulk placement, batch
put/get and the vectorized repair scans must be observably — and, where
latency is priced, bit-for-bit — indistinguishable from the scalar
storage stack (:mod:`repro.storage`) and the scalar data layer
(:mod:`repro.simulation.data`).  Every latency assertion is ``==``,
never ``pytest.approx``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.idspace import IdSpace
from repro.dhts.crescendo import CrescendoNetwork
from repro.obs import metrics as obs_metrics
from repro.perf.dynamic import make_protocol
from repro.perf.storage import (
    CompiledStore,
    FastDataLayer,
    bulk_put,
    bulk_put_replicated,
    plan_puts,
    repair_scan,
    scalar_search_latency,
    store_domain_index,
)
from repro.simulation.churn import Event, run_schedule
from repro.simulation.data import DataLayer
from repro.storage.replication import ReplicatedStore
from repro.storage.store import HierarchicalStore
from repro.topology.transit_stub import TopologyParams, TransitStubTopology
from repro.verify import FAMILIES, compare_storage, small_network
from repro.verify.fuzz import FuzzConfig, generate_schedule, replay
from repro.verify.oracles import (
    DurabilityMonitor,
    check_durability,
    storage_workload,
)

SMALL_PARAMS = TopologyParams(
    transit_domains=2,
    transit_per_domain=2,
    stub_domains_per_transit=2,
    stub_per_domain=4,
)


@pytest.fixture(scope="module")
def attached():
    """A transit-stub topology with a built Crescendo over 72 nodes."""
    rng = random.Random("perf-storage")
    topology = TransitStubTopology(SMALL_PARAMS, rng=rng)
    space = IdSpace(32)
    node_ids = space.random_ids(72, rng)
    hierarchy = topology.attach_nodes(node_ids, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    return topology, net


# ---------------------------------------------------------------- placement


class TestPlanPuts:
    def test_homes_match_scalar_home_node(self, attached):
        _, net = attached
        store = HierarchicalStore(net)
        index = store_domain_index(store)
        rng = random.Random(0)
        keys = [rng.randrange(1 << 32) for _ in range(200)]
        for origin in list(net.node_ids)[:4]:
            path = net.hierarchy.path_of(origin)
            for depth in range(len(path) + 1):
                domain = path[:depth]
                plan = plan_puts(index, keys, domain)
                for kh, home in zip(keys, plan.homes.tolist()):
                    assert home == store.home_node(kh, domain)

    def test_pointer_nodes_match_scalar(self, attached):
        _, net = attached
        store = HierarchicalStore(net)
        index = store_domain_index(store)
        rng = random.Random(1)
        keys = [rng.randrange(1 << 32) for _ in range(100)]
        origin = net.node_ids[0]
        domain = net.hierarchy.path_of(origin)
        plan = plan_puts(index, keys, domain, access_domain=domain[:1])
        assert plan.pointer_nodes is not None
        for kh, ptr in zip(keys, plan.pointer_nodes.tolist()):
            assert ptr == store.home_node(kh, domain[:1])
        # Same domain pair -> no pointers, like the scalar put.
        assert plan_puts(index, keys, domain, access_domain=domain).pointer_nodes is None

    def test_replica_sets_match_scalar(self, attached):
        _, net = attached
        rstore = ReplicatedStore(HierarchicalStore(net), replicas=3)
        index = store_domain_index(rstore.store)
        rng = random.Random(2)
        keys = [rng.randrange(1 << 32) for _ in range(100)]
        domain = net.hierarchy.path_of(net.node_ids[0])[:1]
        plan = plan_puts(index, keys, domain, replicas=3)
        for kh, row in zip(keys, plan.replica_sets.tolist()):
            assert row == rstore.replica_nodes(kh, domain)

    def test_empty_domain_raises(self, attached):
        _, net = attached
        index = store_domain_index(HierarchicalStore(net))
        with pytest.raises(ValueError, match="no members"):
            plan_puts(index, [1, 2], ("no", "such", "domain"))


class TestBulkPut:
    def test_state_identical_to_scalar_sequence(self, attached):
        _, net = attached
        ref = HierarchicalStore(net)
        fast = HierarchicalStore(net)
        rng = random.Random(3)
        put_ops, _ = storage_workload(net, rng, puts=60, gets=0)
        groups = {}
        for op in put_ops:
            groups.setdefault((op[3], op[4]), []).append(op)
        returns = [ref.put(*op) for op in put_ops]
        planned = {}
        for (sd, ad), ops in groups.items():
            plan = bulk_put(
                fast, [o[0] for o in ops], [o[1] for o in ops],
                [o[2] for o in ops], sd, ad,
            )
            for j, op in enumerate(ops):
                pointer = (
                    int(plan.pointer_nodes[j])
                    if plan.pointer_nodes is not None
                    else None
                )
                planned[op[1]] = (int(plan.homes[j]), pointer)
        assert ref._items == fast._items
        assert ref._pointers == fast._pointers
        for op, ret in zip(put_ops, returns):
            assert planned[op[1]] == ret

    def test_validation_errors_match_scalar(self, attached):
        _, net = attached
        store = HierarchicalStore(net)
        origin = net.node_ids[0]
        other = next(
            n for n in net.node_ids
            if net.hierarchy.path_of(n)[:1] != net.hierarchy.path_of(origin)[:1]
        )
        foreign = net.hierarchy.path_of(other)
        with pytest.raises(ValueError) as bulk_err:
            bulk_put(store, [origin], ["k"], ["v"], foreign)
        with pytest.raises(ValueError) as scalar_err:
            store.put(origin, "k", "v", foreign)
        assert str(bulk_err.value) == str(scalar_err.value)
        own = net.hierarchy.path_of(origin)
        with pytest.raises(ValueError) as bulk_err:
            bulk_put(store, [origin], ["k"], ["v"], own[:1], own)
        with pytest.raises(ValueError) as scalar_err:
            store.put(origin, "k", "v", own[:1], own)
        assert str(bulk_err.value) == str(scalar_err.value)

    def test_replicated_state_identical(self, attached):
        _, net = attached
        ref = ReplicatedStore(HierarchicalStore(net), replicas=3)
        fast = ReplicatedStore(HierarchicalStore(net), replicas=3)
        rng = random.Random(4)
        put_ops, _ = storage_workload(net, rng, puts=40, gets=0)
        for op in put_ops:
            ref.put(*op)
        groups = {}
        for op in put_ops:
            groups.setdefault((op[3], op[4]), []).append(op)
        for (sd, ad), ops in groups.items():
            bulk_put_replicated(
                fast, [o[0] for o in ops], [o[1] for o in ops],
                [o[2] for o in ops], sd, ad,
            )
        assert ref.store._items == fast.store._items
        assert ref.replica_sets == fast.replica_sets

    def test_counters_recorded(self, attached):
        _, net = attached
        store = HierarchicalStore(net)
        origin = net.node_ids[0]
        with obs_metrics.collecting() as registry:
            bulk_put(store, [origin] * 5, [f"k{i}" for i in range(5)],
                     ["v"] * 5)
            assert registry.counter("storage.puts").value == 5


# ---------------------------------------------------------------- batch get


class TestBatchGet:
    def test_matches_scalar_fields_and_latency(self, attached):
        topology, net = attached
        table = topology.latency_table()
        assert compare_storage(
            net, puts=60, gets=200, latency=table, rng=random.Random(7)
        ) == []

    def test_replicated_matches_scalar(self, attached):
        topology, net = attached
        table = topology.latency_table()
        assert compare_storage(
            net, puts=50, gets=150, replicas=3, latency=table,
            rng=random.Random(8),
        ) == []

    def test_pointer_latency_is_walk_plus_double_fetch(self, attached):
        topology, net = attached
        table = topology.latency_table()
        store = HierarchicalStore(net)
        rng = random.Random(9)
        put_ops, get_ops = storage_workload(net, rng, puts=80, gets=300)
        for op in put_ops:
            store.put(*op)
        compiled = CompiledStore(store)
        batch = compiled.batch_get(
            [op[0] for op in get_ops], [op[1] for op in get_ops], latency=table
        )
        pointer_rows = [
            i for i, r in enumerate(batch.results()) if r.via_pointer
        ]
        assert pointer_rows, "workload produced no pointer resolutions"
        for i, result in enumerate(batch.results()):
            assert float(batch.latency_ms[i]) == scalar_search_latency(
                net, table, result
            )

    def test_unknown_key_misses_without_probe_hits(self, attached):
        _, net = attached
        store = HierarchicalStore(net)
        store.put(net.node_ids[0], "present", "value")
        batch = CompiledStore(store).batch_get(
            [net.node_ids[1]], ["absent"]
        )
        result = next(batch.results())
        assert not result.found and result.values == []

    def test_counters_recorded(self, attached):
        _, net = attached
        store = HierarchicalStore(net)
        store.put(net.node_ids[0], "k", "v")
        compiled = CompiledStore(store)
        with obs_metrics.collecting() as registry:
            compiled.batch_get([net.node_ids[1]] * 3, ["k", "k", "absent"])
            assert registry.counter("storage.gets").value == 3
            assert registry.counter("storage.batch.probes").value > 0

    def test_all_families_equivalent(self):
        for family in FAMILIES:
            net = small_network(family, seed=3, size=60)
            violations = compare_storage(
                net, puts=30, gets=60, rng=random.Random(f"fam:{family}")
            )
            assert violations == [], f"{family}: {violations[:3]}"


# ------------------------------------------------------------- repair scans


def grown(size=120, seed=0, replicas=2, engine="reference", layer=DataLayer):
    rng = random.Random(seed)
    space = IdSpace(32)
    net = make_protocol(space, engine=engine)
    paths = [("a", "x"), ("a", "y"), ("b", "x")]
    for node_id in space.random_ids(size, rng):
        net.join(node_id, paths[rng.randrange(len(paths))])
    net.stabilize()
    return net, layer(net, replicas=replicas), rng


def data_schedule(net, rng, events=250):
    """A deterministic mixed churn + put/get schedule over ``net``'s ids."""
    out = []
    for i in range(events):
        roll = rng.random()
        if roll < 0.25:
            out.append(Event("put", rank=rng.randrange(1 << 20),
                             key=rng.randrange(1 << 20),
                             depth=rng.randrange(3)))
        elif roll < 0.55:
            out.append(Event("get", rank=rng.randrange(1 << 20),
                             key=rng.randrange(64)))
        elif roll < 0.70:
            out.append(Event("leave", rank=rng.randrange(1 << 20)))
        elif roll < 0.85:
            out.append(Event("crash", rank=rng.randrange(1 << 20)))
        elif roll < 0.92:
            out.append(Event("join", node=net.space.random_id(rng),
                             path=("a", "x")))
        else:
            out.append(Event("stabilize"))
    out.append(Event("checkpoint"))
    return out


class TestFastDataLayer:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_equivalent_to_scalar_layer(self, engine):
        ref_net, ref_data, _ = grown(seed=5, engine=engine, layer=DataLayer)
        fast_net, fast_data, _ = grown(seed=5, engine=engine, layer=FastDataLayer)
        schedule = data_schedule(ref_net, random.Random("schedule:5"))
        ref_report = run_schedule(ref_net, schedule, data=ref_data)
        fast_report = run_schedule(fast_net, schedule, data=fast_data)
        assert ref_report.data_outcomes == fast_report.data_outcomes
        assert ref_report.puts == fast_report.puts
        assert dict(ref_net.msgs.stats.counts) == dict(fast_net.msgs.stats.counts)
        assert ref_data.holders == fast_data.holders
        assert ref_data.items == fast_data.items
        assert sorted(map(str, ref_data.lost_keys())) == sorted(
            map(str, fast_data.lost_keys())
        )

    def test_repair_scan_matches_rebalance_counts(self):
        net, data, rng = grown(seed=6, replicas=3, layer=DataLayer)
        origin = next(iter(net.nodes))
        for i in range(40):
            data.put(origin, f"k{i}", f"v{i}")
        live = [n for n in net.live_view()]
        for victim in rng.sample([n for n in live if n != origin], 10):
            net.crash(victim)
        key_list = list(data.items)

        def members_of(domain):
            return np.asarray(
                sorted(
                    n for n in net.hierarchy.members(domain)
                    if net.nodes[n].alive
                ),
                dtype=np.uint64,
            )

        plan = repair_scan(
            key_list,
            [data.items[kh].storage_domain for kh in key_list],
            [data.holders.get(kh, []) for kh in key_list],
            members_of,
            [n for n, node in net.nodes.items() if node.alive],
            data.replicas,
        )
        before = net.msgs.stats.counts["replicate"]
        data._rebalance()
        scalar_msgs = net.msgs.stats.counts["replicate"] - before
        assert plan.replicate_msgs == scalar_msgs
        for row, kh in enumerate(key_list):
            assert plan.holders_of(row) == data.holders[kh]
            assert bool(plan.lost[row]) == (not data.holders[kh])

    def test_surviving_copy_counts(self):
        net, data, _ = grown(seed=7, replicas=3, layer=FastDataLayer)
        origin = next(iter(net.nodes))
        holders = data.put(origin, "k", "v")
        assert len(holders) == 3
        net.crash(holders[0])
        assert data.value_available("k")
        for holder in holders[1:]:
            net.crash(holder)
        assert not data.value_available("k")


# ---------------------------------------------------------------- durability


class TestDurability:
    def test_clean_fuzz_run_has_no_violations(self):
        config = FuzzConfig(
            seed=13, events=400, families=(), checkpoints=4, data_replicas=2
        )
        report = replay(config, generate_schedule(config))
        assert report.replay.puts > 0 and report.replay.data_gets > 0
        assert report.violations == []

    def test_monitor_flags_unexplained_loss(self):
        net, data, _ = grown(seed=8, layer=FastDataLayer)
        monitor = DurabilityMonitor(net, data)
        origin = next(iter(net.nodes))
        data.put(origin, "k", "v")
        key_hash = net.space.hash_key("k")
        data.holders[key_hash] = []  # planted: lost with no crash to blame
        net.stabilize()
        violations = check_durability(net, data, monitor)
        assert any("no crash" in v.message for v in violations)

    def test_monitor_accepts_crash_losses(self):
        net, data, _ = grown(seed=9, replicas=1, layer=FastDataLayer)
        monitor = DurabilityMonitor(net, data)
        origin = next(iter(net.nodes))
        holders = data.put(origin, "k", "v")
        net.crash(holders[0])  # single copy: loss is legitimate
        net.stabilize()
        assert "k" in [str(k) for k in data.lost_keys()]
        assert check_durability(net, data, monitor) == []

    def test_check_flags_diverged_holders(self):
        net, data, _ = grown(seed=10, layer=FastDataLayer)
        origin = next(iter(net.nodes))
        data.put(origin, "k", "v")
        net.stabilize()
        key_hash = net.space.hash_key("k")
        data.holders[key_hash] = [data.holders[key_hash][0]]  # drop a replica
        violations = check_durability(net, data)
        assert any("not re-converged" in v.message for v in violations)

    def test_schedules_with_data_events_stay_deterministic(self):
        config = FuzzConfig(seed=21, events=300, data_replicas=2)
        first = generate_schedule(config)
        second = generate_schedule(config)
        assert first == second
        assert any(e.kind == "put" for e in first)
        assert any(e.kind == "get" for e in first)

    def test_bare_schedules_have_no_data_events(self):
        schedule = generate_schedule(FuzzConfig(seed=21, events=300))
        assert not any(e.kind in ("put", "get") for e in schedule)
