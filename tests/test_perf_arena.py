"""Shared-memory arenas: fidelity, dtype minimization, lifecycle, streaming.

Four properties, each load-bearing for the ``--arena`` grid transport:

- **Fidelity** — routing a network through an arena round-trip (export →
  attach → batch kernels over the mapped views) is hop-for-hop identical
  to the in-process kernels across every family, and bit-for-bit on fused
  latency totals (:func:`compare_routing` with ``via_arena=True``).
- **Dtype minimization** — compiled index arrays are int32 whenever the
  population/edge count fits, in-process and through the arena alike.
- **Lifecycle** — segments never outlive their owner: explicit dispose,
  garbage collection, and a worker crashing mid-grid all leave nothing
  attachable behind.
- **Streaming** — :func:`stream_crescendo_csr` emits *identical* CSR
  arrays to compiling an object-built network, and the fig5 arena grid is
  byte-identical (results and ``route.*`` metrics) to the per-worker-build
  transport.
"""

from __future__ import annotations

import gc
import random
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.analysis.metrics import sample_routing_compiled
from repro.core.hierarchy import build_uniform_hierarchy
from repro.core.idspace import IdSpace
from repro.dhts.crescendo import CrescendoNetwork
from repro.experiments import fig5_hops, fig6_stretch
from repro.obs import metrics as obs_metrics
from repro.perf import arena as perf_arena
from repro.perf.arena import (
    Arena,
    attach_network,
    export_latency_matrix,
    export_network,
    top_domain_codes,
)
from repro.perf.build import (
    hierarchy_codes,
    stream_compiled_crescendo,
    stream_crescendo_csr,
    stream_crescendo_ids,
)
from repro.perf.cache import NetworkCache, caching
from repro.perf.executor import map_points
from repro.perf.kernels import CompiledNetwork, compile_network
from repro.perf.latency import LatencyTable
from repro.topology.transit_stub import TopologyParams, TransitStubTopology
from repro.verify.builders import FAMILIES, small_network
from repro.verify.oracles import compare_routing


def _pairs(net, rng, count=30):
    ids = net.node_ids
    return [
        (ids[rng.randrange(len(ids))], net.space.random_id(rng))
        for _ in range(count)
    ]


def _latency_setup(size=150, seed=11):
    rng = random.Random(seed)
    topology = TransitStubTopology(TopologyParams(), rng=rng)
    space = IdSpace()
    ids = space.random_ids(size, rng)
    hierarchy = topology.attach_nodes(ids, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    table = LatencyTable.from_topology(topology, sorted(ids))
    return net, table, rng


class TestArenaRoundTrip:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_hop_for_hop_across_families(self, family):
        net = small_network(family, seed=51)
        rng = random.Random(f"arena:{family}")
        assert compare_routing(net, _pairs(net, rng), via_arena=True) == []

    def test_latency_bit_identity(self):
        net, table, rng = _latency_setup()
        pairs = _pairs(net, rng, count=50)
        assert compare_routing(net, pairs, latency=table, via_arena=True) == []

    def test_shared_matrix_arena(self):
        """A matrix exported once serves a network arena by reference."""
        net, table, rng = _latency_setup(seed=12)
        pairs = _pairs(net, rng, count=40)
        compiled = compile_network(net)
        direct = compiled.route(
            [p[0] for p in pairs], [p[1] for p in pairs], latency=table
        )
        matrix_arena = export_latency_matrix(table)
        owner = export_network(compiled, latency=table, matrix_arena=matrix_arena)
        try:
            view = attach_network(owner.manifest)
            assert view.latency is not None
            shared = view.compiled.route(
                [p[0] for p in pairs], [p[1] for p in pairs], latency=view.latency
            )
            np.testing.assert_array_equal(direct.terminals, shared.terminals)
            np.testing.assert_array_equal(direct.latency_ms, shared.latency_ms)
        finally:
            owner.dispose()
            matrix_arena.dispose()

    def test_to_arena_from_arena_arrays_identical(self):
        net = small_network("crescendo", seed=52)
        compiled = compile_network(net)
        owner = compiled.to_arena()
        try:
            back = CompiledNetwork.from_arena(owner.manifest)
            for name in ("ids", "indptr", "neighbors", "nbr_pos"):
                mine, theirs = getattr(compiled, name), getattr(back, name)
                assert mine.dtype == theirs.dtype
                np.testing.assert_array_equal(mine, theirs)
            assert back.metric == compiled.metric and back.bits == compiled.bits
        finally:
            owner.dispose()

    def test_top_domain_codes_match_hierarchy_prefixes(self):
        net = small_network("crescendo", seed=53)
        compiled = compile_network(net)
        codes = top_domain_codes(net.hierarchy, compiled.ids)
        ids = compiled.ids.tolist()
        for i, a in enumerate(ids):
            for j, b in enumerate(ids[: i + 1]):
                same = net.hierarchy.path_of(a)[:1] == net.hierarchy.path_of(b)[:1]
                assert (codes[i] == codes[j]) == same


class TestDtypeMinimization:
    def test_small_network_uses_int32_indexes(self):
        net = small_network("crescendo", seed=54)
        compiled = compile_network(net)
        assert compiled.indptr.dtype == np.int32
        assert compiled.nbr_pos.dtype == np.int32

    def test_arena_preserves_minimized_dtypes(self):
        net = small_network("chord", seed=55)
        compiled = compile_network(net)
        owner = compiled.to_arena()
        try:
            view = attach_network(owner.manifest)
            assert view.compiled.indptr.dtype == np.int32
            assert view.compiled.nbr_pos.dtype == np.int32
        finally:
            owner.dispose()

    def test_ring_networks_never_build_xor_tables(self):
        net = small_network("crescendo", seed=56)
        compiled = compile_network(net)
        rng = random.Random(57)
        stats = sample_routing_compiled(compiled, rng, samples=30)
        assert stats.success_rate == 1.0
        assert compiled._aug_cache is None  # lazy: ring routing built none


class TestLifecycle:
    def test_dispose_unlinks_segment(self):
        arena = Arena.create({"x": np.arange(10, dtype=np.int64)})
        name = arena.manifest.name
        assert perf_arena.live_arena_bytes() >= arena.nbytes
        arena.dispose()
        assert arena.disposed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_dispose_is_idempotent_and_blocks_arrays(self):
        arena = Arena.create({"x": np.arange(4, dtype=np.int64)})
        arena.dispose()
        arena.dispose()
        with pytest.raises(ValueError):
            arena.arrays()

    def test_gc_finalizer_unlinks(self):
        arena = Arena.create({"x": np.arange(8, dtype=np.float64)})
        name = arena.manifest.name
        del arena
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_live_bytes_returns_to_baseline(self):
        before = perf_arena.live_arena_bytes()
        with Arena.create({"x": np.zeros(1000, dtype=np.int64)}) as arena:
            assert perf_arena.live_arena_bytes() == before + arena.nbytes
        assert perf_arena.live_arena_bytes() == before

    def test_crashing_worker_leaks_nothing(self):
        """A grid whose worker raises must still unlink every segment."""
        nets = [small_network("crescendo", seed=60 + i) for i in range(2)]
        owners = [compile_network(net).to_arena() for net in nets]
        names = [owner.manifest.name for owner in owners]
        manifests = {i: owner.manifest for i, owner in enumerate(owners)}
        try:
            with pytest.raises(RuntimeError):
                map_points(_crash_worker, [0, 1], jobs=2, arenas=manifests)
        finally:
            for owner in owners:
                owner.dispose()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_fig5_grid_leaves_no_segments(self):
        before = perf_arena.live_arena_bytes()
        fig5_hops.measurements("smoke", jobs=2, arena=True)
        assert perf_arena.live_arena_bytes() == before

    def test_arena_metrics_land_in_registry(self):
        with obs_metrics.collecting() as registry:
            with Arena.create({"x": np.zeros(64, dtype=np.int8)}):
                assert registry.gauge("arena.bytes").value > 0
            assert registry.counter("arena.creates").value == 1
            assert registry.gauge("arena.bytes").value == float(
                perf_arena.live_arena_bytes()
            )


class TestFig5Identity:
    def test_arena_grid_matches_object_grid(self):
        plain = fig5_hops.measurements("smoke", jobs=1, arena=False)
        serial = fig5_hops.measurements("smoke", jobs=1, arena=True)
        parallel = fig5_hops.measurements("smoke", jobs=2, arena=True)
        assert serial == plain  # exact float equality, not approx
        assert parallel == plain

    def test_route_metrics_parity(self):
        def route_metrics(arena):
            with obs_metrics.collecting() as registry:
                fig5_hops.measurements("smoke", jobs=2, arena=arena)
                snap = registry.snapshot()
            counters = {
                k: v for k, v in snap.counters.items() if k.startswith("route.")
            }
            counters["messages.lookup"] = snap.counters["messages.lookup"]
            histograms = {
                k: snap.histograms[k] for k in ("route.hops", "route.crossings")
            }
            return counters, histograms

        assert route_metrics(arena=True) == route_metrics(arena=False)


class TestFig6Identity:
    def test_arena_grid_matches_object_grid(self):
        plain = fig6_stretch.measurements("smoke", jobs=1, arena=False)
        serial = fig6_stretch.measurements("smoke", jobs=1, arena=True)
        parallel = fig6_stretch.measurements("smoke", jobs=2, arena=True)
        assert serial == plain  # exact float equality, not approx
        assert parallel == plain

    def test_grid_leaves_no_segments_or_setups(self):
        before = perf_arena.live_arena_bytes()
        fig6_stretch.measurements("smoke", jobs=2, arena=True)
        assert perf_arena.live_arena_bytes() == before
        assert fig6_stretch._SETUPS == {}


class TestStreamingConstruction:
    @pytest.mark.parametrize("size,levels", [(300, 1), (300, 3), (1000, 4)])
    def test_csr_identical_to_object_build(self, size, levels):
        rng = random.Random(f"stream-oracle:{size}:{levels}")
        space = IdSpace(32)
        ids = space.random_ids(size, rng)
        hierarchy = build_uniform_hierarchy(
            ids, 4, levels, rng, distribution="zipf", zipf_exponent=1.25
        )
        compiled = compile_network(CrescendoNetwork(space, hierarchy).build())
        sorted_ids = np.sort(np.asarray(ids, dtype=np.uint64))
        codes = hierarchy_codes(hierarchy, sorted_ids.tolist())
        indptr, neighbors, nbr_pos = stream_crescendo_csr(sorted_ids, codes, space)
        np.testing.assert_array_equal(indptr, compiled.indptr)
        np.testing.assert_array_equal(neighbors, compiled.neighbors)
        np.testing.assert_array_equal(nbr_pos, compiled.nbr_pos)

    def test_stream_ids_distinct_sorted_unbiased(self):
        rng = random.Random(70)
        ids = stream_crescendo_ids(5000, rng)
        assert ids.dtype == np.uint64
        assert ids.size == 5000
        assert np.all(ids[1:] > ids[:-1])
        # No truncation bias: the draw covers the id space's upper half too.
        assert ids.max() > np.uint64(1) << np.uint64(31)

    def test_streamed_population_routes(self):
        rng = random.Random(71)
        compiled, top = stream_compiled_crescendo(4096, 3, rng)
        assert compiled.n == 4096
        assert compiled.indptr.dtype == np.int32
        assert top.shape == (4096,)
        owner = export_network(compiled, top_domain=top, label="stream-test")
        try:
            view = attach_network(owner.manifest)
            stats = sample_routing_compiled(view.compiled, rng, samples=200)
            assert stats.success_rate == 1.0
            assert 0 < stats.mean_hops < 2.0 * np.log2(4096)
        finally:
            owner.dispose()

    def test_streaming_is_seed_deterministic(self):
        a, _ = stream_compiled_crescendo(500, 2, random.Random(72))
        b, _ = stream_compiled_crescendo(500, 2, random.Random(72))
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.neighbors, b.neighbors)


class TestNpzSidecar:
    def test_warm_load_adopts_compiled_arrays(self, tmp_path):
        from repro.experiments.common import build_crescendo, seeded_rng

        with caching(NetworkCache(tmp_path)):
            cold = build_crescendo(
                2048, 2, seeded_rng("npz", 2048, 2), cache_token=("npz", 2048, 2)
            )
            cold_compiled = compile_network(cold)
            warm = build_crescendo(
                2048, 2, seeded_rng("npz", 2048, 2), cache_token=("npz", 2048, 2)
            )
            warm_compiled = warm.__dict__.get("_perf_compiled")
            assert warm_compiled is not None  # adopted, not recompiled
            for name in ("ids", "indptr", "neighbors", "nbr_pos"):
                np.testing.assert_array_equal(
                    getattr(cold_compiled, name), getattr(warm_compiled, name)
                )
                assert (
                    getattr(cold_compiled, name).dtype
                    == getattr(warm_compiled, name).dtype
                )

    def test_corrupt_sidecar_degrades_to_recompile(self, tmp_path):
        from repro.experiments.common import build_crescendo, seeded_rng

        with caching(NetworkCache(tmp_path)) as cache:
            build_crescendo(
                2048, 2, seeded_rng("npz2", 2048, 2), cache_token=("npz2", 2048, 2)
            )
            npz_files = list(tmp_path.glob("*.npz"))
            assert len(npz_files) == 1
            npz_files[0].write_bytes(b"not a zip archive")
            warm = build_crescendo(
                2048, 2, seeded_rng("npz2", 2048, 2), cache_token=("npz2", 2048, 2)
            )
            warm.require_built()  # the pickle payload still loaded
            assert "_perf_compiled" not in warm.__dict__
            assert cache.hits == 1


def _crash_worker(point):
    perf_arena.current_manifest(point)  # the manifest must resolve first
    raise RuntimeError(f"deliberate crash at point {point}")
