"""Tests for the Section 3.5 mixed-level structure (complete-graph LANs)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.mixed import LanCrescendoNetwork


def build(size=300, levels=3, fanout=4, seed=0):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, fanout, levels, rng)
    return LanCrescendoNetwork(space, h).build()


@pytest.fixture(scope="module")
def net():
    return build()


class TestStructure:
    def test_lan_is_complete_graph(self, net):
        hierarchy = net.hierarchy
        for node in net.node_ids[:60]:
            lan = hierarchy.members(hierarchy.path_of(node))
            for peer in lan:
                if peer != node:
                    assert peer in net.links[node]

    def test_merge_links_match_crescendo(self, net):
        """Above the LAN level the merge rule is Crescendo's: cross-domain
        links obey conditions (a) and (b)."""
        space = net.space
        hierarchy = net.hierarchy
        crescendo = CrescendoNetwork(net.space, hierarchy, use_numpy=False).build()
        for node in net.node_ids[:40]:
            leaf = hierarchy.path_of(node)
            mixed_cross = {
                l for l in net.links[node] if hierarchy.path_of(l) != leaf
            }
            cres_cross = {
                l for l in crescendo.links[node] if hierarchy.path_of(l) != leaf
            }
            assert mixed_cross == cres_cross

    def test_links_valid(self, net):
        net.check_links_valid()


class TestRouting:
    def test_total_delivery(self, net):
        rng = random.Random(1)
        for _ in range(150):
            a, b = rng.sample(net.node_ids, 2)
            r = route_ring(net, a, b)
            assert r.success and r.terminal == b

    def test_lan_routing_is_one_hop(self, net):
        hierarchy = net.hierarchy
        rng = random.Random(2)
        checked = 0
        while checked < 50:
            a = rng.choice(net.node_ids)
            lan = [m for m in hierarchy.members(hierarchy.path_of(a)) if m != a]
            if not lan:
                continue
            b = rng.choice(lan)
            assert route_ring(net, a, b).hops == 1
            checked += 1

    def test_intra_domain_locality(self, net):
        rng = random.Random(3)
        hierarchy = net.hierarchy
        for _ in range(100):
            a, b = rng.sample(net.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            r = route_ring(net, a, b)
            assert all(
                hierarchy.path_of(n)[: len(shared)] == shared for n in r.path
            )

    def test_fewer_hops_than_plain_crescendo(self, net):
        import statistics

        rng = random.Random(4)
        crescendo = CrescendoNetwork(net.space, net.hierarchy).build()
        pairs = [rng.sample(net.node_ids, 2) for _ in range(200)]
        lan_hops = statistics.mean(route_ring(net, a, b).hops for a, b in pairs)
        cres_hops = statistics.mean(
            route_ring(crescendo, a, b).hops for a, b in pairs
        )
        assert lan_hops <= cres_hops
