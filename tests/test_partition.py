"""Tests for partition-balanced ID allocation (§4.3)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace
from repro.storage.partition import (
    BalancedIdAllocator,
    HierarchicalIdAllocator,
    bit_reverse,
    random_partition_ratio,
)


class TestBitReverse:
    def test_simple(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011

    def test_identity_palindromes(self):
        assert bit_reverse(0b101, 3) == 0b101

    def test_zero(self):
        assert bit_reverse(0, 5) == 0

    def test_involution(self):
        for v in range(64):
            assert bit_reverse(bit_reverse(v, 6), 6) == v

    def test_spreads_consecutive_indices(self):
        """Consecutive counters land in opposite halves of the space."""
        tops = [bit_reverse(i, 4) >> 3 for i in range(8)]
        assert tops == [0, 1, 0, 1, 0, 1, 0, 1]


class TestBalancedAllocator:
    def test_ratio_small_constant(self):
        """Paper claims ratio 4 w.h.p. (one extra doubling tolerated rarely)."""
        space = IdSpace(32)
        ratios = []
        for seed in (0, 1, 2, 3, 4):
            alloc = BalancedIdAllocator(space, random.Random(seed))
            for _ in range(800):
                alloc.join()
            ratios.append(alloc.partition_ratio())
        assert max(ratios) <= 8.0
        assert sorted(ratios)[len(ratios) // 2] <= 4.0, "median run achieves 4"

    def test_far_better_than_random(self):
        space = IdSpace(32)
        alloc = BalancedIdAllocator(space, random.Random(3))
        for _ in range(500):
            alloc.join()
        rand_ratio = random_partition_ratio(space, 500, random.Random(3))
        assert alloc.partition_ratio() < rand_ratio / 10

    def test_ids_unique(self):
        alloc = BalancedIdAllocator(IdSpace(32), random.Random(4))
        ids = [alloc.join() for _ in range(300)]
        assert len(set(ids)) == 300

    def test_leave_removes(self):
        alloc = BalancedIdAllocator(IdSpace(32), random.Random(5))
        ids = [alloc.join() for _ in range(50)]
        alloc.leave(ids[10])
        assert len(alloc) == 49
        assert ids[10] not in alloc.ids

    def test_ratio_survives_churn(self):
        rng = random.Random(6)
        alloc = BalancedIdAllocator(IdSpace(32), rng)
        ids = [alloc.join() for _ in range(400)]
        for _ in range(150):
            victim = rng.choice(alloc.ids)
            alloc.leave(victim)
            alloc.join()
        assert alloc.partition_ratio() <= 16.0, "bounded even under churn"

    def test_partition_size_total(self):
        alloc = BalancedIdAllocator(IdSpace(16), random.Random(7))
        for _ in range(40):
            alloc.join()
        assert sum(alloc.partition_size(i) for i in alloc.ids) == 2**16

    def test_single_node_owns_everything(self):
        alloc = BalancedIdAllocator(IdSpace(16), random.Random(8))
        first = alloc.join()
        assert alloc.partition_size(first) == 2**16
        assert alloc.partition_ratio() == 1.0


class TestHierarchicalAllocator:
    def test_all_levels_far_better_than_random(self):
        space = IdSpace(32)
        rng = random.Random(9)
        alloc = HierarchicalIdAllocator(space, rng)
        for _ in range(600):
            alloc.join((str(rng.randrange(3)), str(rng.randrange(3))))
        rand = random_partition_ratio(space, 600, random.Random(9))
        assert alloc.level_ratio(()) < rand / 50
        for a in range(3):
            assert alloc.level_ratio((str(a),)) < rand / 10

    def test_leaf_domain_ratios_bounded(self):
        space = IdSpace(32)
        rng = random.Random(10)
        alloc = HierarchicalIdAllocator(space, rng)
        for _ in range(400):
            alloc.join((str(rng.randrange(2)), str(rng.randrange(2))))
        for a in range(2):
            for b in range(2):
                assert alloc.level_ratio((str(a), str(b))) <= 128

    def test_ids_unique_across_domains(self):
        space = IdSpace(32)
        rng = random.Random(11)
        alloc = HierarchicalIdAllocator(space, rng)
        ids = [alloc.join((str(i % 4),)) for i in range(300)]
        assert len(set(ids)) == 300

    def test_leave(self):
        space = IdSpace(32)
        alloc = HierarchicalIdAllocator(space, random.Random(12))
        a = alloc.join(("x",))
        b = alloc.join(("x",))
        alloc.leave(a)
        assert a not in alloc.hierarchy
        assert b in alloc.hierarchy

    def test_first_two_nodes_in_opposite_halves(self):
        """Paper: if the first node's ID starts with 0, the second starts
        with 1."""
        space = IdSpace(32)
        alloc = HierarchicalIdAllocator(space, random.Random(13))
        a = alloc.join(("d",))
        b = alloc.join(("d",))
        assert (a >> 31) != (b >> 31)

    def test_single_domain_spread(self):
        """Members of one domain are spread: ratio far below random."""
        space = IdSpace(32)
        alloc = HierarchicalIdAllocator(space, random.Random(14))
        for _ in range(256):
            alloc.join(("solo",))
        assert alloc.level_ratio(("solo",)) <= 16
