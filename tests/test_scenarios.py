"""The scenario DSL: validation, compilation determinism, JSON round-trip.

Structural and property tests — replay-twice determinism, exact JSON
round-trips, precise rejection of malformed specs — all cheap enough for
the default suite.  Engine equivalence and the negative control live in
``test_scenarios_engines.py``; fixture replay in
``test_scenarios_regression.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.scenarios.catalog import CATALOG, SCALES
from repro.scenarios.dsl import (
    Phase,
    ScenarioSpec,
    bootstrap_placement,
    bootstrap_scenario,
    compile_scenario,
    scenario_from_json,
    scenario_to_json,
    validate_spec,
)
from repro.scenarios.runner import run_scenario
from repro.simulation.churn import Event, run_schedule
from repro.verify.fuzz import shrink_schedule


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="t",
        population=12,
        phases=(
            Phase("traffic", count=5),
            Phase("checkpoint"),
        ),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestValidation:
    def _expect(self, match, **overrides):
        with pytest.raises(ValueError, match=match):
            validate_spec(_spec(**overrides))

    def test_catalog_specs_validate(self):
        for factory in CATALOG.values():
            for scale in SCALES:
                validate_spec(factory(scale))

    def test_rejects_unknown_op(self):
        self._expect("unknown op 'surge'", phases=(Phase("surge", count=3),))

    def test_rejects_missing_required_field(self):
        self._expect(
            "missing required field 'count'", phases=(Phase("traffic"),)
        )

    def test_rejects_field_from_wrong_op(self):
        self._expect(
            "field 'zipf' does not apply",
            phases=(Phase("checkpoint", zipf=1.2),),
        )

    def test_rejects_bad_counts(self):
        self._expect(
            "count must be a positive", phases=(Phase("traffic", count=0),)
        )
        self._expect(
            "stagger must be a positive",
            phases=(Phase("join_wave", count=3, stagger=-1),),
        )
        self._expect("population must be an integer >= 4", population=2)

    def test_rejects_foreign_domain(self):
        self._expect(
            "not a prefix of any scenario domain",
            phases=(Phase("kill_domain", domain=("mars",)),),
        )

    def test_rejects_whole_network_takedown(self):
        self._expect(
            "whole network", phases=(Phase("partition", domain=()),)
        )

    def test_rejects_partition_with_data_layer(self):
        self._expect(
            "incompatible with a data layer",
            data_replicas=2,
            phases=(Phase("partition", domain=("a",)), Phase("heal")),
        )

    def test_rejects_put_get_weights_without_data_layer(self):
        self._expect(
            "put/get need",
            phases=(
                Phase(
                    "mix",
                    count=4,
                    weights=Phase.mix_weights({"lookup": 1.0, "put": 0.5}),
                ),
            ),
        )

    def test_rejects_empty_phases(self):
        self._expect("at least one phase", phases=())


class TestCompilation:
    def test_same_seed_same_schedule(self):
        for name, factory in CATALOG.items():
            spec = factory("smoke")
            assert compile_scenario(spec, 3) == compile_scenario(spec, 3), name

    def test_different_seed_different_schedule(self):
        spec = CATALOG["diurnal"]("smoke")
        assert compile_scenario(spec, 1) != compile_scenario(spec, 2)

    def test_join_ids_fresh_against_bootstrap(self):
        spec = CATALOG["slow_join"]("smoke")
        bootstrap_ids = {n for n, _ in bootstrap_placement(spec, 5)}
        joins = [
            e.node for e in compile_scenario(spec, 5) if e.kind == "join"
        ]
        assert len(joins) == len(set(joins))
        assert not (set(joins) & bootstrap_ids)

    def test_flash_crowd_keys_skew_to_hot_domain(self):
        spec = CATALOG["flash_crowd"]("smoke")
        placement = dict(bootstrap_placement(spec, 0))
        hot = [n for n, p in placement.items() if p[:1] == ("a",)]
        events = compile_scenario(spec, 0)
        # The burst phases target live member ids of the hot domain.
        burst_keys = [
            e.key for e in events if e.kind == "lookup" and e.key in placement
        ]
        assert burst_keys, "no domain-targeted lookups compiled"
        assert all(placement[k][:2] == ("a", "x") for k in burst_keys)
        assert set(burst_keys) <= set(hot)

    def test_ramped_join_staggers_stabilizes(self):
        spec = CATALOG["slow_join"]("smoke")
        events = compile_scenario(spec, 0)
        kinds = [e.kind for e in events]
        first_join = kinds.index("join")
        window = kinds[first_join : first_join + 8]
        assert window.count("stabilize") >= 2  # every 3 joins at smoke scale

    def test_partition_events_compile_with_paths(self):
        events = compile_scenario(CATALOG["partition_noheal"]("smoke"), 0)
        partition = [e for e in events if e.kind == "partition"]
        heal = [e for e in events if e.kind == "heal"]
        assert partition and partition[0].path == ("c",)
        # A bare heal phase revives everything: serialized with no path.
        assert heal and heal[-1].path is None

    def test_schedules_are_shrinkable(self):
        # Any compiled sub-schedule must replay (run_schedule skips what
        # cannot execute) — the ddmin contract over scenario schedules.
        spec = CATALOG["regional_failure"]("smoke")
        events = compile_scenario(spec, 0)
        kill = next(e for e in events if e.kind == "kill_domain")
        shrunk, _ = shrink_schedule(events, lambda evs: kill in evs)
        assert shrunk == [kill]
        net = bootstrap_scenario(spec, 0)
        report = run_schedule(net, shrunk)
        assert report.domain_kills == 1
        assert report.killed > 0


class TestJsonRoundTrip:
    def test_every_catalog_scenario_roundtrips_exactly(self):
        for name, factory in CATALOG.items():
            spec = factory("smoke")
            events = compile_scenario(spec, 7)
            document = scenario_from_json(scenario_to_json(spec, 7, events))
            assert document.spec == spec, name
            assert document.seed == 7
            assert document.events == events, name
            # And the serialized form itself is a fixed point.
            assert scenario_to_json(
                document.spec, document.seed, document.events
            ) == scenario_to_json(spec, 7, events)

    def test_rejects_unknown_phase_op(self):
        spec = CATALOG["diurnal"]("smoke")
        doc = json.loads(scenario_to_json(spec, 0, []))
        doc["phases"][0]["op"] = "frobnicate"
        with pytest.raises(ValueError, match="unknown op 'frobnicate'"):
            scenario_from_json(json.dumps(doc))

    def test_rejects_unexpected_phase_field(self):
        spec = CATALOG["diurnal"]("smoke")
        doc = json.loads(scenario_to_json(spec, 0, []))
        doc["phases"][0]["rank"] = 3
        with pytest.raises(ValueError, match=r"unexpected field\(s\) rank"):
            scenario_from_json(json.dumps(doc))

    def test_rejects_malformed_event(self):
        spec = CATALOG["diurnal"]("smoke")
        doc = json.loads(scenario_to_json(spec, 0, [Event("stabilize")]))
        doc["events"][0] = {"kind": "lookup", "rank": 1}
        with pytest.raises(ValueError, match="missing required field"):
            scenario_from_json(json.dumps(doc))

    def test_rejects_missing_keys_and_bad_types(self):
        spec = CATALOG["diurnal"]("smoke")
        text = scenario_to_json(spec, 0, [])
        doc = json.loads(text)
        del doc["phases"]
        with pytest.raises(ValueError, match="missing required key 'phases'"):
            scenario_from_json(json.dumps(doc))
        doc = json.loads(text)
        doc["seed"] = "zero"
        with pytest.raises(ValueError, match="seed must be an integer"):
            scenario_from_json(json.dumps(doc))
        with pytest.raises(ValueError, match="not valid JSON"):
            scenario_from_json("{")


class TestReplayDeterminism:
    def test_replaying_twice_is_identical(self):
        # Same seed, two full runs with oracles: identical ChurnReport
        # fields, oracle outcomes and latency accounting.
        spec = CATALOG["regional_failure"]("smoke")
        a = run_scenario(spec, seed=4, families=("chord",), routing_pairs=6)
        b = run_scenario(spec, seed=4, families=("chord",), routing_pairs=6)
        assert a.events == b.events
        assert dataclasses.asdict(a.report) == dataclasses.asdict(b.report)
        assert a.violations == b.violations
        assert a.residual == b.residual
        assert a.lookup_ms == b.lookup_ms
        assert a.messages == b.messages

    def test_fixture_replay_matches_direct_run(self):
        # JSON round-trip changes nothing about the replay.
        spec = CATALOG["slow_join"]("smoke")
        direct = run_scenario(spec, seed=2, families=(), routing_pairs=0)
        document = scenario_from_json(
            scenario_to_json(spec, 2, direct.events)
        )
        replayed = run_scenario(
            document.spec,
            seed=document.seed,
            events=document.events,
            families=(),
            routing_pairs=0,
        )
        assert dataclasses.asdict(replayed.report) == dataclasses.asdict(
            direct.report
        )
        assert replayed.messages == direct.messages
