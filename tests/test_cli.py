"""Tests for the experiments CLI (`python -m repro.experiments`)."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["fig3", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "levels=" in out

    def test_default_scale_is_small(self):
        import argparse

        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "enormous"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_caching_study(self, capsys):
        assert main(["caching", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "proxy" in out and "path" in out

    def test_churn_study(self, capsys):
        assert main(["churn", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "heavy" in out
