"""Tests for the experiments CLI (`python -m repro.experiments`)."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["fig3", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "levels=" in out

    def test_default_scale_is_small(self):
        import argparse

        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "enormous"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_caching_study(self, capsys):
        assert main(["caching", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "proxy" in out and "path" in out

    def test_churn_study(self, capsys):
        assert main(["churn", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "heavy" in out


class TestObservabilityFlags:
    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        import json

        out = tmp_path / "t.jsonl"
        assert main(["fig5", "--scale", "smoke", "--trace", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records, "trace must not be empty"
        types = {r["type"] for r in records}
        assert "span" in types and "route" in types
        route_rec = next(r for r in records if r["type"] == "route")
        assert all({"src", "dst", "level", "domain"} <= set(h) for h in route_rec["path"])
        # The figure table still lands on stdout.
        assert "Figure 5" in capsys.readouterr().out

    def test_trace_is_chrome_convertible(self, tmp_path):
        import json

        from repro.obs.trace import jsonl_to_chrome

        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert main(["fig5", "--scale", "smoke", "--trace", str(jsonl)]) == 0
        assert jsonl_to_chrome(str(jsonl), str(chrome)) > 0
        data = json.loads(chrome.read_text())
        assert all("ph" in event for event in data["traceEvents"])

    def test_metrics_flag_writes_hops_and_messages(self, tmp_path):
        from repro.obs.metrics import MetricsSnapshot

        out = tmp_path / "m.json"
        assert main(["fig5", "--scale", "smoke", "--metrics", str(out)]) == 0
        snap = MetricsSnapshot.from_json(out.read_text())
        hops = snap.histograms["route.hops"]
        assert hops["count"] > 0
        assert sum(hops["counts"]) == hops["count"]
        assert snap.counters["messages.lookup"] > 0
        assert snap.counters["route.samples"] >= snap.counters["route.delivered"] > 0

    def test_profile_flag_reports_phases(self, tmp_path, capsys):
        assert main(["fig5", "--scale", "smoke", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "build" in err and "route" in err and "analysis" in err

    def test_observability_deactivated_after_run(self, tmp_path):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        out = tmp_path / "m.json"
        assert main(
            ["fig5", "--scale", "smoke", "--metrics", str(out), "--trace",
             str(tmp_path / "t.jsonl")]
        ) == 0
        assert obs_trace.active_tracer() is None
        assert obs_metrics.active_registry() is None

    def test_verbose_logs_progress(self, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.experiments"):
            assert main(["fig5", "--scale", "smoke", "-v"]) == 0
        assert any("running fig5" in rec.message for rec in caplog.records)
