"""Tests for content management over the dynamic protocol (handoff,
replication, crash loss)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace
from repro.simulation.data import DataLayer
from repro.simulation.protocol import SimulatedCrescendo

PATHS = [("a", "x"), ("a", "y"), ("b", "x")]


def grown(size=120, seed=0, replicas=2):
    rng = random.Random(seed)
    space = IdSpace(32)
    net = SimulatedCrescendo(space)
    for node_id in space.random_ids(size, rng):
        net.join(node_id, PATHS[rng.randrange(len(PATHS))])
    net.stabilize()
    data = DataLayer(net, replicas=replicas)
    return net, data, rng


class TestPutGet:
    def test_roundtrip(self):
        net, data, rng = grown()
        origin = next(iter(net.nodes))
        data.put(origin, "song.mp3", b"notes")
        value, route = data.get(origin, "song.mp3")
        assert value == b"notes"
        assert route.success

    def test_holders_count(self):
        net, data, rng = grown(replicas=3)
        origin = next(iter(net.nodes))
        holders = data.put(origin, "k", "v")
        assert len(holders) == 3

    def test_primary_is_live_responsible(self):
        net, data, rng = grown()
        origin = next(iter(net.nodes))
        holders = data.put(origin, "k2", "v2")
        key_hash = net.space.hash_key("k2")
        live = sorted(net.nodes)
        from repro.core.idspace import predecessor_index

        assert holders[0] == live[predecessor_index(live, key_hash)]

    def test_domain_scoped_put_requires_membership(self):
        net, data, rng = grown()
        origin = next(iter(net.nodes))
        wrong = next(
            p for p in PATHS if p[:1] != net.nodes[origin].path[:1]
        )
        with pytest.raises(ValueError):
            data.put(origin, "k3", "v3", storage_domain=wrong)

    def test_missing_key(self):
        net, data, rng = grown()
        origin = next(iter(net.nodes))
        value, route = data.get(origin, "no-such")
        assert value is None

    def test_replicas_validated(self):
        net, _, _ = grown()
        with pytest.raises(ValueError):
            DataLayer(net, replicas=0)


class TestHandoff:
    def test_join_takes_over_range(self):
        net, data, rng = grown(seed=1)
        origin = next(iter(net.nodes))
        keys = [f"key-{i}" for i in range(30)]
        for key in keys:
            data.put(origin, key, key)
        for _ in range(10):
            new_id = net.space.random_id(rng)
            while new_id in net.nodes:
                new_id = net.space.random_id(rng)
            net.join(new_id, PATHS[rng.randrange(len(PATHS))])
        live = sorted(net.nodes)
        from repro.core.idspace import predecessor_index

        for key in keys:
            key_hash = net.space.hash_key(key)
            expected = live[predecessor_index(live, key_hash)]
            assert data.holders[key_hash][0] == expected

    def test_graceful_leave_hands_off(self):
        net, data, rng = grown(seed=2)
        origin = next(iter(net.nodes))
        keys = [f"doc-{i}" for i in range(30)]
        for key in keys:
            data.put(origin, key, key)
        # Leave every original holder of one key.
        victim_key = keys[0]
        key_hash = net.space.hash_key(victim_key)
        for holder in list(data.holders[key_hash]):
            if len(net.nodes) > 3:
                net.leave(holder)
        assert data.value_available(victim_key)
        querier = next(iter(net.nodes))
        value, route = data.get(querier, victim_key)
        assert value == victim_key

    def test_all_lookups_succeed_after_churn(self):
        net, data, rng = grown(seed=3)
        origin = next(iter(net.nodes))
        keys = [f"file-{i}" for i in range(25)]
        for key in keys:
            data.put(origin, key, key)
        for _ in range(15):
            action = rng.random()
            live = [n for n, node in net.nodes.items() if node.alive]
            if action < 0.5:
                new_id = net.space.random_id(rng)
                while new_id in net.nodes:
                    new_id = net.space.random_id(rng)
                net.join(new_id, PATHS[rng.randrange(len(PATHS))])
            elif len(live) > 10:
                net.leave(rng.choice(live))
        net.stabilize_to_convergence()
        querier = next(iter(net.nodes))
        found = sum(data.get(querier, key)[0] == key for key in keys)
        assert found == len(keys)


class TestCrashes:
    def test_single_crash_masked_by_replica(self):
        net, data, rng = grown(seed=4, replicas=2)
        origin = next(iter(net.nodes))
        data.put(origin, "kx", "vx")
        key_hash = net.space.hash_key("kx")
        primary = data.holders[key_hash][0]
        net.crash(primary)
        assert data.value_available("kx")
        net.stabilize()  # re-replication restores the degree
        live_holders = [
            h for h in data.holders[key_hash] if h in net.nodes
        ]
        assert len(live_holders) == 2

    def test_simultaneous_crash_of_all_copies_loses_key(self):
        net, data, rng = grown(seed=5, replicas=2)
        origin = next(iter(net.nodes))
        data.put(origin, "doomed", 1)
        key_hash = net.space.hash_key("doomed")
        for holder in list(data.holders[key_hash]):
            net.crash(holder)
        net.stabilize()
        assert not data.value_available("doomed")
        assert "doomed" in data.lost_keys()

    def test_staggered_crashes_survive_with_repair(self):
        net, data, rng = grown(seed=6, replicas=3)
        origin = next(iter(net.nodes))
        data.put(origin, "sturdy", 2)
        key_hash = net.space.hash_key("sturdy")
        for _ in range(4):
            primary = data.holders[key_hash][0]
            net.crash(primary)
            net.stabilize()  # repair between failures
            assert data.value_available("sturdy")
