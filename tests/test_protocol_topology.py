"""Integration: the dynamic protocol over the transit-stub internet model.

Nodes join through the §2.3 protocol using the topology-induced five-level
hierarchy; lookups are then measured in *milliseconds* with the topology's
latency function, and the dynamically built network must behave like the
statically built one on the same placements.
"""

from __future__ import annotations

import random
import statistics

import pytest

from repro import IdSpace
from repro.core.routing import route_ring
from repro.dhts.crescendo import CrescendoNetwork
from repro.simulation.protocol import SimulatedCrescendo
from repro.topology.transit_stub import TopologyParams, TransitStubTopology


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0)
    params = TopologyParams(
        transit_domains=2, transit_per_domain=3,
        stub_domains_per_transit=2, stub_per_domain=4,
    )
    topo = TransitStubTopology(params, rng=rng)
    space = IdSpace(32)
    ids = space.random_ids(250, rng)
    hierarchy = topo.attach_nodes(ids, rng)

    net = SimulatedCrescendo(space)
    for node_id in ids:
        net.join(node_id, hierarchy.path_of(node_id))
    net.stabilize()
    return topo, net, ids, rng


class TestDynamicOverTopology:
    def test_converges_to_oracle(self, env):
        topo, net, ids, rng = env
        assert net.static_links() == net.oracle_links()

    def test_lookup_latency_matches_static(self, env):
        """Dynamically built tables route with the same latency profile as
        the static construction on identical placements."""
        topo, net, ids, rng = env
        static = CrescendoNetwork(net.space, net.hierarchy).build()
        pairs = [tuple(rng.sample(ids, 2)) for _ in range(150)]
        dynamic_ms = statistics.mean(
            net.lookup(a, b).latency(topo.node_latency) for a, b in pairs
        )
        static_ms = statistics.mean(
            route_ring(static, a, b).latency(topo.node_latency) for a, b in pairs
        )
        # The protocol's lookup may also step through deep leaf-set entries
        # (successors 2..r are not links): strictly more choices per hop, so
        # it routes at least as well as the static link tables — and within
        # the same ballpark.
        assert dynamic_ms <= static_ms * 1.05
        assert dynamic_ms >= static_ms * 0.5

    def test_local_lookups_are_cheap(self, env):
        """Same-stub-domain lookups cost a few ms; global ones hundreds."""
        topo, net, ids, rng = env
        hierarchy = net.hierarchy
        local_ms = []
        checked = 0
        while checked < 40:
            a = rng.choice(ids)
            peers = [
                m for m in hierarchy.members(hierarchy.path_of(a)[:3]) if m != a
            ]
            if not peers:
                continue
            b = rng.choice(peers)
            local_ms.append(net.lookup(a, b).latency(topo.node_latency))
            checked += 1
        global_ms = [
            net.lookup(*rng.sample(ids, 2)).latency(topo.node_latency)
            for _ in range(40)
        ]
        assert statistics.mean(local_ms) < statistics.mean(global_ms) / 3

    def test_domain_crash_leaves_other_transit_domain_working(self, env):
        """Fault isolation on the live protocol state: crash every node of
        one transit domain; the other domain's lookups all succeed."""
        topo, net, ids, rng = env
        dead_domain = ("t0",)
        victims = [
            n for n in list(net.nodes)
            if net.nodes[n].path[:1] == dead_domain
        ]
        survivors = [
            n for n in list(net.nodes)
            if net.nodes[n].path[:1] != dead_domain
        ]
        for victim in victims:
            net.crash(victim)
        delivered = 0
        for _ in range(60):
            a, b = rng.sample(survivors, 2)
            result = net.lookup(a, b)
            delivered += result.success and result.terminal == b
        # Intra-domain routes never used the dead domain's nodes.
        same_domain_trials = 0
        while same_domain_trials < 30:
            a = rng.choice(survivors)
            peers = [
                m
                for m in survivors
                if m != a and net.nodes[m].path[:1] == net.nodes[a].path[:1]
            ]
            if not peers:
                continue
            b = rng.choice(peers)
            result = net.lookup(a, b)
            assert result.success and result.terminal == b
            same_domain_trials += 1
