"""Smoke-run every paper experiment and assert its qualitative shape.

These are the repository's headline checks: each of the paper's Figures 3-9
is regenerated at smoke scale and the claim the paper makes about the curve
is asserted (who wins, what trends up/down).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import (
    fig3_links,
    fig4_degree_pdf,
    fig5_hops,
    fig6_stretch,
    fig7_locality,
    fig8_overlap,
    fig9_multicast,
)
from repro.experiments.common import get_scale, seeded_rng


class TestScaffolding:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"fig{i}" for i in range(3, 10)} | {
            "ablations",
            "caching",
            "churn",
            "inflight",
            "isolation",
            "serve",
            "theorems",
            "scenarios",
            "zoo",
        }

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_seeded_rng_deterministic(self):
        assert seeded_rng("x", 1).random() == seeded_rng("x", 1).random()
        assert seeded_rng("x", 1).random() != seeded_rng("x", 2).random()


class TestFig3:
    def test_degree_close_to_log_n(self):
        data = fig3_links.measurements("smoke")
        for (size, levels), degree in data.items():
            assert abs(degree - math.log2(size)) < 2.0

    def test_degree_decreases_with_levels(self):
        data = fig3_links.measurements("smoke")
        sizes = {size for size, _ in data}
        for size in sizes:
            degrees = [data[(size, lv)] for lv in sorted({l for _, l in data})]
            assert degrees[-1] <= degrees[0] + 0.1

    def test_table_renders(self):
        assert "Figure 3" in fig3_links.run("smoke").render()


class TestFig4:
    def test_pdfs_normalised(self):
        for pdf in fig4_degree_pdf.distributions("smoke").values():
            assert abs(sum(pdf.values()) - 1.0) < 1e-9

    def test_left_tail_grows_with_levels(self):
        """Paper: the PDF flattens to the left of the mean as levels grow."""
        dists = fig4_degree_pdf.distributions("smoke")
        levels = sorted(dists)
        mean_first = sum(d * p for d, p in dists[levels[0]].items())
        left_mass = {
            lv: sum(p for d, p in dists[lv].items() if d < mean_first - 1)
            for lv in levels
        }
        assert left_mass[levels[-1]] >= left_mass[levels[0]]

    def test_max_degree_stable(self):
        dists = fig4_degree_pdf.distributions("smoke")
        maxima = {lv: max(pdf) for lv, pdf in dists.items()}
        levels = sorted(maxima)
        assert maxima[levels[-1]] <= maxima[levels[0]] + 4


class TestFig5:
    def test_hops_near_half_log(self):
        data = fig5_hops.measurements("smoke")
        for (size, levels), hops in data.items():
            assert hops <= 0.5 * math.log2(size) + 1.5
            assert hops >= 0.5 * math.log2(size) - 1.0

    def test_hierarchy_penalty_bounded(self):
        """Paper: at most +0.7 hops regardless of the number of levels."""
        data = fig5_hops.measurements("smoke")
        sizes = {size for size, _ in data}
        levels = sorted({lv for _, lv in data})
        for size in sizes:
            penalty = data[(size, levels[-1])] - data[(size, levels[0])]
            assert penalty <= 0.7 + 0.3


class TestFig6:
    @pytest.fixture(scope="class")
    def data(self):
        return fig6_stretch.measurements("smoke")

    def test_all_systems_measured(self, data):
        systems = {label for label, _ in data}
        assert systems == {
            "Chord (No Prox.)",
            "Crescendo (No Prox.)",
            "Chord (Prox.)",
            "Crescendo (Prox.)",
        }

    def test_crescendo_beats_chord(self, data):
        sizes = {size for _, size in data}
        for size in sizes:
            assert (
                data[("Crescendo (No Prox.)", size)][0]
                < data[("Chord (No Prox.)", size)][0]
            )
            assert (
                data[("Crescendo (Prox.)", size)][0]
                < data[("Chord (Prox.)", size)][0]
            )

    def test_prox_helps_both(self, data):
        sizes = {size for _, size in data}
        for size in sizes:
            assert (
                data[("Chord (Prox.)", size)][0]
                < data[("Chord (No Prox.)", size)][0]
            )
            assert (
                data[("Crescendo (Prox.)", size)][0]
                <= data[("Crescendo (No Prox.)", size)][0] + 0.2
            )

    def test_stretch_above_one(self, data):
        assert all(v[0] >= 1.0 for v in data.values())


class TestFig7:
    @pytest.fixture(scope="class")
    def data(self):
        return fig7_locality.measurements("smoke")

    def test_crescendo_latency_collapses_with_locality(self, data):
        series = [data[("Crescendo (No Prox.)", lv)] for lv in (0, 1, 2, 3, 4)]
        assert series[-1] < series[0] / 20, "Level-4 queries nearly free"
        assert all(x >= y for x, y in zip(series, series[1:]))

    def test_chord_barely_improves(self, data):
        series = [data[("Chord (Prox.)", lv)] for lv in (0, 1, 2, 3, 4)]
        assert series[-1] > series[0] / 4, "flat routing has no path locality"

    def test_crescendo_prox_best_at_top_level(self, data):
        assert (
            data[("Crescendo (Prox.)", 0)] <= data[("Chord (Prox.)", 0)] * 1.1
        )


class TestFig8:
    @pytest.fixture(scope="class")
    def data(self):
        return fig8_overlap.measurements("smoke")

    def test_crescendo_overlap_grows_with_level(self, data):
        hops = [data[("Crescendo", lv)][0] for lv in (0, 1, 2, 3, 4)]
        assert hops[3] > hops[0]
        assert hops[3] > 0.5

    def test_latency_overlap_above_hop_overlap(self, data):
        for lv in (1, 2, 3):
            hop, lat = data[("Crescendo", lv)]
            assert lat >= hop, "non-overlapping local hops are cheap"

    def test_chord_overlap_low(self, data):
        for lv in (1, 2, 3):
            assert data[("Chord (Prox.)", lv)][0] < 0.5

    def test_crescendo_beats_chord(self, data):
        for lv in (1, 2, 3, 4):
            assert data[("Crescendo", lv)][0] > data[("Chord (Prox.)", lv)][0]


class TestFig9:
    def test_crescendo_uses_far_fewer_interdomain_links(self):
        data = fig9_multicast.measurements("smoke")
        for depth in (1, 2):
            crescendo = data[("Crescendo", depth)]
            chord = data[("Chord (Prox.)", depth)]
            assert crescendo < chord / 2, (
                f"depth {depth}: {crescendo} vs {chord}"
            )

    def test_table_has_ratio_column(self):
        table = fig9_multicast.run("smoke")
        assert "ratio" in table.columns
