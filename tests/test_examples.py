"""Smoke tests: the fast example scripts run end-to-end.

The examples are documentation that executes; these tests keep them from
rotting.  Only the sub-10-second examples run here (the topology-based ones
are exercised indirectly through the figure experiments).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "average routing hops" in out
        assert "intra-domain route stays inside" in out
        assert "True" in out

    def test_name_service(self):
        out = run_example("name_service.py")
        assert "A 203.0.113.10" in out
        assert "(want None)" in out and "None  (want None)" in out

    def test_campus_storage(self):
        out = run_example("campus_storage.py")
        assert "query stayed inside DB: True" in out
        assert "dataset visible to EE: False" in out
        assert "hit rate" in out

    def test_examples_exist_and_are_runnable_scripts(self):
        expected = {
            "quickstart.py",
            "campus_storage.py",
            "global_deployment.py",
            "churn_resilience.py",
            "dht_zoo.py",
            "multicast_pubsub.py",
            "name_service.py",
        }
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= present
        for name in expected:
            source = (EXAMPLES / name).read_text()
            assert '__name__ == "__main__"' in source
            assert '"""' in source.splitlines()[0], f"{name} lacks a docstring"
