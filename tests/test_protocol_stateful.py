"""Stateful property test: arbitrary churn sequences converge to the oracle.

Hypothesis drives random interleavings of joins, graceful leaves, crashes
and stabilization rounds against :class:`SimulatedCrescendo`; after every
burst of operations the network must (a) deliver lookups between live nodes
and (b) converge exactly to the static oracle construction once stabilized.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import IdSpace
from repro.simulation.protocol import SimulatedCrescendo

PATHS = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]


class ChurnMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.space = IdSpace(24)
        self.net = SimulatedCrescendo(self.space)
        self.rng = random.Random(0xFEED)
        self.ops_since_stabilize = 0
        self.crashes_unrepaired = 0

    @initialize(seed=st.integers(0, 2**16))
    def seed_network(self, seed):
        self.rng = random.Random(seed)
        for node_id in self.space.random_ids(30, self.rng):
            self.net.join(node_id, PATHS[self.rng.randrange(len(PATHS))])

    def _live(self):
        return [n for n, node in self.net.nodes.items() if node.alive]

    @rule(path_index=st.integers(0, len(PATHS) - 1))
    def join(self, path_index):
        new_id = self.space.random_id(self.rng)
        while new_id in self.net.nodes:
            new_id = self.space.random_id(self.rng)
        self.net.join(new_id, PATHS[path_index])
        self.ops_since_stabilize += 1

    @precondition(lambda self: len(self._live()) > 5)
    @rule()
    def leave(self):
        self.net.leave(self.rng.choice(self._live()))
        self.ops_since_stabilize += 1

    @precondition(
        lambda self: len(self._live()) > 8 and self.ops_since_stabilize < 3
    )
    @rule()
    def crash(self):
        # Crashes are bounded between stabilize rounds (leaf sets of size 4
        # tolerate bounded simultaneous failure, as in Chord).
        self.net.crash(self.rng.choice(self._live()))
        self.ops_since_stabilize += 1
        self.crashes_unrepaired += 1

    @rule()
    def stabilize(self):
        self.net.stabilize()
        self.ops_since_stabilize = 0
        self.crashes_unrepaired = 0

    @invariant()
    def lookups_deliver(self):
        # Unrepaired crashes may legitimately strand individual lookups in a
        # small network; the guarantee applies once stabilization has run.
        if self.crashes_unrepaired:
            return
        live = self._live()
        if len(live) < 2:
            return
        a, b = self.rng.sample(live, 2)
        result = self.net.lookup(a, b)
        assert result.success and result.terminal == b

    def teardown(self):
        # Whatever happened, the protocol must converge back to the oracle.
        if self.net.nodes:
            rounds = self.net.stabilize_to_convergence(max_rounds=30)
            assert rounds <= 30


ChurnMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestChurnMachine = ChurnMachine.TestCase
