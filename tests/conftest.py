"""Shared fixtures: ID spaces, seeded RNGs, and prebuilt small networks.

Networks that several test modules reuse are session-scoped; everything is
deterministic (fixed seeds) so failures reproduce.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ChordNetwork,
    CrescendoNetwork,
    IdSpace,
    build_uniform_hierarchy,
)


def pytest_collection_modifyitems(config, items):
    """Every ``fuzz`` test is implicitly ``slow``.

    The markers themselves are registered in ``pyproject.toml``; the
    default run deselects ``fuzz`` (see ``addopts``) — run them with
    ``pytest -m fuzz``.
    """
    slow = pytest.mark.slow
    for item in items:
        if "fuzz" in item.keywords:
            item.add_marker(slow)


@pytest.fixture
def space():
    return IdSpace(32)


@pytest.fixture
def small_space():
    """A tiny 8-bit space where brute-force enumeration is trivial."""
    return IdSpace(8)


@pytest.fixture
def rng():
    return random.Random(0xBEEF)


def make_crescendo(size=400, levels=3, fanout=4, seed=7, use_numpy=True, bits=32):
    """Helper used across modules: a deterministic Crescendo instance."""
    rng = random.Random(seed)
    space = IdSpace(bits)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, fanout, levels, rng)
    return CrescendoNetwork(space, hierarchy, use_numpy=use_numpy).build()


def make_chord(size=400, seed=7, bits=32):
    rng = random.Random(seed)
    space = IdSpace(bits)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, 4, 1, rng)
    return ChordNetwork(space, hierarchy).build()


@pytest.fixture(scope="session")
def crescendo_net():
    return make_crescendo()


@pytest.fixture(scope="session")
def chord_net():
    return make_chord()
