"""Tests for leaf-set replication of stored content."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.crescendo import CrescendoNetwork
from repro.storage.replication import ReplicatedStore
from repro.storage.store import HierarchicalStore


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(500, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 2, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    return net, ReplicatedStore(HierarchicalStore(net), replicas=3), rng


class TestPlacement:
    def test_replica_count(self, env):
        net, store, rng = env
        holders = store.put(net.node_ids[0], "k1", "v1")
        assert len(holders) == 3
        assert len(set(holders)) == 3

    def test_primary_is_responsible(self, env):
        net, store, rng = env
        holders = store.put(net.node_ids[1], "k2", "v2")
        key_hash = net.space.hash_key("k2")
        assert holders[0] == net.responsible_node(key_hash)

    def test_replicas_are_predecessors(self, env):
        """Under the inverted responsibility rule, replicas go on ring
        predecessors — the nodes that inherit the range if the primary dies."""
        net, store, rng = env
        holders = store.put(net.node_ids[2], "k3", "v3")
        ids = net.node_ids
        pos = ids.index(holders[0])
        assert holders[1] == ids[(pos - 1) % len(ids)]
        assert holders[2] == ids[(pos - 2) % len(ids)]

    def test_domain_scoped_replicas_stay_inside(self, env):
        net, store, rng = env
        origin = net.node_ids[3]
        domain = net.hierarchy.path_of(origin)[:1]
        holders = store.put(origin, "k4", "v4", storage_domain=domain)
        for holder in holders:
            assert net.hierarchy.path_of(holder)[:1] == domain

    def test_replica_validation(self, env):
        net, _, _ = env
        with pytest.raises(ValueError):
            ReplicatedStore(HierarchicalStore(net), replicas=0)


class TestFailureMasking:
    def test_get_survives_primary_crash(self, env):
        net, store, rng = env
        origin = net.node_ids[4]
        holders = store.put(origin, "k5", "precious")
        alive = set(net.node_ids) - {holders[0]}
        live_origin = next(n for n in net.node_ids if n in alive)
        result = store.get_with_failures(live_origin, "k5", alive)
        assert result.found
        assert result.values == ["precious"]

    def test_get_survives_two_crashes(self, env):
        net, store, rng = env
        origin = net.node_ids[5]
        holders = store.put(origin, "k6", "v6")
        alive = set(net.node_ids) - set(holders[:2])
        live_origin = next(n for n in net.node_ids if n in alive)
        result = store.get_with_failures(live_origin, "k6", alive)
        assert result.found

    def test_all_replicas_dead_loses_key(self, env):
        net, store, rng = env
        origin = net.node_ids[6]
        holders = store.put(origin, "k7", "v7")
        alive = set(net.node_ids) - set(holders)
        live_origin = next(n for n in net.node_ids if n in alive)
        result = store.get_with_failures(live_origin, "k7", alive)
        assert not result.found

    def test_dead_origin_rejected(self, env):
        net, store, rng = env
        holders = store.put(net.node_ids[7], "k8", "v8")
        alive = set(net.node_ids) - {net.node_ids[8]}
        with pytest.raises(ValueError):
            store.get_with_failures(net.node_ids[8], "k8", alive)

    def test_surviving_copies(self, env):
        net, store, rng = env
        holders = store.put(net.node_ids[9], "k9", "v9")
        assert store.surviving_copies("k9", set(net.node_ids)) == 3
        assert store.surviving_copies("k9", set(net.node_ids) - {holders[1]}) == 2

    def test_failure_free_get(self, env):
        net, store, rng = env
        store.put(net.node_ids[10], "k10", "v10")
        result = store.get(net.node_ids[11], "k10")
        assert result.found and result.values == ["v10"]
