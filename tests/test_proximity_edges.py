"""Edge cases for the proximity-adapted networks and grouped routing."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.proximity.groups import (
    ProximityChordNetwork,
    ProximityCrescendoNetwork,
    route_grouped,
)


def lat(a: int, b: int) -> float:
    return float(abs((a % 997) - (b % 997)))


class TestTinyNetworks:
    def test_single_group_network(self):
        """Population below the group target: one group, dense graph."""
        rng = random.Random(0)
        space = IdSpace(32)
        ids = space.random_ids(6, rng)
        h = build_uniform_hierarchy(ids, 2, 1, rng)
        net = ProximityChordNetwork(space, h, lat, rng, group_target=8).build()
        assert net.prefix_bits == 0
        for a in ids:
            for b in ids:
                if a != b:
                    assert b in net.links[a], "single group must be complete"
        for _ in range(20):
            a, b = rng.sample(ids, 2)
            result = route_grouped(net, a, b)
            assert result.success and result.terminal == b
            assert result.hops == 1

    def test_two_node_network(self):
        rng = random.Random(1)
        space = IdSpace(32)
        ids = space.random_ids(2, rng)
        h = build_uniform_hierarchy(ids, 2, 1, rng)
        net = ProximityChordNetwork(space, h, lat, rng).build()
        result = route_grouped(net, ids[0], ids[1])
        assert result.success and result.terminal == ids[1]

    def test_prox_crescendo_small(self):
        rng = random.Random(2)
        space = IdSpace(32)
        ids = space.random_ids(12, rng)
        h = build_uniform_hierarchy(ids, 2, 2, rng)
        net = ProximityCrescendoNetwork(space, h, lat, rng).build()
        for _ in range(30):
            a, b = rng.sample(ids, 2)
            result = route_grouped(net, a, b)
            assert result.success and result.terminal == b


class TestKeyRouting:
    def test_key_to_responsible_node(self):
        rng = random.Random(3)
        space = IdSpace(32)
        ids = space.random_ids(300, rng)
        h = build_uniform_hierarchy(ids, 4, 2, rng)
        net = ProximityCrescendoNetwork(space, h, lat, rng).build()
        for _ in range(80):
            key = space.random_id(rng)
            src = rng.choice(ids)
            result = route_grouped(net, src, key)
            assert result.success
            assert result.terminal == net.responsible_node(key)

    def test_self_route(self):
        rng = random.Random(4)
        space = IdSpace(32)
        ids = space.random_ids(50, rng)
        h = build_uniform_hierarchy(ids, 2, 1, rng)
        net = ProximityChordNetwork(space, h, lat, rng).build()
        node = ids[0]
        result = route_grouped(net, node, node)
        assert result.success and result.hops == 0


class TestLatencySelection:
    def test_links_prefer_nearby_members(self):
        """Group links land on latency-close members far more often than
        uniform choice would."""
        rng = random.Random(5)
        space = IdSpace(32)
        ids = space.random_ids(800, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        net = ProximityChordNetwork(space, h, lat, rng, group_target=16).build()
        groups = net.groups
        better = total = 0
        for node in ids[:100]:
            own = groups.group_of(node)
            for link in net.links[node]:
                target_group = groups.group_of(link)
                if target_group == own:
                    continue
                members = [m for m in groups.members[target_group] if m != node]
                if len(members) < 2:
                    continue
                mean_lat = sum(lat(node, m) for m in members) / len(members)
                total += 1
                better += lat(node, link) < mean_lat
        assert better / total > 0.8
