"""Tests for Kandy — Canonical Kademlia (Section 3.3).

Includes the counterexample justifying the per-bucket reading of the paper's
filter (DESIGN.md §4)."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.hierarchy import Hierarchy
from repro.core.routing import route_xor
from repro.dhts.kademlia import KademliaNetwork, bucket_members_range
from repro.dhts.kandy import KandyNetwork


def build(size=500, levels=3, fanout=4, seed=0, bits=32):
    rng = random.Random(seed)
    space = IdSpace(bits)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, fanout, levels, rng)
    return KandyNetwork(space, h, rng).build()


@pytest.fixture(scope="module")
def net():
    return build()


class TestLiteralFilterCounterexample:
    """With D = {0000, 0001} and target 1000, the literal global-threshold
    filter would leave both D members without any link into the target's
    subtree; the per-bucket rule keeps routing total."""

    def test_per_bucket_rule_keeps_bucket3_link(self):
        space = IdSpace(4)
        h = Hierarchy()
        h.place(0b0000, ("D",))
        h.place(0b0001, ("D",))
        h.place(0b1000, ("E",))
        net = KandyNetwork(space, h).build()
        # Literal reading: threshold = shortest link distance = 1 (to 0001),
        # so the bucket-3 candidate at distance 8 would be dropped and 1000
        # would be unreachable.  Per-bucket: bucket 3 is empty within D, so
        # the contact comes from the enclosing domain.
        assert 0b1000 in net.links[0b0000]
        r = route_xor(net, 0b0000, 0b1000)
        assert r.success and r.terminal == 0b1000


class TestLowestDomainRule:
    def test_contact_from_lowest_populated_domain(self, net):
        """The bucket-k contact comes from the deepest enclosing domain with
        a non-empty bucket k."""
        space = net.space
        hierarchy = net.hierarchy
        for node in net.node_ids[:40]:
            chain = hierarchy.ancestor_chain(node)
            for k, depth in net.contact_depth[node].items():
                for domain in chain:
                    members = hierarchy.sorted_members(domain)
                    i, j = bucket_members_range(node, k, members, space)
                    if i != j:
                        assert len(domain) == depth, (
                            f"bucket {k} of {node}: contact depth {depth}, "
                            f"but domain {domain} already has members"
                        )
                        break

    def test_links_match_contact_depths(self, net):
        for node in net.node_ids[:40]:
            assert len(net.links[node]) <= len(net.contact_depth[node]) * net.bucket_size

    def test_degree_matches_flat_kademlia(self, net):
        """One contact per globally non-empty bucket: same budget as flat."""
        rng = random.Random(1)
        h1 = build_uniform_hierarchy(list(net.node_ids), 4, 1, rng)
        flat = KademliaNetwork(net.space, h1, rng).build()
        assert abs(net.average_degree() - flat.average_degree()) < 1e-9


class TestRouting:
    def test_total_delivery(self, net):
        rng = random.Random(2)
        for _ in range(150):
            a, b = rng.sample(net.node_ids, 2)
            r = route_xor(net, a, b)
            assert r.success and r.terminal == b

    def test_hops_logarithmic(self, net):
        rng = random.Random(3)
        hops = [
            route_xor(net, *rng.sample(net.node_ids, 2)).hops for _ in range(200)
        ]
        assert statistics.mean(hops) < math.log2(net.size)

    def test_intra_domain_path_locality(self, net):
        """A route between same-domain nodes stays within the domain."""
        rng = random.Random(4)
        hierarchy = net.hierarchy
        for _ in range(100):
            a, b = rng.sample(net.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            r = route_xor(net, a, b)
            assert r.success
            assert all(
                hierarchy.path_of(n)[: len(shared)] == shared for n in r.path
            )

    def test_local_contacts_preferred(self, net):
        """Most of a node's links point inside its own low-level domains."""
        hierarchy = net.hierarchy
        local, total = 0, 0
        for node in net.node_ids:
            path = hierarchy.path_of(node)
            for link in net.links[node]:
                total += 1
                local += hierarchy.path_of(link)[:1] == path[:1]
        # Domains hold ~1/4 of nodes each (fanout 4) but most buckets are
        # small-distance ones resolvable locally.
        assert local / total > 0.4


class TestDeterministicVariant:
    def test_closest_contact_selection(self):
        net = build(size=200, seed=5)
        deterministic = KandyNetwork(net.space, net.hierarchy, rng=None).build()
        space = net.space
        hierarchy = net.hierarchy
        for node in deterministic.node_ids[:20]:
            for k, depth in deterministic.contact_depth[node].items():
                domain = hierarchy.path_of(node)[:depth]
                members = hierarchy.sorted_members(domain)
                i, j = bucket_members_range(node, k, members, space)
                bucket = members[i:j]
                chosen = [
                    l
                    for l in deterministic.links[node]
                    if space.xor_distance(node, l).bit_length() - 1 == k
                ]
                if bucket and chosen:
                    best = min(bucket, key=lambda m: space.xor_distance(node, m))
                    assert best in chosen
