"""Tests for the report and export CLI commands."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.__main__ import main


class TestReport:
    def test_report_writes_markdown(self, tmp_path):
        out = tmp_path / "RESULTS.md"
        assert main(["report", "--scale", "smoke", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Canon reproduction")
        for fig in range(3, 10):
            assert f"Figure {fig}" in text

    def test_report_generate_returns_text(self):
        from repro.experiments.report import generate

        text = generate("smoke")
        assert "| " in text  # markdown tables present


class TestExport:
    def test_export_writes_one_csv_per_experiment(self, tmp_path):
        out_dir = tmp_path / "results"
        assert main(["export", "--scale", "smoke", "--out", str(out_dir)]) == 0
        files = {p.stem for p in out_dir.glob("*.csv")}
        assert files == set(EXPERIMENTS)
        fig3 = (out_dir / "fig3.csv").read_text()
        header = fig3.splitlines()[0]
        assert header.startswith("n,")
        assert "levels=1" in header
        assert len(fig3.splitlines()) >= 3
