"""Tests for the metrics registry (`repro.obs.metrics`).

Includes the snapshot/diff/merge round-trip property tests required by the
observability issue: serialising a snapshot to JSON and back is loss-free,
``later.diff(earlier).merge(earlier) == later`` for counter/histogram
state, and merge is commutative on counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    active_registry,
    collecting,
)


def populated_registry(hop_values, message_counts):
    """A registry with one histogram and per-kind message counters."""
    registry = MetricsRegistry()
    hist = registry.histogram("route.hops")
    for value in hop_values:
        hist.observe(value)
    for kind, count in message_counts.items():
        registry.counter(f"messages.{kind}").inc(count)
    return registry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter("x").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("deg").set(3.5)
        registry.gauge("deg").set(4.5)
        assert registry.gauge("deg").value == 4.5

    def test_histogram_bucketing(self):
        hist = Histogram("h", buckets=(1, 4, 16))
        for value in (0, 1, 2, 4, 5, 100):
            hist.observe(value)
        assert hist.counts == [2, 2, 1, 1]  # le_1, le_4, le_16, overflow
        assert hist.count == 6
        assert hist.sum == 112
        assert hist.mean == pytest.approx(112 / 6)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(4, 1))

    def test_histogram_recreate_with_other_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_message_sink_counts_by_kind(self):
        registry = MetricsRegistry()
        sink = registry.message_sink()
        sink("join")
        sink("join")
        sink("stabilize")
        assert registry.counter("messages.join").value == 2
        assert registry.counter("messages.stabilize").value == 1


class TestSnapshotOperations:
    def test_json_roundtrip_is_lossless(self):
        registry = populated_registry([1, 3, 9], {"join": 5, "lookup": 2})
        registry.gauge("n").set(512)
        snap = registry.snapshot()
        assert MetricsSnapshot.from_json(snap.to_json()) == snap

    def test_diff_isolates_a_measurement_window(self):
        registry = populated_registry([2], {"join": 1})
        before = registry.snapshot()
        registry.counter("messages.join").inc(3)
        registry.histogram("route.hops").observe(7)
        window = registry.snapshot().diff(before)
        assert window.counters["messages.join"] == 3
        assert window.histograms["route.hops"]["count"] == 1
        assert window.histograms["route.hops"]["sum"] == 7

    def test_diff_then_merge_recovers_later_snapshot(self):
        registry = populated_registry([1, 5], {"lookup": 4})
        earlier = registry.snapshot()
        registry.histogram("route.hops").observe(9)
        registry.counter("messages.lookup").inc(2)
        later = registry.snapshot()
        recovered = later.diff(earlier).merge(earlier)
        assert recovered.counters == later.counters
        assert recovered.histograms == later.histograms

    def test_merge_adds_shards(self):
        a = populated_registry([1, 2], {"join": 1}).snapshot()
        b = populated_registry([8], {"join": 2, "leave": 5}).snapshot()
        merged = a.merge(b)
        assert merged.counters == {"messages.join": 3, "messages.leave": 5}
        assert merged.histograms["route.hops"]["count"] == 3
        assert merged.histograms["route.hops"]["sum"] == 11

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2))
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 2, 3))
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())

    def test_csv_export(self, tmp_path):
        registry = populated_registry([1], {"join": 2})
        registry.gauge("n").set(64)
        out = tmp_path / "metrics.csv"
        registry.export_csv(str(out))
        lines = out.read_text().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert "counter,messages.join,value,2" in lines
        assert "gauge,n,value,64" in lines
        assert any(line.startswith("histogram,route.hops,le_1,") for line in lines)

    def test_export_json_file(self, tmp_path):
        registry = populated_registry([3], {})
        out = tmp_path / "metrics.json"
        registry.export_json(str(out))
        snap = MetricsSnapshot.from_json(out.read_text())
        assert snap.histograms["route.hops"]["count"] == 1


hop_lists = st.lists(st.integers(0, 2000), max_size=40)
msg_maps = st.dictionaries(
    st.sampled_from(["join", "leave", "lookup", "stabilize"]),
    st.integers(0, 1000),
    max_size=4,
)


class TestSnapshotProperties:
    @settings(max_examples=30, deadline=None)
    @given(hops=hop_lists, msgs=msg_maps)
    def test_json_roundtrip_property(self, hops, msgs):
        snap = populated_registry(hops, msgs).snapshot()
        assert MetricsSnapshot.from_json(snap.to_json()) == snap

    @settings(max_examples=30, deadline=None)
    @given(hops_a=hop_lists, msgs_a=msg_maps, hops_b=hop_lists, msgs_b=msg_maps)
    def test_merge_commutes_on_counts(self, hops_a, msgs_a, hops_b, msgs_b):
        a = populated_registry(hops_a, msgs_a).snapshot()
        b = populated_registry(hops_b, msgs_b).snapshot()
        ab, ba = a.merge(b), b.merge(a)
        assert ab.counters == ba.counters
        assert ab.histograms == ba.histograms

    @settings(max_examples=30, deadline=None)
    @given(hops=hop_lists, msgs=msg_maps, extra=hop_lists)
    def test_diff_merge_roundtrip_property(self, hops, msgs, extra):
        registry = populated_registry(hops, msgs)
        earlier = registry.snapshot()
        for value in extra:
            registry.histogram("route.hops").observe(value)
        registry.counter("messages.lookup").inc(len(extra))
        later = registry.snapshot()
        recovered = later.diff(earlier).merge(earlier)
        assert recovered.counters == later.counters
        assert recovered.histograms == later.histograms


class TestActiveRegistry:
    def test_collecting_installs_and_restores(self):
        assert active_registry() is None
        with collecting() as registry:
            assert active_registry() is registry
            with collecting() as inner:
                assert active_registry() is inner
            assert active_registry() is registry
        assert active_registry() is None

    def test_default_buckets_cover_hops(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert DEFAULT_BUCKETS[-1] >= 1024
