"""Tests for the analytic-bound functions and the theorems experiment."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    chord_degree_bound,
    chord_hops_bound,
    crescendo_degree_bound,
    crescendo_hops_bound,
    expected_intra_hops,
    whp_degree_envelope,
    whp_hops_envelope,
)


class TestBoundFunctions:
    def test_chord_degree_formula(self):
        assert chord_degree_bound(1025) == pytest.approx(math.log2(1024) + 1)

    def test_degenerate_sizes(self):
        assert chord_degree_bound(1) == 0.0
        assert crescendo_degree_bound(1, 3) == 0.0
        assert chord_hops_bound(0) == 0.0
        assert crescendo_hops_bound(1) == 0.0

    def test_crescendo_degree_min_clause(self):
        """min(l, log2 n): deep hierarchies stop paying after log2(n)."""
        shallow = crescendo_degree_bound(16, 2)
        deep = crescendo_degree_bound(16, 100)
        assert deep == pytest.approx(math.log2(15) + 4)
        assert shallow < deep

    def test_hops_bounds_ordering(self):
        """Crescendo's proved hop bound is weaker than Chord's (the paper
        notes it is loose; experiments show near-equality)."""
        for n in (64, 1024, 65536):
            assert chord_hops_bound(n) < crescendo_hops_bound(n)

    def test_envelopes_scale_logarithmically(self):
        assert whp_degree_envelope(1024) == pytest.approx(40.0)
        assert whp_hops_envelope(1024) == pytest.approx(30.0)

    def test_expected_intra_hops(self):
        assert expected_intra_hops(8, 8) == pytest.approx(2.0)
        assert expected_intra_hops(0, 1) == 0.0


class TestTheoremsExperiment:
    def test_all_bounds_hold(self):
        from repro.experiments.theorems import measurements

        data = measurements("smoke")
        for (metric, size), (measured, bound) in data.items():
            assert measured <= bound, f"{metric} violated at n={size}"

    def test_table_has_holds_column(self):
        from repro.experiments.theorems import run

        table = run("smoke")
        assert "holds" in table.columns
        assert all(value == "True" for value in table.column("holds"))
