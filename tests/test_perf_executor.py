"""Parallel executor determinism: ``--jobs N`` must change nothing but time.

Every grid point derives its RNG from :func:`seeded_rng` tokens, so a
parallel run must produce byte-identical tables and (after merging worker
snapshots) identical metrics to a serial run.  These tests pin that down at
smoke scale for the figure modules that fan out, plus the merge primitives
(:meth:`MetricsRegistry.absorb`, :meth:`PhaseProfiler.absorb`) and the
serial-fallback rules.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig3_links, fig5_hops, fig6_stretch
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profile import PROFILER
from repro.perf.executor import (
    get_default_jobs,
    map_points,
    resolve_jobs,
    set_default_jobs,
)


@pytest.fixture(autouse=True)
def _reset_default_jobs():
    yield
    set_default_jobs(1)


class TestResolveJobs:
    def test_explicit_wins_over_default(self):
        set_default_jobs(4)
        assert resolve_jobs(2) == 2

    def test_none_uses_default(self):
        set_default_jobs(3)
        assert resolve_jobs() == 3
        assert get_default_jobs() == 3

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        with pytest.raises(ValueError):
            set_default_jobs(-2)


class TestMapPoints:
    def test_serial_and_parallel_results_equal(self):
        points = [(n, n * n) for n in range(6)]
        fn = _square_sum
        assert map_points(fn, points, jobs=2) == [fn(p) for p in points]

    def test_submission_order_preserved(self):
        points = list(range(12))
        assert map_points(_identity, points, jobs=3) == points

    def test_single_point_runs_inline(self):
        # len(points) <= 1 short-circuits to a plain call (no pool).
        assert map_points(_identity, [41], jobs=8) == [41]

    def test_tracer_forces_serial_fallback(self, tmp_path):
        obs_trace.activate(obs_trace.Tracer())
        try:
            assert map_points(_identity, [1, 2, 3], jobs=2) == [1, 2, 3]
        finally:
            obs_trace.deactivate()

    def test_worker_metrics_fold_into_parent(self):
        points = [3, 5, 7]
        with obs_metrics.collecting() as registry:
            map_points(_count_point, points, jobs=2)
            snap = registry.snapshot()
        assert snap.counters["test.points"] == len(points)
        hist = snap.histograms["test.values"]
        assert hist["count"] == len(points)
        assert hist["sum"] == float(sum(points))

    def test_worker_phase_timings_fold_into_parent(self):
        PROFILER.reset()
        try:
            map_points(_timed_point, [1, 2, 3, 4], jobs=2)
            assert PROFILER.calls.get("worker-phase") == 4
            assert PROFILER.totals.get("worker-phase", 0.0) > 0.0
        finally:
            PROFILER.reset()


class TestFigureDeterminism:
    """Parallel figure runs are bit-identical to serial ones."""

    def test_fig3_measurements_identical(self):
        assert fig3_links.measurements("smoke", jobs=2) == fig3_links.measurements(
            "smoke", jobs=1
        )

    def test_fig5_measurements_identical(self):
        assert fig5_hops.measurements("smoke", jobs=2) == fig5_hops.measurements(
            "smoke", jobs=1
        )

    def test_fig6_measurements_identical(self):
        assert fig6_stretch.measurements("smoke", jobs=2) == fig6_stretch.measurements(
            "smoke", jobs=1
        )

    def test_fig5_rendered_table_byte_identical(self):
        serial = fig5_hops.run("smoke", jobs=1).render()
        parallel = fig5_hops.run("smoke", jobs=2).render()
        assert parallel == serial

    def test_fig5_metrics_identical_serial_vs_parallel(self):
        with obs_metrics.collecting() as registry:
            fig5_hops.measurements("smoke", jobs=1)
            serial = registry.snapshot()
        with obs_metrics.collecting() as registry:
            fig5_hops.measurements("smoke", jobs=2)
            parallel = registry.snapshot()
        assert parallel.counters == serial.counters
        assert parallel.histograms == serial.histograms

    def test_default_jobs_applies_when_not_passed(self):
        serial = fig3_links.measurements("smoke")
        set_default_jobs(2)
        assert fig3_links.measurements("smoke") == serial


class TestAbsorb:
    def test_registry_absorb_adds_counters_and_bins(self):
        worker = obs_metrics.MetricsRegistry()
        worker.counter("c").inc(3)
        worker.gauge("g").set(7.5)
        worker.histogram("h").observe_many([1, 2, 300])
        parent = obs_metrics.MetricsRegistry()
        parent.counter("c").inc(2)
        parent.histogram("h").observe(4)
        parent.absorb(worker.snapshot())
        snap = parent.snapshot()
        assert snap.counters["c"] == 5
        assert snap.gauges["g"] == 7.5
        assert snap.histograms["h"]["count"] == 4
        assert snap.histograms["h"]["sum"] == 307.0

    def test_absorb_rejects_mismatched_buckets(self):
        worker = obs_metrics.MetricsRegistry()
        worker.histogram("h", (1, 2, 3)).observe(1)
        parent = obs_metrics.MetricsRegistry()
        parent.histogram("h", (5, 10)).observe(1)
        with pytest.raises(ValueError):
            parent.absorb(worker.snapshot())

    def test_profiler_absorb_folds_totals_and_calls(self):
        PROFILER.reset()
        try:
            PROFILER.absorb({"build": {"seconds": 1.5, "calls": 2}})
            PROFILER.absorb({"build": {"seconds": 0.5, "calls": 1}})
            assert PROFILER.totals["build"] == 2.0
            assert PROFILER.calls["build"] == 3
        finally:
            PROFILER.reset()


# Worker functions must be module-level (picklable for the fork pool).


def _square_sum(point):
    n, sq = point
    return n + sq


def _identity(point):
    return point


def _count_point(point):
    registry = obs_metrics.active_registry()
    registry.counter("test.points").inc()
    registry.histogram("test.values").observe(point)
    return point


def _timed_point(point):
    with PROFILER.phase("worker-phase"):
        return point * 2
