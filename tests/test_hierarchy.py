"""Unit + property tests for the conceptual hierarchy of domains."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hierarchy import (
    ROOT,
    Hierarchy,
    build_uniform_hierarchy,
    format_name,
    hierarchy_from_names,
    is_ancestor,
    lca,
    lca_depth,
    parse_name,
    uniform_tree_paths,
    zipf_weights,
)

LABELS = st.text(alphabet="abc", min_size=1, max_size=2)
PATHS = st.lists(LABELS, min_size=0, max_size=4).map(tuple)


class TestNames:
    def test_parse_simple(self):
        assert parse_name("stanford.cs.db") == ("stanford", "cs", "db")

    def test_parse_empty_is_root(self):
        assert parse_name("") == ROOT

    def test_roundtrip(self):
        assert format_name(parse_name("a.b.c")) == "a.b.c"

    def test_custom_separator(self):
        assert parse_name("a/b", sep="/") == ("a", "b")

    @given(PATHS)
    def test_roundtrip_property(self, path):
        assert parse_name(format_name(path)) == path


class TestLca:
    def test_common_prefix(self):
        assert lca(("a", "b", "c"), ("a", "b", "d")) == ("a", "b")

    def test_disjoint(self):
        assert lca(("a",), ("b",)) == ROOT

    def test_identical(self):
        assert lca(("a", "b"), ("a", "b")) == ("a", "b")

    def test_prefix_case(self):
        assert lca(("a", "b"), ("a",)) == ("a",)

    def test_lca_depth(self):
        assert lca_depth(("a", "b", "c"), ("a", "b", "d")) == 2

    @given(PATHS, PATHS)
    def test_lca_is_ancestor_of_both(self, a, b):
        shared = lca(a, b)
        assert is_ancestor(shared, a)
        assert is_ancestor(shared, b)

    @given(PATHS, PATHS)
    def test_lca_symmetric(self, a, b):
        assert lca(a, b) == lca(b, a)

    def test_is_ancestor(self):
        assert is_ancestor((), ("a", "b"))
        assert is_ancestor(("a",), ("a", "b"))
        assert not is_ancestor(("a", "b"), ("a",))
        assert not is_ancestor(("b",), ("a", "b"))


class TestHierarchy:
    def test_place_and_lookup(self):
        h = Hierarchy()
        h.place(1, ("a", "x"))
        assert h.path_of(1) == ("a", "x")
        assert 1 in h
        assert len(h) == 1

    def test_duplicate_placement_rejected(self):
        h = Hierarchy()
        h.place(1, ("a",))
        with pytest.raises(ValueError):
            h.place(1, ("b",))

    def test_members_at_each_level(self):
        h = Hierarchy()
        h.place(1, ("a", "x"))
        h.place(2, ("a", "y"))
        h.place(3, ("b", "x"))
        assert sorted(h.members(ROOT)) == [1, 2, 3]
        assert sorted(h.members(("a",))) == [1, 2]
        assert h.members(("a", "x")) == [1]
        assert h.members(("b",)) == [3]

    def test_sorted_members_cached_and_correct(self):
        h = Hierarchy()
        for i in (5, 3, 9):
            h.place(i, ("a",))
        assert h.sorted_members(("a",)) == [3, 5, 9]
        h.place(1, ("a",))
        assert h.sorted_members(("a",)) == [1, 3, 5, 9], "cache must invalidate"

    def test_remove(self):
        h = Hierarchy()
        h.place(1, ("a", "x"))
        h.place(2, ("a", "x"))
        h.remove(1)
        assert 1 not in h
        assert h.members(("a",)) == [2]
        assert h.members(ROOT) == [2]

    def test_ancestor_chain_leaf_first(self):
        h = Hierarchy()
        h.place(1, ("a", "x"))
        assert h.ancestor_chain(1) == [("a", "x"), ("a",), ROOT]

    def test_lca_of_nodes(self):
        h = Hierarchy()
        h.place(1, ("a", "x"))
        h.place(2, ("a", "y"))
        h.place(3, ("b", "x"))
        assert h.lca_of_nodes(1, 2) == ("a",)
        assert h.lca_of_nodes(1, 3) == ROOT
        assert h.common_domain_depth(1, 2) == 1

    def test_max_depth(self):
        h = Hierarchy()
        h.place(1, ("a",))
        h.place(2, ("b", "x", "p"))
        assert h.max_depth == 3

    def test_leaf_domains(self):
        h = Hierarchy()
        h.place(1, ("a", "x"))
        h.place(2, ("b",))
        leaves = {d.path for d in h.leaf_domains()}
        assert leaves == {("a", "x"), ("b",)}

    def test_domain_tree_structure(self):
        h = Hierarchy()
        h.add_domain(("a", "x"))
        dom = h.domain(("a",))
        assert dom.label == "a"
        assert dom.depth == 1
        assert not dom.is_leaf
        assert dom.child("x").is_leaf

    def test_has_domain(self):
        h = Hierarchy()
        h.add_domain(("a", "x"))
        assert h.has_domain(("a",))
        assert not h.has_domain(("zz",))

    def test_nodes_in_same_domain(self):
        h = Hierarchy()
        h.place(1, ("a", "x"))
        h.place(2, ("a", "y"))
        assert sorted(h.nodes_in_same_domain(1, 1)) == [1, 2]
        assert h.nodes_in_same_domain(1, 2) == [1]


class TestZipf:
    def test_weights_normalised(self):
        weights = zipf_weights(10)
        assert abs(sum(weights) - 1.0) < 1e-9

    def test_weights_decreasing(self):
        weights = zipf_weights(10, 1.25)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_first_over_second_ratio(self):
        weights = zipf_weights(10, 1.25)
        assert abs(weights[0] / weights[1] - 2**1.25) < 1e-9


class TestBuilders:
    def test_uniform_tree_paths_count(self):
        assert len(uniform_tree_paths(3, 2)) == 9

    def test_uniform_tree_paths_bad_args(self):
        with pytest.raises(ValueError):
            uniform_tree_paths(0, 1)

    def test_one_level_is_flat(self):
        h = build_uniform_hierarchy(range(10), 4, 1, random.Random(0))
        assert all(h.path_of(i) == ROOT for i in range(10))
        assert h.max_depth == 0

    def test_levels_give_depth(self):
        h = build_uniform_hierarchy(range(100), 3, 4, random.Random(0))
        assert all(len(h.path_of(i)) == 3 for i in range(100))

    def test_zipf_skews_branch_sizes(self):
        h = build_uniform_hierarchy(range(4000), 10, 2, random.Random(1), "zipf")
        sizes = sorted(
            (h.member_count((str(k),)) for k in range(10)), reverse=True
        )
        assert sizes[0] > 2.0 * sizes[5], "Zipf(1.25) should skew branches"

    def test_uniform_distribution_even(self):
        h = build_uniform_hierarchy(range(4000), 10, 2, random.Random(1), "uniform")
        sizes = [h.member_count((str(k),)) for k in range(10)]
        assert max(sizes) < 2 * min(sizes)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            build_uniform_hierarchy(range(5), 2, 2, random.Random(0), "pareto")

    def test_hierarchy_from_names(self):
        h = hierarchy_from_names({7: "stanford.cs.db", 8: "stanford.ee"})
        assert h.path_of(7) == ("stanford", "cs", "db")
        assert h.lca_of_nodes(7, 8) == ("stanford",)

    def test_total_placement(self):
        h = build_uniform_hierarchy(range(500), 10, 3, random.Random(2))
        assert len(h) == 500
        assert sorted(h.members(ROOT)) == list(range(500))
