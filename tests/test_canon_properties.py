"""Cross-construction Canon properties, property-tested.

The paradigm's promises must hold for *every* Canonical construction, on
*random* hierarchies: total routing, intra-domain path locality, and the
flat-equivalent degree budget.  Hypothesis draws the hierarchy shape, the
population, and the seed.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route, route_ring, route_xor
from repro.dhts.cacophony import CacophonyNetwork
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.ndchord import NDCrescendoNetwork

RING_BUILDERS = {
    "crescendo": lambda s, h, r: CrescendoNetwork(s, h, use_numpy=False),
    "cacophony": lambda s, h, r: CacophonyNetwork(s, h, r),
    "nd-crescendo": lambda s, h, r: NDCrescendoNetwork(s, h, r),
}

XOR_BUILDERS = {
    "kandy": lambda s, h, r: KandyNetwork(s, h, r),
}

ALL_BUILDERS = {**RING_BUILDERS, **XOR_BUILDERS}


def build(name, seed, size, fanout, levels):
    rng = random.Random(seed)
    space = IdSpace(16)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, fanout, levels, rng)
    return ALL_BUILDERS[name](space, hierarchy, rng).build()


hier_params = st.tuples(
    st.integers(0, 5000),        # seed
    st.integers(20, 120),        # size
    st.integers(2, 5),           # fanout
    st.integers(1, 4),           # levels
)


@pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
@settings(max_examples=15, deadline=None)
@given(params=hier_params)
def test_routing_total(name, params):
    """Every pair of nodes is mutually reachable by greedy routing."""
    seed, size, fanout, levels = params
    net = build(name, seed, size, fanout, levels)
    rng = random.Random(seed + 1)
    router = route_ring if name in RING_BUILDERS else route_xor
    for _ in range(10):
        a, b = rng.choice(net.node_ids), rng.choice(net.node_ids)
        result = router(net, a, b)
        assert result.success and result.terminal == b


@pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
@settings(max_examples=15, deadline=None)
@given(params=hier_params)
def test_intra_domain_locality(name, params):
    """Routes never leave the endpoints' lowest common domain."""
    seed, size, fanout, levels = params
    net = build(name, seed, size, fanout, levels)
    rng = random.Random(seed + 2)
    router = route_ring if name in RING_BUILDERS else route_xor
    hierarchy = net.hierarchy
    for _ in range(10):
        a, b = rng.choice(net.node_ids), rng.choice(net.node_ids)
        shared = hierarchy.lca_of_nodes(a, b)
        result = router(net, a, b)
        assert all(
            hierarchy.path_of(n)[: len(shared)] == shared for n in result.path
        )


@pytest.mark.parametrize("name", sorted(ALL_BUILDERS))
@settings(max_examples=10, deadline=None)
@given(params=hier_params)
def test_degree_budget(name, params):
    """Average degree stays within the flat ~log2(n) budget (+ slack for
    level successors in the randomized constructions)."""
    import math

    seed, size, fanout, levels = params
    net = build(name, seed, size, fanout, levels)
    budget = math.log2(max(2, net.size - 1)) + levels + 2
    assert net.average_degree() <= budget


@settings(max_examples=10, deadline=None)
@given(params=hier_params)
def test_crescendo_convergence_property(params):
    """Inter-domain paths from one domain to one key share their exit node."""
    seed, size, fanout, levels = params
    if levels == 1:
        levels = 2
    net = build("crescendo", seed, size, fanout, levels)
    rng = random.Random(seed + 3)
    hierarchy = net.hierarchy
    for _ in range(5):
        src = rng.choice(net.node_ids)
        domain = hierarchy.path_of(src)[:1]
        key = net.space.random_id(rng)
        owner = net.responsible_node(key)
        if hierarchy.path_of(owner)[:1] == domain:
            continue
        expected = net.exit_node(domain, key)
        path = route_ring(net, src, key).path
        inside = [n for n in path if hierarchy.path_of(n)[:1] == domain]
        assert inside[-1] == expected
