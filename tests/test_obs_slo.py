"""Quantile machinery and the SLO report layer.

The quantile estimators in ``repro.obs.quantiles`` back the latency SLO
numbers, so they are property-tested against numpy's reference linear
interpolation; the ``SLOReport`` half checks the name-parsing, the table
maths (availability, stretch) and the ``python -m repro.obs report`` CLI.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.quantiles import (
    DEFAULT_RESERVOIR_CAP,
    P2Quantile,
    ReservoirSample,
    bucket_quantile,
    percentile,
)
from repro.obs.slo import SLOReport, _split_level

# ----------------------------------------------------------------- percentile

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)
q_strategy = st.floats(min_value=0.0, max_value=1.0)


@settings(max_examples=100, deadline=None)
@given(values_strategy, q_strategy)
def test_percentile_matches_numpy(values, q):
    ordered = sorted(values)
    ours = percentile(ordered, q)
    ref = float(np.percentile(ordered, q * 100.0, method="linear"))
    assert ours == pytest.approx(ref, rel=1e-9, abs=1e-9)


def test_percentile_edges():
    assert percentile([5.0], 0.0) == 5.0
    assert percentile([5.0], 1.0) == 5.0
    assert percentile([1.0, 3.0], 0.5) == 2.0


# ------------------------------------------------------------ ReservoirSample


def test_reservoir_exact_below_capacity():
    sample = ReservoirSample("t", cap=64)
    data = [float(i) for i in range(50)]
    sample.observe_many(data)
    assert sorted(sample.values) == data
    assert sample.quantile(0.5) == float(np.percentile(data, 50))


def test_reservoir_is_deterministic_per_name():
    rng = random.Random(0)
    data = [rng.uniform(0, 100) for _ in range(5000)]
    a = ReservoirSample("same", cap=256)
    b = ReservoirSample("same", cap=256)
    a.observe_many(data)
    for v in data:
        b.observe(v)
    assert a.values == b.values  # same name+cap => same replacement choices
    c = ReservoirSample("different", cap=256)
    c.observe_many(data)
    assert c.values != a.values


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000_000))
def test_reservoir_quantiles_converge(seed):
    """Over capacity, reservoir quantiles stay near the exact ones."""
    rng = random.Random(seed)
    data = [rng.gauss(100.0, 15.0) for _ in range(4 * DEFAULT_RESERVOIR_CAP)]
    sample = ReservoirSample(f"conv-{seed}")
    sample.observe_many(data)
    assert sample.seen == len(data)
    assert len(sample.values) == DEFAULT_RESERVOIR_CAP
    for q in (0.5, 0.95):
        exact = float(np.percentile(data, q * 100))
        assert sample.quantile(q) == pytest.approx(exact, abs=5.0)


# ----------------------------------------------------------------- P2Quantile


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000_000))
def test_p2_tracks_the_median(seed):
    rng = random.Random(seed)
    data = [rng.uniform(0.0, 1000.0) for _ in range(3000)]
    est = P2Quantile(0.5)
    for v in data:
        est.observe(v)
    exact = float(np.percentile(data, 50))
    assert est.value == pytest.approx(exact, rel=0.1, abs=20.0)


def test_p2_small_streams_are_exact():
    est = P2Quantile(0.5)
    for v in (3.0, 1.0, 2.0):
        est.observe(v)
    assert est.value == 2.0  # below 5 observations: exact order statistic


# ------------------------------------------------- Histogram + snapshot wiring


def test_histogram_quantile_uses_reservoir():
    registry = MetricsRegistry()
    hist = registry.histogram("slo.lookup_ms.t")
    data = [float(v) for v in range(1, 101)]
    hist.observe_many(data)
    assert hist.quantile(0.5) == float(np.percentile(data, 50))
    p50, p99 = hist.quantiles((0.5, 0.99))
    assert p50 == float(np.percentile(data, 50))
    assert p99 == float(np.percentile(data, 99))


def test_snapshot_quantile_roundtrips_through_json():
    registry = MetricsRegistry()
    data = [float(v) for v in range(200)]
    registry.histogram("slo.lookup_ms.t").observe_many(data)
    snap = registry.snapshot()
    back = MetricsSnapshot.from_json(snap.to_json())
    assert back.quantile("slo.lookup_ms.t", 0.95) == snap.quantile(
        "slo.lookup_ms.t", 0.95
    )
    with pytest.raises(KeyError):
        snap.quantile("no.such.histogram", 0.5)


def test_snapshot_quantile_falls_back_to_buckets():
    registry = MetricsRegistry()
    registry.histogram("h").observe_many([10.0] * 50)
    snap = registry.snapshot()
    data = dict(snap.data)
    data["samples"] = {}  # as if the reservoir had been stripped
    stripped = MetricsSnapshot(data)
    bucketed = stripped.quantile("h", 0.5)
    hist = snap.histograms["h"]
    assert bucketed == bucket_quantile(hist["buckets"], hist["counts"], 0.5)


# ---------------------------------------------------------------- SLO report


def test_split_level():
    assert _split_level("chord") == ("chord", "all")
    assert _split_level("chord.L2") == ("chord", "L2")
    assert _split_level("churn.heavy.L10") == ("churn.heavy", "L10")
    assert _split_level("weird.Lx") == ("weird.Lx", "all")


def _recorded_registry():
    registry = MetricsRegistry()
    lookups = [100.0, 200.0, 300.0, 400.0]
    registry.histogram("slo.lookup_ms.fam").observe_many(lookups)
    registry.histogram("slo.lookup_ms.fam.L0").observe_many(lookups[:2])
    registry.histogram("slo.lookup_ms.fam.L1").observe_many(lookups[2:])
    registry.histogram("slo.direct_ms.fam").observe_many([50.0, 100.0, 150.0, 200.0])
    registry.counter("slo.samples.fam").inc(5)  # one lookup failed
    registry.counter("slo.delivered.fam").inc(4)
    return registry


def test_slo_report_from_snapshot():
    report = SLOReport.from_snapshot(_recorded_registry().snapshot())
    assert [(r.family, r.level) for r in report.rows] == [
        ("fam", "L0"),
        ("fam", "L1"),
        ("fam", "all"),
    ]
    row = report.row("fam")
    assert row.samples == 5 and row.delivered == 4
    assert row.availability == pytest.approx(0.8)
    assert row.mean_ms == pytest.approx(250.0)
    assert row.stretch == pytest.approx(2.0)  # mean lookup 250 / mean direct 125
    assert row.p50_ms == float(np.percentile([100, 200, 300, 400], 50))
    level0 = report.row("fam", "L0")
    assert level0.samples == 2 and level0.delivered == 2
    assert report.row("fam", "L7") is None


def test_slo_report_exports():
    report = SLOReport.from_snapshot(_recorded_registry().snapshot())
    doc = report.to_json()
    assert '"rows"' in doc and '"fam"' in doc
    csv = report.to_csv().splitlines()
    assert csv[0].startswith("family,level,samples")
    assert len(csv) == 1 + len(report)
    text = report.render()
    assert "fam" in text and "p99 ms" in text
    assert SLOReport([]).render() == "no slo.* instruments found in this snapshot"


def test_slo_report_markdown():
    report = SLOReport.from_snapshot(_recorded_registry().snapshot())
    md = report.to_markdown(title="Nightly SLO").splitlines()
    assert md[0] == "**Nightly SLO**"
    header = md[2]
    assert header.startswith("| family |")
    assert "p99 ms" in header
    assert md[3].startswith("|---")
    assert sum(1 for line in md if line.startswith("| fam |")) == 3
    assert "no slo.* instruments" in SLOReport([]).to_markdown()


def test_report_cli(tmp_path, capsys):
    from repro.obs.__main__ import main

    snapshot_path = tmp_path / "m.json"
    snapshot_path.write_text(_recorded_registry().snapshot().to_json())
    json_out = tmp_path / "slo.json"
    csv_out = tmp_path / "slo.csv"
    md_out = tmp_path / "slo.md"
    code = main(
        [
            "report",
            str(snapshot_path),
            "--json",
            str(json_out),
            "--csv",
            str(csv_out),
            "--markdown",
            str(md_out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "fam" in printed
    report = SLOReport.from_json_file(str(snapshot_path))
    assert json_out.read_text().strip().startswith("{")
    assert csv_out.read_text().splitlines()[0].startswith("family,")
    assert md_out.read_text().startswith("**SLO report**")
    assert len(report) == 3


def test_sample_routing_records_slo():
    """End to end: sample_routing(slo_label=...) feeds the report."""
    import random as _random

    from repro.analysis.metrics import sample_routing
    from repro.core.idspace import IdSpace
    from repro.dhts.crescendo import CrescendoNetwork
    from repro.topology.transit_stub import TopologyParams, TransitStubTopology

    rng = _random.Random("slo-e2e")
    topology = TransitStubTopology(TopologyParams(2, 2, 2, 4), rng=rng)
    space = IdSpace(32)
    hierarchy = topology.attach_nodes(space.random_ids(48, rng), rng)
    net = CrescendoNetwork(space, hierarchy).build()
    with obs_metrics.collecting() as registry:
        stats = sample_routing(
            net, rng, samples=40, latency_fn=topology.node_latency, slo_label="e2e"
        )
    report = SLOReport.from_snapshot(registry.snapshot())
    row = report.row("e2e")
    assert row is not None
    assert row.samples == 40
    assert row.delivered == stats.delivered
    assert row.mean_ms == pytest.approx(stats.mean_latency)
    assert row.stretch > 1.0  # overlay routing is never faster than direct
    # Per-level rows exist and partition the delivered lookups.
    level_rows = [r for r in report.rows if r.family == "e2e" and r.level != "all"]
    assert sum(r.samples for r in level_rows) == row.delivered
