"""Tests for hierarchical storage, retrieval and access control (§4.1)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.crescendo import CrescendoNetwork
from repro.storage.store import HierarchicalStore


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(600, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 3, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    return net, HierarchicalStore(net), rng


def domain_members(net, domain):
    return net.hierarchy.members(domain)


class TestPut:
    def test_global_put(self, env):
        net, store, rng = env
        origin = net.node_ids[0]
        home, pointer = store.put(origin, "k-global", "v")
        assert pointer is None
        assert home == net.responsible_node(net.space.hash_key("k-global"))

    def test_home_is_domain_responsible(self, env):
        net, store, rng = env
        origin = net.node_ids[1]
        domain = net.hierarchy.path_of(origin)[:2]
        home, _ = store.put(origin, "k-local", "v", storage_domain=domain)
        key_hash = net.space.hash_key("k-local")
        members = net.hierarchy.sorted_members(domain)
        assert home == net.responsible_node(key_hash, within=members)
        assert net.hierarchy.path_of(home)[:2] == domain

    def test_pointer_created_for_wider_access(self, env):
        net, store, rng = env
        origin = net.node_ids[2]
        path = net.hierarchy.path_of(origin)
        home, pointer = store.put(
            origin, "k-ptr", "v", storage_domain=path[:2], access_domain=path[:1]
        )
        assert pointer is not None or home == store.home_node(
            net.space.hash_key("k-ptr"), path[:1]
        )

    def test_storage_domain_must_contain_origin(self, env):
        net, store, rng = env
        origin = net.node_ids[3]
        foreign = next(
            net.hierarchy.path_of(n)
            for n in net.node_ids
            if net.hierarchy.path_of(n)[:1] != net.hierarchy.path_of(origin)[:1]
        )
        with pytest.raises(ValueError):
            store.put(origin, "k", "v", storage_domain=foreign)

    def test_access_must_contain_storage(self, env):
        net, store, rng = env
        origin = net.node_ids[4]
        path = net.hierarchy.path_of(origin)
        with pytest.raises(ValueError):
            store.put(
                origin, "k", "v", storage_domain=path[:1], access_domain=path[:2]
            )

    def test_items_at(self, env):
        net, store, rng = env
        origin = net.node_ids[5]
        home, _ = store.put(origin, "k-at", "payload")
        assert any(item.value == "payload" for item in store.items_at(home))


class TestGet:
    def test_global_content_found_from_anywhere(self, env):
        net, store, rng = env
        origin = net.node_ids[6]
        store.put(origin, "pub", "public-value")
        for src in rng.sample(net.node_ids, 20):
            result = store.get(src, "pub")
            assert result.found
            assert result.values == ["public-value"]

    def test_local_query_never_leaves_domain(self, env):
        """Paper: a query for locally stored content never leaves the domain."""
        net, store, rng = env
        origin = net.node_ids[7]
        domain = net.hierarchy.path_of(origin)[:2]
        store.put(origin, "loc", "local-value", storage_domain=domain)
        for src in rng.sample(domain_members(net, domain), 5):
            result = store.get(src, "loc")
            assert result.found
            for hop in result.path:
                assert net.hierarchy.path_of(hop)[:2] == domain

    def test_access_control_blocks_outsiders(self, env):
        net, store, rng = env
        origin = net.node_ids[8]
        path = net.hierarchy.path_of(origin)
        store.put(
            origin, "secret", "classified", storage_domain=path[:2],
            access_domain=path[:1],
        )
        outsider = next(
            n
            for n in net.node_ids
            if net.hierarchy.path_of(n)[:1] != path[:1]
        )
        assert not store.get(outsider, "secret").found

    def test_access_domain_members_can_read(self, env):
        net, store, rng = env
        origin = net.node_ids[9]
        path = net.hierarchy.path_of(origin)
        store.put(
            origin, "dept-doc", "body", storage_domain=path[:2],
            access_domain=path[:1],
        )
        readers = [
            n
            for n in net.node_ids
            if net.hierarchy.path_of(n)[:1] == path[:1]
        ]
        for src in rng.sample(readers, min(10, len(readers))):
            result = store.get(src, "dept-doc")
            assert result.found, f"reader {src} failed"
            assert result.values == ["body"]

    def test_pointer_resolution_counted(self, env):
        net, store, rng = env
        origin = net.node_ids[10]
        path = net.hierarchy.path_of(origin)
        store.put(
            origin, "ptr-doc", "far", storage_domain=path[:2],
            access_domain=(),
        )
        outsider = next(
            n
            for n in net.node_ids
            if net.hierarchy.path_of(n)[:1] != path[:1]
        )
        result = store.get(outsider, "ptr-doc")
        assert result.found
        if result.via_pointer:
            assert result.pointer_hops >= 0

    def test_missing_key(self, env):
        net, store, rng = env
        result = store.get(net.node_ids[11], "no-such-key")
        assert not result.found
        assert result.values == []

    def test_first_match_stops_early(self, env):
        """Local copy shadows a global copy for in-domain queriers."""
        net, store, rng = env
        origin = net.node_ids[12]
        domain = net.hierarchy.path_of(origin)[:1]
        store.put(origin, "dual", "local-copy", storage_domain=domain)
        store.put(origin, "dual", "global-copy")
        result = store.get(origin, "dual", first_match=True)
        assert result.found
        assert len(result.values) == 1

    def test_collect_all_values(self, env):
        net, store, rng = env
        origin = net.node_ids[13]
        domain = net.hierarchy.path_of(origin)[:1]
        store.put(origin, "multi", "a", storage_domain=domain)
        store.put(origin, "multi", "b")
        result = store.get(origin, "multi", first_match=False)
        assert result.found
        assert set(result.values) >= {"a", "b"}

    def test_query_from_home_node(self, env):
        net, store, rng = env
        origin = net.node_ids[14]
        home, _ = store.put(origin, "self-served", "x")
        result = store.get(home, "self-served")
        assert result.found and result.hops == 0


class TestHomeNode:
    def test_empty_domain_raises(self, env):
        net, store, rng = env
        with pytest.raises(ValueError):
            store.home_node(0, ("missing",))
