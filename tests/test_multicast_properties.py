"""Property tests for the multicast service's structural invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.crescendo import CrescendoNetwork
from repro.multicast import MulticastService


def build_net(seed, size=150):
    rng = random.Random(seed)
    space = IdSpace(16)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 2, rng)
    return CrescendoNetwork(space, hierarchy).build(), rng


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), sub_count=st.integers(1, 40))
def test_publish_reaches_exactly_subscribers(seed, sub_count):
    """Delivery set == subscriber set, for any membership."""
    net, rng = build_net(seed)
    service = MulticastService(net)
    service.create_topic("t")
    subscribers = set(rng.sample(net.node_ids, sub_count))
    for node in subscribers:
        service.subscribe(node, "t")
    report = service.publish("t")
    assert report.delivered == subscribers


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), sub_count=st.integers(2, 30))
def test_tree_is_acyclic_and_rooted(seed, sub_count):
    """Every tree node is reachable from the root exactly once (it's a tree)."""
    net, rng = build_net(seed)
    service = MulticastService(net)
    topic = service.create_topic("t")
    for node in rng.sample(net.node_ids, sub_count):
        service.subscribe(node, "t")
    edges = service.tree_edges("t")
    children_of = {}
    for parent, child in edges:
        children_of.setdefault(parent, set()).add(child)
    seen = set()
    stack = [topic.root]
    while stack:
        node = stack.pop()
        for child in children_of.get(node, ()):
            assert child not in seen, "cycle or multiple parents"
            seen.add(child)
            stack.append(child)
    tree_nodes = {n for e in edges for n in e}
    assert tree_nodes <= seen | {topic.root}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_unsubscribe_all_empties_tree(seed):
    net, rng = build_net(seed)
    service = MulticastService(net)
    service.create_topic("t")
    subs = rng.sample(net.node_ids, 12)
    for node in subs:
        service.subscribe(node, "t")
    for node in subs:
        service.unsubscribe(node, "t")
    assert service.tree_edges("t") == set()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), sub_count=st.integers(2, 25))
def test_tree_edges_subset_of_reversed_query_paths(seed, sub_count):
    """Grafting only ever reverses edges that some query path used."""
    from repro.core.routing import route_ring

    net, rng = build_net(seed)
    service = MulticastService(net)
    topic = service.create_topic("t")
    allowed = set()
    for node in rng.sample(net.node_ids, sub_count):
        route = service.subscribe(node, "t")
        allowed.update((b, a) for a, b in route.edges())
    assert service.tree_edges("t") <= allowed
