"""Tracing must never change routing decisions.

Property tests over every DHT family and every routing engine: the path a
traced route takes is bit-identical to the untraced route, and the
aggregate statistics of `sample_routing` are unchanged when a tracer and a
metrics registry are active.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.analysis.metrics import sample_routing
from repro.core.routing import route, route_ring, route_ring_lookahead, route_xor
from repro.dhts.cacophony import CacophonyNetwork
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.ndchord import NDCrescendoNetwork
from repro.dhts.symphony import SymphonyNetwork
from repro.obs.metrics import collecting
from repro.obs.trace import Tracer, tracing
from repro.proximity.groups import ProximityChordNetwork, route_grouped

FAMILIES = {
    "chord": (lambda s, h, r: ChordNetwork(s, h), route_ring),
    "crescendo": (lambda s, h, r: CrescendoNetwork(s, h, use_numpy=False), route_ring),
    "cacophony": (lambda s, h, r: CacophonyNetwork(s, h, r), route_ring),
    "nd-crescendo": (lambda s, h, r: NDCrescendoNetwork(s, h, r), route_ring),
    "symphony": (lambda s, h, r: SymphonyNetwork(s, h, r), route_ring_lookahead),
    "kandy": (lambda s, h, r: KandyNetwork(s, h, r), route_xor),
    "chord-prox": (
        lambda s, h, r: ProximityChordNetwork(s, h, lambda a, b: (a ^ b) % 97, r),
        route_grouped,
    ),
}


def build_family(name, seed, size, fanout, levels):
    """A built network of the given family on a random hierarchy."""
    rng = random.Random(seed)
    space = IdSpace(16)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, fanout, levels, rng)
    builder, router = FAMILIES[name]
    return builder(space, hierarchy, rng).build(), router


hier_params = st.tuples(
    st.integers(0, 5000),  # seed
    st.integers(20, 100),  # size
    st.integers(2, 5),     # fanout
    st.integers(1, 3),     # levels
)


@pytest.mark.parametrize("name", sorted(FAMILIES))
@settings(max_examples=10, deadline=None)
@given(params=hier_params)
def test_traced_route_equals_untraced(name, params):
    """Same path, success flag and destination — with and without a tracer."""
    seed, size, fanout, levels = params
    net, router = build_family(name, seed, size, fanout, levels)
    rng = random.Random(seed + 1)
    for _ in range(10):
        src, dst = rng.sample(net.node_ids, 2)
        plain = router(net, src, dst)
        tracer = Tracer()
        traced = router(net, src, dst, tracer=tracer)
        assert traced.path == plain.path
        assert traced.success == plain.success
        assert traced.dest_key == plain.dest_key
        assert len(tracer) == 1
        assert tracer.records[0]["hops"] == plain.hops


@pytest.mark.parametrize("name", ["crescendo", "kandy"])
def test_dispatcher_forwards_tracer(name):
    """`route()` passes the tracer through to the metric-matched engine."""
    net, _ = build_family(name, seed=11, size=60, fanout=3, levels=2)
    rng = random.Random(12)
    src, dst = rng.sample(net.node_ids, 2)
    tracer = Tracer()
    traced = route(net, src, dst, tracer=tracer)
    assert traced.path == route(net, src, dst).path
    assert len(tracer) == 1


def test_sample_routing_stats_invariant_under_observability():
    """Active tracer + registry leave RoutingStats bit-identical."""
    net, router = build_family("crescendo", seed=5, size=80, fanout=4, levels=3)
    pairs = [
        tuple(random.Random(i).sample(net.node_ids, 2)) for i in range(40)
    ]
    plain = sample_routing(net, random.Random(0), router=router, pairs=pairs)
    with tracing() as tracer, collecting() as registry:
        observed = sample_routing(net, random.Random(0), router=router, pairs=pairs)
    assert observed == plain
    assert len(tracer) == len(pairs)
    assert registry.counter("route.samples").value == len(pairs)
    assert registry.histogram("route.hops").count == plain.delivered
