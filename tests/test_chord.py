"""Tests for flat Chord: the finger rule, bulk builder, successor lists."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.chord import (
    ChordNetwork,
    bulk_finger_links,
    finger_links,
    ring_finger_targets,
)

import numpy as np


def brute_force_fingers(node, ids, space):
    """Reference: for each k, the closest node at least 2**k away."""
    links = set()
    for k in range(space.bits):
        step = 1 << k
        candidates = [
            other
            for other in ids
            if other != node and space.ring_distance(node, other) >= step
        ]
        if candidates:
            links.add(min(candidates, key=lambda o: space.ring_distance(node, o)))
    return links


class TestFingerRule:
    def test_targets(self):
        space = IdSpace(4)
        assert ring_finger_targets(3, space) == [4, 5, 7, 11]

    def test_matches_bruteforce_small(self):
        space = IdSpace(8)
        rng = random.Random(0)
        ids = sorted(space.random_ids(20, rng))
        for node in ids:
            assert finger_links(node, ids, space) == brute_force_fingers(
                node, ids, space
            )

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(0, 255), min_size=2, max_size=25))
    def test_matches_bruteforce_property(self, id_set):
        space = IdSpace(8)
        ids = sorted(id_set)
        node = ids[0]
        assert finger_links(node, ids, space) == brute_force_fingers(node, ids, space)

    def test_every_link_at_least_octave_away(self):
        """Condition (a): each link is the successor of node + 2**k."""
        space = IdSpace(8)
        ids = sorted(space.random_ids(30, random.Random(1)))
        for node in ids:
            for link in finger_links(node, ids, space):
                dist = space.ring_distance(node, link)
                k = dist.bit_length() - 1
                # No other node lies in [node + 2**k, link).
                assert not any(
                    (1 << k) <= space.ring_distance(node, o) < dist
                    for o in ids
                    if o != node
                )

    def test_two_nodes(self):
        space = IdSpace(8)
        assert finger_links(10, [10, 200], space) == {200}

    def test_single_node_no_links(self):
        space = IdSpace(8)
        assert finger_links(10, [10], space) == set()

    def test_successor_always_linked(self):
        space = IdSpace(8)
        ids = sorted(space.random_ids(30, random.Random(2)))
        for i, node in enumerate(ids):
            succ = ids[(i + 1) % len(ids)]
            assert succ in finger_links(node, ids, space)


class TestBulkBuilder:
    def test_bulk_matches_scalar(self):
        space = IdSpace(16)
        ids = sorted(space.random_ids(200, random.Random(3)))
        arr = np.array(ids, dtype=np.uint64)
        bulk = bulk_finger_links(arr, space)
        for node in ids:
            assert bulk[node] == finger_links(node, ids, space)

    def test_bulk_single_node(self):
        space = IdSpace(8)
        assert bulk_finger_links(np.array([5], dtype=np.uint64), space) == {5: set()}

    def test_network_paths_agree(self):
        rng = random.Random(4)
        space = IdSpace(32)
        ids = space.random_ids(300, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        numpy_net = ChordNetwork(space, h, use_numpy=True).build()
        py_net = ChordNetwork(space, h, use_numpy=False).build()
        assert numpy_net.links == py_net.links


class TestChordNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        rng = random.Random(5)
        space = IdSpace(32)
        ids = space.random_ids(1000, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        return ChordNetwork(space, h).build()

    def test_degree_near_log_n(self, net):
        assert abs(net.average_degree() - math.log2(net.size)) < 1.5

    def test_theorem1_degree_bound(self, net):
        """Theorem 1: E[degree] <= log2(n-1) + 1."""
        assert net.average_degree() <= math.log2(net.size - 1) + 1

    def test_links_valid(self, net):
        net.check_links_valid()

    def test_successor_list(self, net):
        ids = net.node_ids
        sl = net.successor_list(ids[0], length=4)
        assert sl == ids[1:5]
        assert len(sl) == 4

    def test_successor_list_wraps(self, net):
        ids = net.node_ids
        sl = net.successor_list(ids[-1], length=3)
        assert sl == ids[0:3]

    def test_successor_list_short_ring(self):
        space = IdSpace(8)
        h = build_uniform_hierarchy([10, 20], 2, 1, random.Random(0))
        net = ChordNetwork(space, h, use_numpy=False).build()
        assert net.successor_list(10, length=5) == [20]
