"""Batch kernels vs scalar engines: hop-for-hop path identity.

The batch kernels of :mod:`repro.perf.kernels` claim to replicate every
branch of the scalar greedy engines exactly.  These property tests verify
it route-by-route — full path, success flag, terminal and hop count — for
all five flat and all five Canonical DHT families, over multiple seeds,
node-id *and* arbitrary-key destinations, with and without alive filters.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import LiveSet, route_ring, route_xor
from repro.dhts.cacophony import CacophonyNetwork
from repro.dhts.can import build_can
from repro.dhts.cancan import build_cancan
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.kademlia import KademliaNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.ndchord import NDChordNetwork, NDCrescendoNetwork
from repro.dhts.symphony import SymphonyNetwork
from repro.perf.kernels import (
    batch_route,
    batch_route_ring,
    compile_network,
)

SIZE = 220
BITS = 16


def _hierarchy(space, rng, levels=3):
    ids = space.random_ids(SIZE, rng)
    return build_uniform_hierarchy(ids, 4, levels, rng)


def _cancan_paths(rng):
    return [
        tuple(str(rng.randrange(4)) for _ in range(2)) for _ in range(SIZE)
    ]


FAMILIES = {
    "chord": lambda s, h, r: ChordNetwork(s, h).build(),
    "crescendo": lambda s, h, r: CrescendoNetwork(s, h).build(),
    "symphony": lambda s, h, r: SymphonyNetwork(s, h, r).build(),
    "cacophony": lambda s, h, r: CacophonyNetwork(s, h, r).build(),
    "ndchord": lambda s, h, r: NDChordNetwork(s, h, r).build(),
    "ndcrescendo": lambda s, h, r: NDCrescendoNetwork(s, h, r).build(),
    "kademlia": lambda s, h, r: KademliaNetwork(s, h, r).build(),
    "kandy": lambda s, h, r: KandyNetwork(s, h, r).build(),
    "can": lambda s, h, r: build_can(s, SIZE, r),
    "cancan": lambda s, h, r: build_cancan(s, SIZE, r, _cancan_paths(r)),
}


def build_family(name, seed):
    rng = random.Random(f"perf-kernels:{name}:{seed}")
    space = IdSpace(BITS)
    hierarchy = _hierarchy(space, rng)
    return FAMILIES[name](space, hierarchy, rng), rng


def workload(network, rng, count=120):
    """Node-to-node pairs plus lookups of arbitrary (non-node) keys."""
    ids = network.node_ids
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(count)]
    pairs += [
        (rng.choice(ids), rng.randrange(network.space.size))
        for _ in range(count // 2)
    ]
    pairs.append((ids[0], ids[0]))  # src == dest
    return pairs


def scalar_router(network):
    return route_ring if network.metric == "ring" else route_xor


def assert_identical(network, pairs, alive=None):
    router = scalar_router(network)
    result = batch_route(network, pairs, alive=alive, paths=True)
    for i, (src, dst) in enumerate(pairs):
        expected = router(network, src, dst, alive=alive)
        assert result.paths[i] == expected.path, (i, src, dst)
        assert bool(result.success[i]) == expected.success, (i, src, dst)
        assert int(result.hops[i]) == expected.hops
        assert int(result.terminals[i]) == expected.terminal


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
class TestPathIdentity:
    def test_all_routes_identical(self, family, seed):
        network, rng = build_family(family, seed)
        assert_identical(network, workload(network, rng))

    def test_identical_under_alive_filter(self, family, seed):
        network, rng = build_family(family, seed)
        pairs = workload(network, rng, count=80)
        survivors = LiveSet(rng.sample(network.node_ids, (3 * SIZE) // 4))
        assert_identical(network, pairs, alive=survivors)

    def test_identical_under_plain_set_filter(self, family, seed):
        network, rng = build_family(family, seed)
        pairs = workload(network, rng, count=40)
        survivors = set(rng.sample(network.node_ids, SIZE // 2))
        assert_identical(network, pairs, alive=survivors)


class TestAliveEdgeCases:
    def test_empty_alive_set_never_delivers(self):
        network, rng = build_family("crescendo", 0)
        pairs = workload(network, rng, count=20)
        assert_identical(network, pairs, alive=LiveSet())

    def test_sparse_alive_set(self):
        network, rng = build_family("chord", 0)
        pairs = workload(network, rng, count=40)
        assert_identical(
            network, pairs, alive=LiveSet(rng.sample(network.node_ids, 5))
        )


class TestCompiledLayout:
    def test_csr_arrays_mirror_link_table(self):
        network, _ = build_family("crescendo", 0)
        compiled = compile_network(network)
        assert compiled.ids.tolist() == network.node_ids
        for i, node in enumerate(network.node_ids):
            start, end = compiled.indptr[i], compiled.indptr[i + 1]
            assert compiled.neighbors[start:end].tolist() == network.links[node]
        # Augmented keys are globally strictly increasing: one searchsorted
        # performs every node's binary search at once.
        assert np.all(np.diff(compiled.aug) > 0)

    def test_compile_is_memoized_per_network(self):
        network, _ = build_family("chord", 0)
        assert compile_network(network) is compile_network(network)
        fresh = compile_network(network, cached=False)
        assert fresh is not compile_network(network)

    def test_unknown_source_rejected(self):
        network, _ = build_family("chord", 0)
        compiled = compile_network(network)
        missing = next(
            i for i in range(network.space.size) if i not in network._id_set
        )
        with pytest.raises(KeyError):
            compiled.route_ring([missing], [network.node_ids[0]])

    def test_too_wide_id_space_rejected(self):
        rng = random.Random(0)
        space = IdSpace(60)
        ids = space.random_ids(64, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        net = ChordNetwork(space, h).build()
        with pytest.raises(ValueError):
            compile_network(net)

    def test_mismatched_batch_lengths_rejected(self):
        network, _ = build_family("chord", 0)
        compiled = compile_network(network)
        with pytest.raises(ValueError):
            compiled.route_ring(network.node_ids[:3], network.node_ids[:2])


class TestBatchResult:
    def test_routes_requires_paths(self):
        network, rng = build_family("crescendo", 0)
        result = batch_route_ring(network, workload(network, rng, count=10))
        with pytest.raises(ValueError):
            next(result.routes())

    def test_delivered_counts_key_hits(self):
        network, rng = build_family("crescendo", 0)
        pairs = [tuple(rng.sample(network.node_ids, 2)) for _ in range(50)]
        result = batch_route_ring(network, pairs)
        assert result.delivered == 50  # node-id lookups always deliver
        assert result.size == 50

    def test_empty_batch(self):
        network, _ = build_family("chord", 0)
        result = batch_route_ring(network, [])
        assert result.size == 0 and result.delivered == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**20), data=st.data())
def test_property_random_pairs_identical(seed, data):
    """Hypothesis sweep: random Crescendo workloads are path-identical."""
    network, rng = build_family("crescendo", seed % 3)
    n = network.space.size
    pairs = data.draw(
        st.lists(
            st.tuples(st.sampled_from(network.node_ids), st.integers(0, n - 1)),
            min_size=1,
            max_size=25,
        )
    )
    assert_identical(network, pairs)
