"""Empirical validation of the paper's Theorems 1-6.

The theorems are expectations / w.h.p. statements; each test measures the
quantity over deterministic random instances and checks the stated bound.
"""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.analysis.metrics import sample_routing
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork


def chord(size, seed):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 10, 1, rng)
    return ChordNetwork(space, h).build(), rng


def crescendo(size, levels, seed):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 10, levels, rng)
    return CrescendoNetwork(space, h).build(), rng


class TestTheorem1:
    """Chord: E[degree] <= log2(n-1) + 1."""

    @pytest.mark.parametrize("size", [128, 512, 2048])
    def test_bound(self, size):
        net, _ = chord(size, seed=size)
        assert net.average_degree() <= math.log2(size - 1) + 1

    def test_bound_is_reasonably_tight(self):
        net, _ = chord(2048, seed=1)
        assert net.average_degree() >= math.log2(2047) - 1.5


class TestTheorem2:
    """Crescendo: E[degree] <= log2(n-1) + min(l, log2 n)."""

    @pytest.mark.parametrize("levels", [2, 3, 5])
    def test_bound(self, levels):
        size = 1024
        net, _ = crescendo(size, levels, seed=levels)
        bound = math.log2(size - 1) + min(levels, math.log2(size))
        assert net.average_degree() <= bound

    def test_empirically_below_chord(self):
        """The paper's stronger empirical claim."""
        flat, _ = chord(1024, seed=7)
        deep, _ = crescendo(1024, 5, seed=7)
        assert deep.average_degree() <= flat.average_degree()


class TestTheorem3:
    """Crescendo: degree O(log n) w.h.p. regardless of hierarchy."""

    @pytest.mark.parametrize("levels", [1, 3, 5])
    def test_max_degree(self, levels):
        net, _ = crescendo(2048, levels, seed=10 + levels)
        assert net.max_degree() <= 4 * math.log2(net.size)


class TestTheorem4:
    """Chord: E[hops] <= 0.5*log2(n-1) + 0.5."""

    @pytest.mark.parametrize("size", [256, 1024])
    def test_bound(self, size):
        net, rng = chord(size, seed=20 + size)
        stats = sample_routing(net, rng, samples=600)
        assert stats.success_rate == 1.0
        assert stats.mean_hops <= 0.5 * math.log2(size - 1) + 0.5 + 0.25


class TestTheorem5:
    """Crescendo: E[hops] <= log2(n-1) + 1 for any hierarchy; empirically
    within +0.7 of Chord (Section 5.1)."""

    @pytest.mark.parametrize("levels", [2, 4])
    def test_bound(self, levels):
        size = 1024
        net, rng = crescendo(size, levels, seed=30 + levels)
        stats = sample_routing(net, rng, samples=600)
        assert stats.success_rate == 1.0
        assert stats.mean_hops <= math.log2(size - 1) + 1

    def test_within_07_of_chord(self):
        size = 2048
        flat, rng1 = chord(size, seed=40)
        deep, rng2 = crescendo(size, 5, seed=40)
        flat_hops = sample_routing(flat, rng1, samples=800).mean_hops
        deep_hops = sample_routing(deep, rng2, samples=800).mean_hops
        assert deep_hops - flat_hops <= 0.7 + 0.15


class TestTheorem6:
    """Crescendo: routing O(log n) hops w.h.p."""

    def test_tail(self):
        net, rng = crescendo(1024, 4, seed=50)
        hops = []
        for _ in range(500):
            a, b = rng.sample(net.node_ids, 2)
            from repro.core.routing import route_ring

            hops.append(route_ring(net, a, b).hops)
        assert max(hops) <= 3 * math.log2(net.size)
        assert statistics.quantiles(hops, n=100)[98] <= 2 * math.log2(net.size)
