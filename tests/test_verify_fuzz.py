"""The churn fuzzer: determinism, schedule replay, shrinking.

Cheap structural properties run in the default suite; end-to-end fuzz
runs are marked ``fuzz`` (deselected by default, exercised nightly).
"""

from __future__ import annotations

import pytest

from repro.simulation.churn import Event, run_schedule
from repro.verify.fuzz import (
    FuzzConfig,
    bootstrap_network,
    generate_schedule,
    replay,
    run_fuzz,
    schedule_from_json,
    schedule_to_json,
    shrink_schedule,
)


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        config = FuzzConfig(seed=5, events=100)
        assert generate_schedule(config) == generate_schedule(config)

    def test_different_seed_different_schedule(self):
        a = generate_schedule(FuzzConfig(seed=5, events=100))
        b = generate_schedule(FuzzConfig(seed=6, events=100))
        assert a != b

    def test_checkpoints_inserted_and_terminal(self):
        config = FuzzConfig(seed=5, events=100, checkpoints=4)
        events = generate_schedule(config)
        checkpoints = [e for e in events if e.kind == "checkpoint"]
        assert len(checkpoints) >= 4
        assert events[-1].kind == "checkpoint"

    def test_join_ids_are_unique(self):
        events = generate_schedule(FuzzConfig(seed=7, events=400))
        joins = [e.node for e in events if e.kind == "join"]
        assert len(joins) == len(set(joins))

    def test_roundtrips_through_json(self):
        config = FuzzConfig(seed=9, events=50, mutate_family="chord")
        events = generate_schedule(config)
        parsed_config, parsed_events, expect = schedule_from_json(
            schedule_to_json(config, events)
        )
        assert parsed_events == events
        assert parsed_config.seed == config.seed
        assert parsed_config.mutate_family == "chord"
        assert expect is True


class TestRunSchedule:
    def test_replays_are_deterministic(self):
        config = FuzzConfig(seed=13, events=150, families=("chord",))
        schedule = generate_schedule(config)
        a = replay(config, schedule)
        b = replay(config, schedule)
        assert a.replay == b.replay
        assert a.violations == b.violations

    def test_population_floor_is_respected(self):
        config = FuzzConfig(seed=14, events=0, population=8)
        net = bootstrap_network(config)
        # A schedule of nothing but departures cannot empty the network.
        events = [Event("leave", rank=i) for i in range(20)]
        report = run_schedule(net, events, min_population=3)
        assert report.final_population == 3
        assert report.leaves == 5

    def test_duplicate_join_is_skipped(self):
        config = FuzzConfig(seed=15, events=0, population=8)
        net = bootstrap_network(config)
        existing = next(iter(net.nodes))
        path = net.nodes[existing].path
        report = run_schedule(net, [Event("join", node=existing, path=path)])
        assert report.joins == 0
        assert report.skipped_joins == 1


class TestShrinking:
    def test_shrinks_to_single_culprit(self):
        # A synthetic predicate: the failure needs only event #17.
        events = [Event("lookup", rank=i, key=i) for i in range(40)]
        culprit = events[17]
        shrunk, replays = shrink_schedule(
            events, lambda evs: culprit in evs
        )
        assert shrunk == [culprit]
        assert replays > 0

    def test_respects_replay_budget(self):
        events = [Event("lookup", rank=i, key=i) for i in range(64)]
        needed = set(events[::7])  # scattered multi-event failure
        shrunk, replays = shrink_schedule(
            events, lambda evs: needed <= set(evs), max_replays=10
        )
        assert replays <= 10
        assert needed <= set(shrunk)

    def test_shrunk_schedule_still_fails(self):
        config = FuzzConfig(
            seed=16,
            events=60,
            families=("crescendo",),
            mutate_family="crescendo",
            checkpoints=2,
        )
        report = run_fuzz(config, shrink=True)
        assert report.failed
        assert report.shrunk is not None
        assert len(report.shrunk) <= len(report.schedule)
        assert replay(config, report.shrunk).failed


@pytest.mark.fuzz
class TestEndToEnd:
    def test_clean_fuzz_all_families(self):
        config = FuzzConfig(seed=7, events=2000)
        report = run_fuzz(config, shrink=False)
        assert not report.failed, report.violations[:5]
        assert report.replay.checkpoints >= 8

    def test_mutation_fuzz_produces_replayable_counterexample(self):
        config = FuzzConfig(
            seed=11, events=300, mutate_family="kandy", mutate_kind="drop"
        )
        report = run_fuzz(config, shrink=True)
        assert report.failed
        assert report.shrunk is not None
        doc = schedule_to_json(config, report.shrunk)
        parsed_config, parsed_events, expect = schedule_from_json(doc)
        assert expect
        assert replay(parsed_config, parsed_events).failed
