"""The churn fuzzer: determinism, schedule replay, shrinking.

Cheap structural properties run in the default suite; end-to-end fuzz
runs are marked ``fuzz`` (deselected by default, exercised nightly).
"""

from __future__ import annotations

import json

import pytest

from repro.simulation.churn import Event, run_schedule
from repro.verify.fuzz import (
    FuzzConfig,
    bootstrap_network,
    event_from_dict,
    generate_schedule,
    replay,
    run_fuzz,
    schedule_from_json,
    schedule_to_json,
    shrink_schedule,
)


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        config = FuzzConfig(seed=5, events=100)
        assert generate_schedule(config) == generate_schedule(config)

    def test_different_seed_different_schedule(self):
        a = generate_schedule(FuzzConfig(seed=5, events=100))
        b = generate_schedule(FuzzConfig(seed=6, events=100))
        assert a != b

    def test_checkpoints_inserted_and_terminal(self):
        config = FuzzConfig(seed=5, events=100, checkpoints=4)
        events = generate_schedule(config)
        checkpoints = [e for e in events if e.kind == "checkpoint"]
        assert len(checkpoints) >= 4
        assert events[-1].kind == "checkpoint"

    def test_join_ids_are_unique(self):
        events = generate_schedule(FuzzConfig(seed=7, events=400))
        joins = [e.node for e in events if e.kind == "join"]
        assert len(joins) == len(set(joins))

    def test_roundtrips_through_json(self):
        config = FuzzConfig(seed=9, events=50, mutate_family="chord")
        events = generate_schedule(config)
        parsed_config, parsed_events, expect = schedule_from_json(
            schedule_to_json(config, events)
        )
        assert parsed_events == events
        assert parsed_config.seed == config.seed
        assert parsed_config.mutate_family == "chord"
        assert expect is True


class TestScheduleParsing:
    """schedule_from_json must reject malformed fixtures loudly."""

    def _doc(self, **overrides):
        doc = json.loads(
            schedule_to_json(
                FuzzConfig(seed=1, events=0, families=("chord",)),
                [Event("lookup", rank=3, key=7), Event("checkpoint")],
            )
        )
        doc.update(overrides)
        return doc

    def _expect(self, doc, match):
        with pytest.raises(ValueError, match=match):
            schedule_from_json(json.dumps(doc))

    def test_valid_doc_parses(self):
        config, events, expect = schedule_from_json(json.dumps(self._doc()))
        assert [e.kind for e in events] == ["lookup", "checkpoint"]
        assert config.families == ("chord",)
        assert expect is False

    def test_rejects_invalid_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            schedule_from_json("{nope")

    def test_rejects_non_object_document(self):
        with pytest.raises(ValueError, match="expected a JSON object"):
            schedule_from_json("[1, 2]")

    def test_rejects_missing_events(self):
        doc = self._doc()
        del doc["events"]
        self._expect(doc, "missing required key 'events'")

    def test_rejects_non_list_events(self):
        self._expect(self._doc(events={"kind": "lookup"}), "must be a list")

    def test_rejects_unknown_event_kind(self):
        doc = self._doc(events=[{"kind": "frobnicate"}])
        self._expect(doc, "event 0: unknown kind 'frobnicate'")

    def test_rejects_missing_required_field(self):
        doc = self._doc(events=[{"kind": "join", "node": 5}])
        self._expect(doc, r"event 0 \(join\): missing required field\(s\) path")

    def test_rejects_field_from_wrong_kind(self):
        doc = self._doc(events=[{"kind": "stabilize", "key": 9}])
        self._expect(doc, r"event 0 \(stabilize\): unexpected field\(s\) key")

    def test_rejects_ill_typed_rank(self):
        for bad in (True, -1, "3", 2.5):
            doc = self._doc(events=[{"kind": "crash", "rank": bad}])
            self._expect(doc, "rank must be a non-negative integer")

    def test_rejects_ill_typed_path(self):
        doc = self._doc(events=[{"kind": "kill_domain", "path": "a"}])
        self._expect(doc, "path must be a list of domain-name strings")
        doc = self._doc(events=[{"kind": "join", "node": 1, "path": ["a", 2]}])
        self._expect(doc, "path must be a list of domain-name strings")

    def test_reports_offending_event_index(self):
        doc = self._doc(
            events=[{"kind": "stabilize"}, {"kind": "lookup", "rank": 1}]
        )
        self._expect(doc, r"event 1 \(lookup\): missing required field\(s\) key")

    def test_rejects_non_object_event(self):
        with pytest.raises(ValueError, match="event 4: expected an object"):
            event_from_dict("stabilize", 4)

    def test_rejects_unknown_family(self):
        self._expect(self._doc(families=["chord", "plaid"]), "unknown families")
        self._expect(self._doc(families="chord"), "must be a list of names")

    def test_rejects_missing_families(self):
        doc = self._doc()
        del doc["families"]
        self._expect(doc, "missing required key 'families'")

    def test_rejects_unknown_mutate_family_and_kind(self):
        self._expect(self._doc(mutate_family="plaid"), "unknown mutate_family")
        self._expect(self._doc(mutate_kind="scramble"), "unknown mutate_kind")

    def test_rejects_bad_config_numbers(self):
        self._expect(self._doc(population=0), "population must be an integer")
        self._expect(self._doc(population="64"), "population must be an integer")
        self._expect(self._doc(seed=True), "seed must be an integer")
        self._expect(self._doc(bits=128), "bits must be <= 64")
        self._expect(self._doc(data_replicas=0), "data_replicas must be an integer")

    def test_new_event_kinds_roundtrip(self):
        events = [
            Event("partition", path=("a",)),
            Event("kill_domain", path=()),
            Event("heal"),
            Event("heal", path=("a", "x")),
            Event("checkpoint"),
        ]
        config = FuzzConfig(seed=2, events=0, families=("chord",))
        _, parsed, _ = schedule_from_json(schedule_to_json(config, events))
        assert parsed == events


class TestRunSchedule:
    def test_replays_are_deterministic(self):
        config = FuzzConfig(seed=13, events=150, families=("chord",))
        schedule = generate_schedule(config)
        a = replay(config, schedule)
        b = replay(config, schedule)
        assert a.replay == b.replay
        assert a.violations == b.violations

    def test_population_floor_is_respected(self):
        config = FuzzConfig(seed=14, events=0, population=8)
        net = bootstrap_network(config)
        # A schedule of nothing but departures cannot empty the network.
        events = [Event("leave", rank=i) for i in range(20)]
        report = run_schedule(net, events, min_population=3)
        assert report.final_population == 3
        assert report.leaves == 5

    def test_duplicate_join_is_skipped(self):
        config = FuzzConfig(seed=15, events=0, population=8)
        net = bootstrap_network(config)
        existing = next(iter(net.nodes))
        path = net.nodes[existing].path
        report = run_schedule(net, [Event("join", node=existing, path=path)])
        assert report.joins == 0
        assert report.skipped_joins == 1


class TestShrinking:
    def test_shrinks_to_single_culprit(self):
        # A synthetic predicate: the failure needs only event #17.
        events = [Event("lookup", rank=i, key=i) for i in range(40)]
        culprit = events[17]
        shrunk, replays = shrink_schedule(
            events, lambda evs: culprit in evs
        )
        assert shrunk == [culprit]
        assert replays > 0

    def test_respects_replay_budget(self):
        events = [Event("lookup", rank=i, key=i) for i in range(64)]
        needed = set(events[::7])  # scattered multi-event failure
        shrunk, replays = shrink_schedule(
            events, lambda evs: needed <= set(evs), max_replays=10
        )
        assert replays <= 10
        assert needed <= set(shrunk)

    def test_shrunk_schedule_still_fails(self):
        config = FuzzConfig(
            seed=16,
            events=60,
            families=("crescendo",),
            mutate_family="crescendo",
            checkpoints=2,
        )
        report = run_fuzz(config, shrink=True)
        assert report.failed
        assert report.shrunk is not None
        assert len(report.shrunk) <= len(report.schedule)
        assert replay(config, report.shrunk).failed

    def test_shrink_is_idempotent_single_culprit(self):
        events = [Event("lookup", rank=i, key=i) for i in range(40)]
        culprit = events[17]
        predicate = lambda evs: culprit in evs  # noqa: E731
        shrunk, _ = shrink_schedule(events, predicate)
        again, _ = shrink_schedule(shrunk, predicate)
        assert again == shrunk

    def test_shrink_is_idempotent_scattered_failure(self):
        # A monotone multi-event predicate: 1-minimal output means no
        # chunk of any size can be dropped, so a second pass is a no-op.
        events = [Event("lookup", rank=i, key=i) for i in range(48)]
        needed = set(events[::11])
        predicate = lambda evs: needed <= set(evs)  # noqa: E731
        shrunk, _ = shrink_schedule(events, predicate)
        assert set(shrunk) == needed
        again, _ = shrink_schedule(shrunk, predicate)
        assert again == shrunk

    def test_reshrinking_real_counterexample_is_noop(self):
        # Full loop on a real oracle: shrink a mutation counterexample,
        # then shrink the shrunk schedule again — it must come back
        # unchanged and still fail.
        config = FuzzConfig(
            seed=17,
            events=40,
            families=("chord",),
            mutate_family="chord",
            checkpoints=2,
        )
        report = run_fuzz(config, shrink=True)
        assert report.failed and report.shrunk is not None
        predicate = lambda evs: replay(config, evs).failed  # noqa: E731
        again, _ = shrink_schedule(report.shrunk, predicate)
        assert again == report.shrunk
        assert replay(config, again).failed


@pytest.mark.fuzz
class TestEndToEnd:
    def test_clean_fuzz_all_families(self):
        config = FuzzConfig(seed=7, events=2000)
        report = run_fuzz(config, shrink=False)
        assert not report.failed, report.violations[:5]
        assert report.replay.checkpoints >= 8

    def test_mutation_fuzz_produces_replayable_counterexample(self):
        config = FuzzConfig(
            seed=11, events=300, mutate_family="kandy", mutate_kind="drop"
        )
        report = run_fuzz(config, shrink=True)
        assert report.failed
        assert report.shrunk is not None
        doc = schedule_to_json(config, report.shrunk)
        parsed_config, parsed_events, expect = schedule_from_json(doc)
        assert expect
        assert replay(parsed_config, parsed_events).failed
