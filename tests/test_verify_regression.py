"""Replay of a checked-in shrunk fuzzer counterexample, end to end.

The fixture was produced by::

    python -m repro.verify fuzz --seed 11 --events 300 --mutate crescendo \\
        --save tests/fixtures/fuzz_counterexample.json

and shrunk from 309 events to a single checkpoint.  Replaying it must
reproduce the injected crescendo corruption — if the checkers, the
schedule replay or the serialization format regress, this test catches
it without re-running the fuzzer.
"""

from __future__ import annotations

from pathlib import Path

from repro.verify import __main__ as verify_cli
from repro.verify.fuzz import replay, schedule_from_json

FIXTURE = Path(__file__).parent / "fixtures" / "fuzz_counterexample.json"


def test_counterexample_reproduces():
    config, events, expect_violations = schedule_from_json(FIXTURE.read_text())
    assert expect_violations
    assert config.mutate_family == "crescendo"
    report = replay(config, events)
    assert report.failed, "checked-in counterexample no longer reproduces"
    checks = {v.check for v in report.violations}
    # The drop corruption must be caught by crescendo's structural checks.
    assert checks & {"canon-merge", "ring-level-successor"}
    families = {v.family for v in report.violations}
    assert families == {"crescendo"}


def test_cli_replay_exits_zero(capsys):
    code = verify_cli.main(["replay", str(FIXTURE)])
    out = capsys.readouterr().out
    assert code == 0
    assert "expected violations: reproduced" in out
    assert "verify.checks=" in out
