"""Tests for fault isolation (Section 2.2's headline property) and static
resilience under random failures."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork
from repro.simulation.failures import (
    fail_outside_domain,
    fail_random,
    intra_domain_isolation,
    path_stays_inside,
    survival_under_random_failures,
)


@pytest.fixture(scope="module")
def nets():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(600, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 3, rng)
    crescendo = CrescendoNetwork(space, hierarchy).build()
    chord = ChordNetwork(space, hierarchy).build()
    return crescendo, chord


class TestHelpers:
    def test_fail_outside_domain(self, nets):
        crescendo, _ = nets
        domain = crescendo.hierarchy.path_of(crescendo.node_ids[0])[:1]
        alive = fail_outside_domain(crescendo, domain)
        assert alive == set(crescendo.hierarchy.members(domain))

    def test_fail_random_fraction(self, nets):
        crescendo, _ = nets
        alive = fail_random(crescendo, 0.25, random.Random(1))
        assert len(alive) == crescendo.size - int(crescendo.size * 0.25)

    def test_fail_random_validation(self, nets):
        crescendo, _ = nets
        with pytest.raises(ValueError):
            fail_random(crescendo, 1.0, random.Random(0))


class TestFaultIsolation:
    def test_crescendo_fully_isolated(self, nets):
        """Killing every node outside a domain leaves intra-domain routing
        untouched: 100% delivery, identical hop counts."""
        crescendo, _ = nets
        domain = crescendo.hierarchy.path_of(crescendo.node_ids[0])[:1]
        report = intra_domain_isolation(crescendo, domain, random.Random(2))
        assert report.success_rate == 1.0
        assert report.hop_inflation == pytest.approx(1.0)

    def test_crescendo_isolated_at_leaf_level(self, nets):
        crescendo, _ = nets
        domain = crescendo.hierarchy.path_of(crescendo.node_ids[1])[:2]
        report = intra_domain_isolation(crescendo, domain, random.Random(3))
        assert report.success_rate == 1.0

    def test_chord_degrades(self, nets):
        """Flat Chord loses intra-domain queries when outsiders die."""
        crescendo, chord = nets
        domain = chord.hierarchy.path_of(chord.node_ids[0])[:1]
        report = intra_domain_isolation(chord, domain, random.Random(4))
        assert report.success_rate < 1.0

    def test_small_domain_rejected(self, nets):
        crescendo, _ = nets
        with pytest.raises(ValueError):
            intra_domain_isolation(crescendo, ("no-such",), random.Random(0))

    def test_path_stays_inside_all_pairs(self, nets):
        crescendo, chord = nets
        rng = random.Random(5)
        for _ in range(100):
            a, b = rng.sample(crescendo.node_ids, 2)
            assert path_stays_inside(crescendo, a, b)

    def test_chord_paths_leak(self, nets):
        """Flat Chord routes between same-domain nodes regularly leave it."""
        crescendo, chord = nets
        rng = random.Random(6)
        hierarchy = chord.hierarchy
        leaks = 0
        trials = 0
        while trials < 100:
            a = rng.choice(chord.node_ids)
            peers = [
                m
                for m in hierarchy.members(hierarchy.path_of(a)[:1])
                if m != a
            ]
            if not peers:
                continue
            b = rng.choice(peers)
            trials += 1
            leaks += not path_stays_inside(chord, a, b)
        assert leaks > 30


class TestRandomFailures:
    def test_survival_decreases_with_failures(self, nets):
        crescendo, _ = nets
        rates = survival_under_random_failures(
            crescendo, [0.0, 0.2, 0.5], random.Random(7), samples=120
        )
        assert rates[0] == 1.0
        assert rates[0] >= rates[1] >= rates[2]

    def test_moderate_failures_mostly_survive(self, nets):
        crescendo, _ = nets
        (rate,) = survival_under_random_failures(
            crescendo, [0.1], random.Random(8), samples=150
        )
        assert rate > 0.7
