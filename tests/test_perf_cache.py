"""Built-network cache: warm loads must be indistinguishable from cold builds.

A cache hit replaces an expensive ``build()`` with an on-disk payload *and*
fast-forwards the builder RNG, so everything downstream — link tables,
hierarchy placements, later RNG draws, sampled routing statistics — must be
byte-identical between a cold and a warm run.  Corruption, key collisions
and version skew must degrade to misses, never to wrong networks.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.analysis.metrics import sample_routing
from repro.core.routing import route_ring
from repro.experiments import __main__ as cli
from repro.experiments.common import (
    build_crescendo,
    build_topology_setup,
    seeded_rng,
)
from repro.perf import cache as perf_cache
from repro.perf.cache import (
    CACHE_VERSION,
    NetworkCache,
    install_network,
    network_payload,
)


@pytest.fixture
def cache(tmp_path):
    with perf_cache.caching(NetworkCache(tmp_path / "networks")) as active:
        yield active


def _crescendo_run(size=256, levels=3, token=("cache-test",)):
    """One cold-or-warm build plus post-build RNG draws and routing stats."""
    rng = seeded_rng(*token)
    net = build_crescendo(size, levels, rng, cache_token=token)
    draws = [rng.random() for _ in range(5)]
    stats = sample_routing(net, random.Random(99), samples=60, router=route_ring)
    return net, draws, stats


class TestCrescendoRoundTrip:
    def test_warm_load_matches_cold_build_exactly(self, cache):
        cold_net, cold_draws, cold_stats = _crescendo_run()
        assert cache.stats() == {"hits": 0, "misses": 1, "stores": 1}

        warm_net, warm_draws, warm_stats = _crescendo_run()
        assert cache.stats()["hits"] == 1
        assert warm_net.node_ids == cold_net.node_ids
        assert warm_net.links == cold_net.links
        assert warm_net.gap == cold_net.gap
        assert warm_net.level_successors == cold_net.level_successors
        assert warm_draws == cold_draws  # RNG fast-forwarded to post-build state
        assert warm_stats == cold_stats

    def test_hierarchy_placements_replayed_identically(self, cache):
        cold, _, _ = _crescendo_run()
        warm, _, _ = _crescendo_run()
        for node in cold.node_ids:
            assert warm.hierarchy.path_of(node) == cold.hierarchy.path_of(node)

    def test_different_token_is_a_miss(self, cache):
        _crescendo_run(token=("cache-test",))
        _crescendo_run(token=("other-token",))
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 2

    def test_no_active_cache_builds_from_scratch(self):
        assert perf_cache.active_cache() is None
        net, draws, stats = _crescendo_run()
        net2, draws2, stats2 = _crescendo_run()
        assert net2.links == net.links and draws2 == draws and stats2 == stats

    def test_no_token_bypasses_cache(self, cache):
        rng = seeded_rng("untokened")
        build_crescendo(256, 2, rng)
        assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0}


class TestTopologySetupRoundTrip:
    def test_all_four_networks_round_trip(self, cache):
        cold = build_topology_setup(256, "cache-test")
        assert cache.stats() == {"hits": 0, "misses": 1, "stores": 1}
        warm = build_topology_setup(256, "cache-test")
        assert cache.stats()["hits"] == 1
        for attr in ("chord", "crescendo", "chord_prox", "crescendo_prox"):
            assert getattr(warm, attr).links == getattr(cold, attr).links, attr
        assert warm.node_ids == cold.node_ids
        assert warm.direct_latency == cold.direct_latency


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_rebuilds(self, cache):
        cold, _, _ = _crescendo_run()
        (entry,) = list(cache.root.glob("*.pkl"))
        entry.write_bytes(b"not a pickle")
        warm, _, _ = _crescendo_run()
        assert warm.links == cold.links
        assert cache.stats()["misses"] == 2  # corrupt file read as a miss

    def test_key_collision_is_a_miss(self, cache):
        # Same file, different stored key string: must not be served.
        key = ("crescendo-ish", 1, 2)
        cache.put(key, {"anything": 1})
        path = cache.path_for(key)
        entry = pickle.loads(path.read_bytes())
        entry["key"] = "v%d:('some', 'other', 'key')" % CACHE_VERSION
        path.write_bytes(pickle.dumps(entry))
        assert cache.get(key) is None

    def test_version_skew_is_a_miss(self, cache):
        key = ("crescendo-ish", 1, 2)
        path = cache.put(key, {"anything": 1})
        entry = pickle.loads(path.read_bytes())
        entry["version"] = CACHE_VERSION + 1
        path.write_bytes(pickle.dumps(entry))
        assert cache.get(key) is None

    def test_install_rejects_mismatched_node_ids(self, cache):
        net, _, _ = _crescendo_run()
        payload = network_payload(net)
        payload["node_ids"] = payload["node_ids"][:-1]
        fresh = build_crescendo(256, 3, seeded_rng("fresh"))
        with pytest.raises(ValueError):
            install_network(fresh, payload)

    def test_clear_removes_every_entry(self, cache):
        cache.put(("a",), {"x": 1})
        cache.put(("b",), {"x": 2})
        assert cache.clear() == 2
        assert cache.get(("a",)) is None
        assert cache.stats()["stores"] == 2

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert perf_cache.default_cache_dir() == tmp_path / "custom"


class TestCLI:
    def test_cache_dir_and_jobs_flags(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        argv = ["fig4", "--scale", "smoke", "--cache-dir", str(cache_dir), "--jobs", "2"]
        assert cli.main(argv) == 0
        cold = capsys.readouterr().out
        assert list(cache_dir.glob("*.pkl"))  # networks were stored
        assert cli.main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold  # warm (cache-hit) output identical to cold
        assert perf_cache.active_cache() is None  # CLI deactivates on exit

    def test_no_cache_flag_disables_caching(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        argv = [
            "fig4", "--scale", "smoke", "--cache-dir", str(cache_dir), "--no-cache"
        ]
        assert cli.main(argv) == 0
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_negative_jobs_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig4", "--scale", "smoke", "--jobs", "-1"])
        capsys.readouterr()
