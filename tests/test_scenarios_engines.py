"""Scenario semantics across engines: equivalence, controls, floors.

The acceptance bar for the scenario zoo: reference and fast maintenance
engines produce identical lookup outcomes and message counts on every
catalog schedule, the partition negative control demonstrably trips an
invariant oracle (and its repaired twin stays clean), and the correlated
failure events respect the population floor.
"""

from __future__ import annotations

import pytest

from repro.scenarios.catalog import CATALOG
from repro.scenarios.dsl import bootstrap_scenario, compile_scenario
from repro.scenarios.runner import crosscheck_scenario, run_scenario
from repro.simulation.churn import Event, run_schedule
from repro.verify.fuzz import check_protocol_state


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_engines_agree_on_every_scenario(name):
    spec = CATALOG[name]("smoke")
    comparison = crosscheck_scenario(spec, seed=0)
    assert comparison.equivalent, comparison.violations[:5]
    assert comparison.ref_report.lookup_outcomes == (
        comparison.fast_report.lookup_outcomes
    )
    assert dict(comparison.ref.msgs.stats.counts) == dict(
        comparison.fast.msgs.stats.counts
    )


class TestNegativeControl:
    def test_noheal_trips_protocol_oracle_on_both_engines(self):
        spec = CATALOG["partition_noheal"]("smoke")
        for engine in ("reference", "fast"):
            result = run_scenario(
                spec, seed=0, engine=engine, families=(), routing_pairs=0
            )
            assert result.report.partitions == 1
            assert result.report.revived == result.report.suspended > 0
            assert result.residual, engine
            checks = {v.check for v in result.residual}
            assert checks & {"protocol-successor", "leafset-symmetry"}
            assert result.failed and result.ok  # expected to trip

    def test_repaired_twin_is_clean(self):
        spec = CATALOG["partition_rejoin"]("smoke")
        for engine in ("reference", "fast"):
            result = run_scenario(
                spec, seed=0, engine=engine, families=(), routing_pairs=0
            )
            assert result.report.revived == result.report.suspended > 0
            assert not result.violations and not result.residual, engine
            assert result.ok

    def test_disabling_the_repair_is_the_only_difference(self):
        healed = CATALOG["partition_rejoin"]("smoke")
        control = CATALOG["partition_noheal"]("smoke")
        healed_ops = [p.op for p in healed.phases]
        control_ops = [p.op for p in control.phases]
        # The healed twin is the control plus a trailing repair window.
        assert healed_ops == control_ops + ["stabilize", "checkpoint"]
        assert healed.expect_violations is False
        assert control.expect_violations is True


class TestCorrelatedEventSemantics:
    def test_kill_domain_respects_population_floor(self):
        spec = CATALOG["diurnal"]("smoke")
        net = bootstrap_scenario(spec, 0)
        report = run_schedule(net, [Event("kill_domain", path=())])
        assert report.final_population == 3
        assert report.killed == spec.population - 3

    def test_regional_failure_empties_the_domain(self):
        spec = CATALOG["regional_failure"]("smoke")
        events = compile_scenario(spec, 0)
        kill_index = next(
            i for i, e in enumerate(events) if e.kind == "kill_domain"
        )
        net = bootstrap_scenario(spec, 0)
        run_schedule(net, events[: kill_index + 1])
        survivors = [
            n
            for n, node in net.nodes.items()
            if node.alive and node.path[:1] == ("b",)
        ]
        assert survivors == []

    def test_partition_suspends_and_heal_restores_membership(self):
        spec = CATALOG["partition_rejoin"]("smoke")
        events = compile_scenario(spec, 0)
        part_index = next(
            i for i, e in enumerate(events) if e.kind == "partition"
        )
        net = bootstrap_scenario(spec, 0)
        before = set(net.live_view())
        run_schedule(net, events[: part_index + 1])
        dark = set(net.suspended_ids())
        assert dark and all(net.nodes[n].path[:1] == ("c",) for n in dark)
        assert set(net.live_view()) == before - dark
        run_schedule(net, [Event("heal"), Event("checkpoint")])
        assert net.suspended_ids() == []
        assert set(net.live_view()) == before
        assert check_protocol_state(net) == []
