"""Tests for the DHTNetwork base class."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.network import DHTNetwork, edges
from repro.dhts.chord import ChordNetwork


def small_chord(size=50, seed=0, bits=12):
    rng = random.Random(seed)
    space = IdSpace(bits)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 3, 1, rng)
    return ChordNetwork(space, h, use_numpy=False).build()


class TestBase:
    def test_size(self):
        assert small_chord(50).size == 50

    def test_contains(self):
        net = small_chord()
        assert net.node_ids[0] in net
        assert -1 not in net

    def test_neighbors_sorted(self):
        net = small_chord()
        for node in net.node_ids:
            nbrs = net.neighbors(node)
            assert nbrs == sorted(nbrs)

    def test_degree_consistency(self):
        net = small_chord()
        assert net.degrees() == [net.degree(i) for i in net.node_ids]
        assert net.max_degree() == max(net.degrees())

    def test_average_degree(self):
        net = small_chord()
        assert abs(net.average_degree() - sum(net.degrees()) / net.size) < 1e-12

    def test_degree_distribution_sums_to_one(self):
        net = small_chord()
        assert abs(sum(net.degree_distribution().values()) - 1.0) < 1e-9

    def test_check_links_valid(self):
        net = small_chord()
        net.check_links_valid()

    def test_check_links_detects_self_link(self):
        net = small_chord()
        node = net.node_ids[0]
        net.links[node] = net.links[node] + [node]
        with pytest.raises(AssertionError):
            net.check_links_valid()

    def test_check_links_detects_unknown_target(self):
        net = small_chord()
        node = net.node_ids[0]
        net.links[node] = net.links[node] + [net.space.size - 1 - max(net.node_ids) % 2]
        if net.links[node][-1] in net:
            pytest.skip("unlucky collision")
        with pytest.raises(AssertionError):
            net.check_links_valid()

    def test_require_built(self):
        rng = random.Random(1)
        space = IdSpace(12)
        ids = space.random_ids(10, rng)
        h = build_uniform_hierarchy(ids, 2, 1, rng)
        net = ChordNetwork(space, h)
        with pytest.raises(RuntimeError):
            net.require_built()

    def test_build_base_not_implemented(self):
        rng = random.Random(2)
        space = IdSpace(12)
        ids = space.random_ids(5, rng)
        h = build_uniform_hierarchy(ids, 2, 1, rng)
        with pytest.raises(NotImplementedError):
            DHTNetwork(space, h).build()

    def test_duplicate_ids_rejected(self):
        space = IdSpace(12)
        h = build_uniform_hierarchy([1, 2, 3], 2, 1, random.Random(0))
        # Hierarchy enforces unique ids at placement; simulate corruption.
        h._members[()].append(1)
        with pytest.raises(ValueError):
            ChordNetwork(space, h)

    def test_out_of_range_id_rejected(self):
        space = IdSpace(4)
        h = build_uniform_hierarchy([1, 200], 2, 1, random.Random(0))
        with pytest.raises(ValueError):
            ChordNetwork(space, h)


class TestRingLookups:
    def test_successor(self):
        net = small_chord()
        ids = net.node_ids
        assert net.successor(ids[3]) == ids[3]
        assert net.successor(ids[3] + 1) == ids[4 % len(ids)]

    def test_successor_wraps(self):
        net = small_chord()
        assert net.successor(max(net.node_ids) + 1) == min(net.node_ids)

    def test_responsible_node_exact(self):
        net = small_chord()
        node = net.node_ids[5]
        assert net.responsible_node(node) == node

    def test_responsible_node_between(self):
        net = small_chord()
        ids = net.node_ids
        gap_key = ids[5] + 1
        if gap_key == ids[6]:
            pytest.skip("adjacent ids")
        assert net.responsible_node(gap_key) == ids[5]

    def test_responsible_within_subset(self):
        net = small_chord()
        subset = net.node_ids[::3]
        key = subset[2] + 1
        owner = net.responsible_node(key, within=subset)
        assert owner in subset

    def test_edges_iterator(self):
        net = small_chord()
        edge_list = list(edges(net))
        assert len(edge_list) == sum(net.degrees())
        assert all(a in net and b in net for a, b in edge_list)
