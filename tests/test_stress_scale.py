"""Paper-scale stress checks (opt-in: REPRO_STRESS=1).

The CI-speed suite tops out at a few thousand nodes; these tests build the
paper's largest configuration (32768 nodes, 5 levels) and verify the same
invariants.  ~1 minute; skipped unless REPRO_STRESS=1.
"""

from __future__ import annotations

import math
import os
import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring
from repro.dhts.crescendo import CrescendoNetwork

stress = pytest.mark.skipif(
    os.environ.get("REPRO_STRESS") != "1",
    reason="set REPRO_STRESS=1 to run paper-scale stress tests",
)


@pytest.fixture(scope="module")
def big_net():
    rng = random.Random(0xB16)
    space = IdSpace(32)
    ids = space.random_ids(32768, rng)
    hierarchy = build_uniform_hierarchy(
        ids, 10, 5, rng, distribution="zipf", zipf_exponent=1.25
    )
    return CrescendoNetwork(space, hierarchy).build(), rng


@stress
class TestPaperScale:
    def test_degree_near_log_n(self, big_net):
        net, rng = big_net
        assert abs(net.average_degree() - 15.0) < 1.0
        assert net.average_degree() <= math.log2(net.size - 1) + 1

    def test_max_degree_logarithmic(self, big_net):
        net, rng = big_net
        assert net.max_degree() <= 4 * math.log2(net.size)

    def test_routing_half_log(self, big_net):
        net, rng = big_net
        ids = net.node_ids
        hops = []
        for _ in range(500):
            a, b = rng.sample(ids, 2)
            result = route_ring(net, a, b)
            assert result.success and result.terminal == b
            hops.append(result.hops)
        mean = statistics.mean(hops)
        assert 0.5 * math.log2(net.size) - 0.5 <= mean <= 0.5 * math.log2(net.size) + 1.2

    def test_locality_at_scale(self, big_net):
        net, rng = big_net
        hierarchy = net.hierarchy
        for _ in range(100):
            a, b = rng.sample(net.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            result = route_ring(net, a, b)
            assert all(
                hierarchy.path_of(n)[: len(shared)] == shared
                for n in result.path
            )
