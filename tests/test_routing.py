"""Tests for the greedy routing engines (ring, XOR, lookahead)."""

from __future__ import annotations

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import (
    Route,
    route,
    route_ring,
    route_ring_lookahead,
    route_xor,
)
from repro.dhts.chord import ChordNetwork
from repro.dhts.kademlia import KademliaNetwork
from repro.dhts.symphony import SymphonyNetwork

from conftest import make_chord, make_crescendo


class TestRouteObject:
    def test_hops(self):
        r = Route([1, 2, 3], True, 3)
        assert r.hops == 2
        assert r.source == 1
        assert r.terminal == 3

    def test_single_node_path(self):
        r = Route([9], True, 9)
        assert r.hops == 0

    def test_latency_sums_edges(self):
        r = Route([1, 2, 4], True, 4)
        assert r.latency(lambda a, b: b - a) == 3

    def test_edges(self):
        assert Route([1, 2, 3], True, 3).edges() == [(1, 2), (2, 3)]


class TestRingRouting:
    def test_reaches_every_node(self, chord_net):
        rng = random.Random(1)
        ids = chord_net.node_ids
        for _ in range(100):
            a, b = rng.sample(ids, 2)
            r = route_ring(chord_net, a, b)
            assert r.success and r.terminal == b

    def test_never_overshoots(self, chord_net):
        """Remaining clockwise distance strictly decreases along the path."""
        rng = random.Random(2)
        space = chord_net.space
        ids = chord_net.node_ids
        for _ in range(50):
            a, b = rng.sample(ids, 2)
            r = route_ring(chord_net, a, b)
            dists = [space.ring_distance(n, b) for n in r.path]
            assert all(x > y for x, y in zip(dists, dists[1:]))

    def test_key_routes_to_responsible(self, chord_net):
        rng = random.Random(3)
        for _ in range(100):
            key = chord_net.space.random_id(rng)
            src = rng.choice(chord_net.node_ids)
            r = route_ring(chord_net, src, key)
            assert r.success
            assert r.terminal == chord_net.responsible_node(key)

    def test_self_route_is_trivial(self, chord_net):
        node = chord_net.node_ids[0]
        r = route_ring(chord_net, node, node)
        assert r.success and r.hops == 0

    def test_alive_filter_skips_dead(self, chord_net):
        rng = random.Random(4)
        ids = chord_net.node_ids
        alive = set(ids[: len(ids) // 2])
        live = sorted(alive)
        src, dst = live[0], live[-1]
        r = route_ring(chord_net, src, dst, alive=alive)
        assert all(n in alive for n in r.path)

    def test_hops_logarithmic(self, chord_net):
        rng = random.Random(5)
        ids = chord_net.node_ids
        hops = [
            route_ring(chord_net, *rng.sample(ids, 2)).hops for _ in range(200)
        ]
        import math

        assert statistics.mean(hops) <= math.log2(len(ids))


class TestXorRouting:
    @pytest.fixture(scope="class")
    def kad(self):
        rng = random.Random(11)
        space = IdSpace(16)
        ids = space.random_ids(300, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        return KademliaNetwork(space, h, rng).build()

    def test_reaches_every_node(self, kad):
        rng = random.Random(12)
        for _ in range(100):
            a, b = rng.sample(kad.node_ids, 2)
            r = route_xor(kad, a, b)
            assert r.success and r.terminal == b

    def test_xor_distance_strictly_decreases(self, kad):
        rng = random.Random(13)
        space = kad.space
        for _ in range(50):
            a, b = rng.sample(kad.node_ids, 2)
            r = route_xor(kad, a, b)
            dists = [space.xor_distance(n, b) for n in r.path]
            assert all(x > y for x, y in zip(dists, dists[1:]))

    def test_key_routes_into_smallest_bucket(self, kad):
        """Greedy key lookups land in the key's smallest populated bucket.

        Pure greedy forwarding may stop one node short of the globally
        XOR-closest (its last bucket holds one arbitrary contact); it must
        still reach a node sharing the closest node's top distance bit.
        """
        rng = random.Random(14)
        space = kad.space
        for _ in range(100):
            key = space.random_id(rng)
            src = rng.choice(kad.node_ids)
            r = route_xor(kad, src, key)
            best = min(space.xor_distance(n, key) for n in kad.node_ids)
            got = space.xor_distance(r.terminal, key)
            assert got.bit_length() <= best.bit_length() + 1

    def test_iterative_lookup_finds_global_closest(self, kad):
        """Kademlia's FIND_NODE shortlist lookup is exact for keys."""
        from repro.dhts.kademlia import find_closest

        rng = random.Random(15)
        space = kad.space
        for _ in range(100):
            key = space.random_id(rng)
            src = rng.choice(kad.node_ids)
            found = find_closest(kad, src, key)
            best = min(space.xor_distance(n, key) for n in kad.node_ids)
            assert space.xor_distance(found, key) == best


class TestLookahead:
    @pytest.fixture(scope="class")
    def symphony(self):
        rng = random.Random(21)
        space = IdSpace(32)
        ids = space.random_ids(600, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        return SymphonyNetwork(space, h, rng).build()

    def test_lookahead_delivers(self, symphony):
        rng = random.Random(22)
        for _ in range(80):
            a, b = rng.sample(symphony.node_ids, 2)
            r = route_ring_lookahead(symphony, a, b)
            assert r.success and r.terminal == b

    def test_lookahead_saves_hops_on_average(self, symphony):
        rng = random.Random(23)
        pairs = [rng.sample(symphony.node_ids, 2) for _ in range(150)]
        greedy = statistics.mean(route_ring(symphony, a, b).hops for a, b in pairs)
        ahead = statistics.mean(
            route_ring_lookahead(symphony, a, b).hops for a, b in pairs
        )
        assert ahead < greedy, "lookahead should reduce hops (paper: ~40%)"


class TestDispatch:
    def test_route_dispatches_on_metric(self, chord_net):
        rng = random.Random(31)
        a, b = rng.sample(chord_net.node_ids, 2)
        assert route(chord_net, a, b).success

    def test_route_unknown_metric(self, chord_net):
        chord_net.metric = "hyperbolic"
        try:
            with pytest.raises(ValueError):
                route(chord_net, chord_net.node_ids[0], chord_net.node_ids[1])
        finally:
            chord_net.metric = "ring"


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(4, 40))
def test_ring_routing_total_on_random_networks(seed, size):
    """Property: greedy clockwise routing delivers on any random Chord."""
    rng = random.Random(seed)
    space = IdSpace(12)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 3, 1, rng)
    net = ChordNetwork(space, h, use_numpy=False).build()
    a, b = rng.choice(ids), rng.choice(ids)
    r = route_ring(net, a, b)
    assert r.success and r.terminal == b


class TestDomainCrossings:
    @pytest.fixture
    def named_hierarchy(self):
        from repro import hierarchy_from_names

        return hierarchy_from_names(
            {
                1: "stanford.cs.db",
                2: "stanford.cs.db",
                3: "stanford.cs.ai",
                4: "stanford.ee",
                5: "mit.csail",
            }
        )

    def test_counts_per_level(self, named_hierarchy):
        r = Route([1, 2, 3, 4, 5], True, 5)
        # Hop LCA depths along the path: 3, 2, 1, 0.
        assert r.domain_crossings(named_hierarchy, level=1) == 1  # only 4->5
        assert r.domain_crossings(named_hierarchy, level=2) == 2  # 3->4, 4->5
        assert r.domain_crossings(named_hierarchy, level=3) == 3

    def test_default_level_is_top_level(self, named_hierarchy):
        r = Route([1, 5], True, 5)
        assert r.domain_crossings(named_hierarchy) == 1

    def test_intra_domain_path_has_no_crossings(self, named_hierarchy):
        r = Route([1, 2], True, 2)
        for level in (1, 2, 3):
            assert r.domain_crossings(named_hierarchy, level=level) == 0

    def test_zero_hop_route(self, named_hierarchy):
        assert Route([1], True, 1).domain_crossings(named_hierarchy) == 0

    def test_matches_inline_prefix_computation(self):
        """Equals the prefix-inequality count the analysis layer used inline."""
        net = make_crescendo(size=200, levels=3, seed=9)
        h = net.hierarchy
        rng = random.Random(41)
        for _ in range(20):
            a, b = rng.sample(net.node_ids, 2)
            r = route_ring(net, a, b)
            for level in (1, 2):
                inline = sum(
                    1
                    for x, y in zip(r.path, r.path[1:])
                    if h.path_of(x)[:level] != h.path_of(y)[:level]
                )
                assert r.domain_crossings(h, level=level) == inline

    def test_crescendo_crosses_less_than_chord(self):
        """Canon's locality: hierarchical routing crosses domains less."""
        crescendo = make_crescendo(size=300, levels=3, seed=13)
        chord = make_chord(size=300, seed=13)
        rng = random.Random(14)
        pairs = [tuple(rng.sample(crescendo.node_ids, 2)) for _ in range(150)]
        crossings_crescendo = sum(
            route_ring(crescendo, a, b).domain_crossings(crescendo.hierarchy)
            for a, b in pairs
        )
        crossings_chord = sum(
            route_ring(chord, a, b).domain_crossings(crescendo.hierarchy)
            for a, b in pairs
        )
        assert crossings_crescendo < crossings_chord
