"""Tests for flat Symphony and its harmonic link distribution."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring
from repro.dhts.symphony import SymphonyNetwork, draw_long_links, harmonic_distance


def build(size=500, seed=0, links=0):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 4, 1, rng)
    return SymphonyNetwork(space, h, rng, links_per_node=links).build()


class TestHarmonicDraw:
    def test_distance_in_range(self):
        space = IdSpace(16)
        rng = random.Random(1)
        for _ in range(500):
            d = harmonic_distance(space, 100, rng)
            assert 1 <= d < space.size

    def test_tiny_population(self):
        assert harmonic_distance(IdSpace(16), 1, random.Random(0)) == 1

    def test_distribution_favours_short_links(self):
        """The harmonic pdf (~1/d) yields far more short than long draws."""
        space = IdSpace(20)
        rng = random.Random(2)
        draws = [harmonic_distance(space, 1024, rng) for _ in range(4000)]
        short = sum(1 for d in draws if d < space.size // 32)
        long = sum(1 for d in draws if d >= space.size // 2)
        assert short > 2 * long

    def test_median_scales_with_population(self):
        """Larger populations push probability toward shorter fractions."""
        space = IdSpace(20)
        med_small = statistics.median(
            harmonic_distance(space, 16, random.Random(3)) for _ in range(2001)
        )
        med_large = statistics.median(
            harmonic_distance(space, 4096, random.Random(3)) for _ in range(2001)
        )
        assert med_large < med_small


class TestDrawLongLinks:
    def test_count_respected(self):
        space = IdSpace(16)
        rng = random.Random(4)
        members = sorted(space.random_ids(100, rng))
        links = draw_long_links(members[0], members, 5, space, rng)
        assert len(links) <= 5
        assert members[0] not in links

    def test_alone_no_links(self):
        space = IdSpace(16)
        assert draw_long_links(7, [7], 4, space, random.Random(0)) == set()

    def test_links_are_members(self):
        space = IdSpace(16)
        rng = random.Random(5)
        members = sorted(space.random_ids(50, rng))
        links = draw_long_links(members[3], members, 4, space, rng)
        assert links <= set(members)


class TestSymphonyNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return build(size=600, seed=6)

    def test_degree_about_log_n(self, net):
        expected = int(math.log2(net.size)) + 1  # long links + successor
        assert abs(net.average_degree() - expected) < 2.5

    def test_successor_always_linked(self, net):
        ids = net.node_ids
        for i, node in enumerate(ids):
            assert ids[(i + 1) % len(ids)] in net.links[node]

    def test_routing_total(self, net):
        rng = random.Random(7)
        for _ in range(150):
            a, b = rng.sample(net.node_ids, 2)
            r = route_ring(net, a, b)
            assert r.success and r.terminal == b

    def test_hops_logarithmic(self, net):
        rng = random.Random(8)
        hops = [
            route_ring(net, *rng.sample(net.node_ids, 2)).hops for _ in range(200)
        ]
        assert statistics.mean(hops) < 2 * math.log2(net.size)

    def test_explicit_link_budget(self):
        net = build(size=200, seed=9, links=3)
        # 3 long links + successor, minus harmonic-draw dedup collisions.
        assert net.average_degree() <= 4.0

    def test_links_valid(self, net):
        net.check_links_valid()
