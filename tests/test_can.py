"""Tests for CAN: prefix-tree IDs, virtual-node adjacency, bit fixing."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace
from repro.dhts.can import (
    CANNetwork,
    PrefixId,
    PrefixTree,
    are_adjacent,
    build_can,
)


class TestPrefixId:
    def test_bit_msb_first(self):
        p = PrefixId(0b101, 3)
        assert [p.bit(i) for i in range(3)] == [1, 0, 1]

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            PrefixId(0b1, 1).bit(1)

    def test_padded(self):
        assert PrefixId(0b10, 2).padded(8) == 0b10000000

    def test_interval(self):
        lo, hi = PrefixId(0b10, 2).interval(8)
        assert (lo, hi) == (128, 192)

    def test_contains_key(self):
        p = PrefixId(0b10, 2)
        assert p.contains_key(128, 8)
        assert p.contains_key(191, 8)
        assert not p.contains_key(192, 8)

    def test_children(self):
        p = PrefixId(0b1, 1)
        assert p.child(0) == PrefixId(0b10, 2)
        assert p.child(1) == PrefixId(0b11, 2)

    def test_str(self):
        assert str(PrefixId(0b101, 3)) == "101"
        assert str(PrefixId(0, 0)) == "ε"


class TestPrefixTree:
    def test_grow_to_count(self):
        tree = PrefixTree(8)
        leaves = tree.grow(10, random.Random(0))
        assert len(leaves) == 10
        assert len(tree.leaves) == 10

    def test_leaves_partition_space(self):
        """Leaf intervals tile [0, 2**bits) without overlap."""
        tree = PrefixTree(8)
        leaves = tree.grow(13, random.Random(1))
        intervals = sorted(leaf.interval(8) for leaf in leaves)
        assert intervals[0][0] == 0
        assert intervals[-1][1] == 256
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 == lo2

    def test_leaf_for_key(self):
        tree = PrefixTree(8)
        tree.grow(10, random.Random(2))
        for key in (0, 100, 255):
            assert tree.leaf_for_key(key).contains_key(key, 8)

    def test_split_removes_parent(self):
        tree = PrefixTree(8)
        root = tree.first()
        left, right = tree.split(root)
        assert root not in tree.leaves
        assert {left, right} <= tree.leaves

    def test_split_not_a_leaf(self):
        tree = PrefixTree(8)
        tree.first()
        with pytest.raises(KeyError):
            tree.split(PrefixId(0b0, 1))

    def test_largest_policy_balances(self):
        tree = PrefixTree(16)
        tree.grow(64, random.Random(3), policy="largest")
        assert tree.partition_ratio() == 1.0  # 64 = 2**6: perfectly even

    def test_largest_policy_ratio_bound(self):
        tree = PrefixTree(16)
        tree.grow(100, random.Random(4), policy="largest")
        assert tree.partition_ratio() <= 2.0

    def test_random_policy_worse_than_largest(self):
        t_random = PrefixTree(16)
        t_random.grow(200, random.Random(5), policy="random")
        t_largest = PrefixTree(16)
        t_largest.grow(200, random.Random(5), policy="largest")
        assert t_largest.partition_ratio() <= t_random.partition_ratio()

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            PrefixTree(8).grow(4, random.Random(0), policy="zigzag")


def virtual_adjacent(a: PrefixId, b: PrefixId, bits: int) -> bool:
    """Ground truth: some padding pair differs in exactly one bit."""
    for pa in range(1 << (bits - a.length)):
        va = (a.value << (bits - a.length)) | pa
        for pb in range(1 << (bits - b.length)):
            vb = (b.value << (bits - b.length)) | pb
            if bin(va ^ vb).count("1") == 1:
                return True
    return False


class TestAdjacency:
    def test_paper_example(self):
        """IDs 0, 10, 11: node 0 (virtual 00, 01) neighbors both 10 and 11."""
        zero = PrefixId(0b0, 1)
        ten = PrefixId(0b10, 2)
        eleven = PrefixId(0b11, 2)
        assert are_adjacent(zero, ten)
        assert are_adjacent(zero, eleven)
        assert are_adjacent(ten, eleven)

    def test_not_adjacent(self):
        assert not are_adjacent(PrefixId(0b00, 2), PrefixId(0b11, 2))

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_matches_virtual_bruteforce(self, data):
        bits = 6
        tree = PrefixTree(bits)
        seed = data.draw(st.integers(0, 1000))
        leaves = tree.grow(data.draw(st.integers(2, 12)), random.Random(seed))
        a, b = leaves[0], leaves[-1]
        assert are_adjacent(a, b) == virtual_adjacent(a, b, bits)


class TestCANNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return build_can(IdSpace(16), 300, random.Random(6))

    def test_links_valid(self, net):
        net.check_links_valid()

    def test_adjacency_symmetric(self, net):
        for node in net.node_ids[:50]:
            for link in net.links[node]:
                assert node in net.links[link]

    def test_responsible_node(self, net):
        rng = random.Random(7)
        for _ in range(50):
            key = net.space.random_id(rng)
            owner = net.responsible_node(key)
            assert net.prefixes[owner].contains_key(key, net.space.bits)

    def test_bitfix_routing_total(self, net):
        rng = random.Random(8)
        for _ in range(150):
            src = rng.choice(net.node_ids)
            key = net.space.random_id(rng)
            r = net.route_bitfix(src, key)
            assert r.success
            assert net.prefixes[r.terminal].contains_key(key, net.space.bits)

    def test_bitfix_hops_bounded_by_bits(self, net):
        rng = random.Random(9)
        for _ in range(80):
            src = rng.choice(net.node_ids)
            key = net.space.random_id(rng)
            assert net.route_bitfix(src, key).hops <= net.space.bits

    def test_common_prefix_strictly_grows(self, net):
        from repro.dhts.can import _common_prefix_len

        rng = random.Random(10)
        bits = net.space.bits
        for _ in range(40):
            src = rng.choice(net.node_ids)
            key = net.space.random_id(rng)
            r = net.route_bitfix(src, key)
            lcps = [
                min(
                    _common_prefix_len(net.prefixes[n].padded(bits), key, bits),
                    net.prefixes[n].length,
                )
                for n in r.path
            ]
            assert all(x < y for x, y in zip(lcps, lcps[1:]))

    def test_missing_prefix_rejected(self):
        from repro.core.hierarchy import Hierarchy

        space = IdSpace(8)
        h = Hierarchy()
        h.place(0, ())
        h.place(128, ())
        with pytest.raises(ValueError):
            CANNetwork(space, h, {0: PrefixId(0, 1)})
