"""The fused latency accumulator: tables, kernels, engines — bit-for-bit.

The contract under test (see ``repro.perf.latency``): every fast path that
prices hops — the batch routing kernels, :meth:`LatencyTable.path_ms`, the
fast dynamic engine's lookup pricing — produces *exactly* the float64 total
the scalar reference fold produces, not merely a close one.  Every latency
assertion here is ``==``, never ``pytest.approx``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.idspace import IdSpace
from repro.core.routing import route, route_ring
from repro.analysis.metrics import sample_routing
from repro.dhts.crescendo import CrescendoNetwork
from repro.obs import metrics as obs_metrics
from repro.perf.latency import LatencyTable
from repro.topology.transit_stub import (
    HOST_STUB_MS,
    TopologyParams,
    TransitStubTopology,
)
from repro.verify.fuzz import FuzzConfig, bootstrap_network, generate_schedule
from repro.verify.oracles import compare_protocols, compare_routing

SMALL_PARAMS = TopologyParams(
    transit_domains=2,
    transit_per_domain=2,
    stub_domains_per_transit=2,
    stub_per_domain=4,
)


@pytest.fixture(scope="module")
def attached():
    """A small topology with 64 nodes attached, plus a built Crescendo."""
    rng = random.Random("perf-latency")
    topology = TransitStubTopology(SMALL_PARAMS, rng=rng)
    space = IdSpace(32)
    node_ids = space.random_ids(64, rng)
    hierarchy = topology.attach_nodes(node_ids, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    return topology, space, node_ids, net


# ------------------------------------------------------------ LatencyTable


def test_table_matches_scalar_oracle(attached):
    topology, _, node_ids, _ = attached
    table = topology.latency_table()
    rng = random.Random(1)
    for _ in range(50):
        a, b = rng.choice(node_ids), rng.choice(node_ids)
        assert table.node_latency(a, b) == topology.node_latency(a, b)
    # A table is itself a LatencyFn.
    a, b = node_ids[0], node_ids[1]
    assert table(a, b) == topology.node_latency(a, b)
    assert table(a, a) == 0.0


def test_table_sorts_unsorted_input(attached):
    topology, _, node_ids, _ = attached
    shuffled = list(node_ids)
    random.Random(2).shuffle(shuffled)
    routers = [topology.router_of(n) for n in shuffled]
    table = LatencyTable(shuffled, routers, topology._latency, host_ms=HOST_STUB_MS)
    assert list(table.node_ids) == sorted(node_ids)
    a, b = node_ids[3], node_ids[7]
    assert table.node_latency(a, b) == topology.node_latency(a, b)


def test_positions_raises_on_unattached_id(attached):
    topology, _, node_ids, _ = attached
    table = topology.latency_table()
    stranger = max(node_ids) + 1
    with pytest.raises(KeyError, match="not in this latency table"):
        table.positions(np.asarray([stranger], dtype=np.uint64))
    with pytest.raises(KeyError, match=str(stranger)):
        table.node_latency(node_ids[0], stranger)


def test_router_of_names_the_node_and_population(attached):
    topology, _, node_ids, _ = attached
    stranger = max(node_ids) + 99
    with pytest.raises(KeyError) as err:
        topology.router_of(stranger)
    message = str(err.value)
    assert str(stranger) in message
    assert "not attached" in message
    assert str(len(node_ids)) in message  # how many *are* attached


def test_path_ms_is_the_scalar_left_fold(attached):
    topology, _, node_ids, _ = attached
    table = topology.latency_table()
    rng = random.Random(3)
    for _ in range(20):
        path = [rng.choice(node_ids) for _ in range(rng.randrange(2, 9))]
        fold = 0.0
        for a, b in zip(path, path[1:]):
            fold += topology.node_latency(a, b)
        assert table.path_ms(path) == fold
    assert table.path_ms([node_ids[0]]) == 0.0
    assert table.paths_ms([]) == []


def test_hop_ms_vectorized_matches_scalar(attached):
    topology, _, node_ids, _ = attached
    table = topology.latency_table()
    a = np.asarray(node_ids[:10], dtype=np.uint64)
    b = np.asarray(node_ids[10:20], dtype=np.uint64)
    out = table.hop_ms(a, b)
    for i in range(10):
        assert out[i] == topology.node_latency(int(a[i]), int(b[i]))
    same = table.hop_ms(a, a)
    assert np.all(same == 0.0)


def test_cached_table_invalidated_by_attachment(attached):
    topology, space, node_ids, _ = attached
    first = topology.latency_table()
    assert topology.latency_table() is first  # cached
    newcomer = max(node_ids) + 12345
    topology.attach_node(newcomer, random.Random(4))
    second = topology.latency_table()
    assert second is not first
    assert topology.path_ms([node_ids[0], newcomer]) == topology.node_latency(
        node_ids[0], newcomer
    )


def test_latency_matrix_bytes_gauge():
    with obs_metrics.collecting() as registry:
        topology = TransitStubTopology(SMALL_PARAMS, rng=random.Random(5))
    snap = registry.snapshot()
    assert snap.gauges["topology.latency_matrix_bytes"] == topology._latency.nbytes
    # float32 matrix: 4 bytes per router pair.
    assert topology._latency.nbytes == 4 * SMALL_PARAMS.router_count**2


# ------------------------------------------- engines, bit-for-bit equality


def test_compare_routing_latency_oracle(attached):
    topology, _, node_ids, net = attached
    table = topology.latency_table(node_ids)
    rng = random.Random(6)
    pairs = [
        (rng.choice(node_ids), rng.choice(node_ids)) for _ in range(60)
    ]
    assert compare_routing(net, pairs, latency=table) == []


def test_scalar_vs_batch_slo_snapshots_bit_identical(attached):
    topology, _, _, net = attached

    def run(engine):
        rng = random.Random("slo-parity")
        with obs_metrics.collecting() as registry:
            stats = sample_routing(
                net,
                rng,
                samples=80,
                router=route_ring,
                latency_fn=topology.node_latency,
                engine=engine,
                slo_label="parity",
            )
        return stats, registry.snapshot()

    scalar_stats, scalar_snap = run("scalar")
    batch_stats, batch_snap = run("batch")
    assert scalar_stats.mean_latency == batch_stats.mean_latency
    assert scalar_stats.delivered == batch_stats.delivered

    def strip_perf(snapshot):
        data = dict(snapshot.data)
        data["counters"] = {
            k: v for k, v in data["counters"].items() if not k.startswith("perf.")
        }
        return data

    assert strip_perf(scalar_snap) == strip_perf(batch_snap)
    # The batch engine really ran (this test would otherwise prove nothing).
    assert batch_snap.counters.get("perf.batch.routes", 0) > 0


def test_batch_latency_equals_scalar_route_fold(attached):
    topology, _, node_ids, net = attached
    table = topology.latency_table(node_ids)
    from repro.perf.kernels import batch_route

    rng = random.Random(7)
    pairs = [(rng.choice(node_ids), rng.choice(node_ids)) for _ in range(40)]
    batch = batch_route(net, pairs, paths=True, latency=table)
    for idx, (src, key) in enumerate(pairs):
        slow = route(net, src, key)
        assert slow.latency(topology.node_latency) == float(batch.latency_ms[idx])


def test_compare_protocols_latency_oracle():
    config = FuzzConfig(seed=21, events=40, population=32, checkpoints=1)
    schedule = generate_schedule(config)
    topology = TransitStubTopology(SMALL_PARAMS, rng=random.Random(8))
    probe = bootstrap_network(config, engine="reference")
    for node_id in sorted(probe.nodes):
        topology.attach_node(node_id)
    for event in schedule:
        if event.kind == "join" and event.node not in probe.nodes:
            topology.attach_node(event.node)
    table = topology.latency_table()
    comparison = compare_protocols(
        lambda engine: bootstrap_network(config, engine=engine),
        schedule,
        latency=table,
    )
    assert comparison.equivalent, comparison.violations[:3]
    # The schedule exercised lookups, so the latency oracle saw real paths.
    assert comparison.fast_report.lookup_paths


def test_compare_protocols_detects_latency_divergence():
    """A table whose gather disagrees with the scalar fold must be caught."""

    class BrokenTable(LatencyTable):
        def path_ms(self, path):
            return super().path_ms(path) + (1e-9 if len(path) >= 2 else 0.0)

    config = FuzzConfig(seed=21, events=40, population=32, checkpoints=1)
    schedule = generate_schedule(config)
    topology = TransitStubTopology(SMALL_PARAMS, rng=random.Random(9))
    probe = bootstrap_network(config, engine="reference")
    for node_id in sorted(probe.nodes):
        topology.attach_node(node_id)
    for event in schedule:
        if event.kind == "join" and event.node not in probe.nodes:
            topology.attach_node(event.node)
    good = topology.latency_table()
    broken = BrokenTable(
        [int(n) for n in good.node_ids],
        [int(r) for r in good.routers],
        good.matrix,
        host_ms=good.host_ms,
    )
    comparison = compare_protocols(
        lambda engine: bootstrap_network(config, engine=engine),
        schedule,
        latency=broken,
    )
    assert any("latency" in v.message for v in comparison.violations)
