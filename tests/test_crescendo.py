"""Tests for Crescendo: the Canon merge, the paper's Figure 2 example, and
the two structural routing properties of Section 2.2."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.core.hierarchy import Hierarchy, lca
from repro.core.routing import route_ring
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork

from conftest import make_crescendo


def figure2_network():
    """The paper's Figure 2: rings A = {0,5,10,12} and B = {2,3,8,13} in a
    4-bit space, merged into one Crescendo ring."""
    space = IdSpace(4)
    h = Hierarchy()
    for node in (0, 5, 10, 12):
        h.place(node, ("A",))
    for node in (2, 3, 8, 13):
        h.place(node, ("B",))
    return CrescendoNetwork(space, h, use_numpy=False).build()


class TestFigure2Example:
    """Every claim the paper makes about Figure 2, verbatim."""

    @pytest.fixture(scope="class")
    def net(self):
        return figure2_network()

    def test_node0_ring_a_links(self, net):
        """Node 0 links to 5 (distances 1, 2, 4) and 10 (distance 8) in A."""
        assert {5, 10} <= set(net.links[0])

    def test_node8_ring_b_links(self, net):
        """Node 8 links to 13 and 2 within ring B."""
        assert {13, 2} <= set(net.links[8])

    def test_node0_adds_only_node2(self, net):
        """Merging adds 0 -> 2; node 8 is ruled out by condition (b)."""
        assert set(net.links[0]) == {2, 5, 10}

    def test_node0_no_link_to_3(self, net):
        assert 3 not in net.links[0]

    def test_node8_adds_10_and_12_but_not_0(self, net):
        """Candidates 10, 12 pass (closer than 13); 0 at distance 8 fails."""
        assert {10, 12} <= set(net.links[8])
        assert 0 not in net.links[8]

    def test_node2_adds_no_merge_links(self, net):
        """Node 2's own-ring neighbor (3, distance 1) blocks all candidates."""
        merge_links = set(net.links[2]) - {3, 8, 13}
        assert merge_links == set()

    def test_gaps_recorded(self, net):
        # After the final merge, gap is the global successor distance.
        assert net.gap[0] == 2
        assert net.gap[8] == 2  # successor of 8 in merged ring is 10


class TestMergeConditions:
    """Conditions (a) and (b) checked on random instances."""

    @pytest.fixture(scope="class")
    def net(self):
        return make_crescendo(size=250, levels=3, fanout=3, seed=11, bits=16)

    def test_condition_a_no_closer_node_skipped(self, net):
        """Each link is the closest node at least 2**k away over some ring."""
        space = net.space
        hierarchy = net.hierarchy
        for node in net.node_ids[:40]:
            for link in net.links[node]:
                dist = space.ring_distance(node, link)
                ring = hierarchy.sorted_members(lca(
                    hierarchy.path_of(node), hierarchy.path_of(link)
                ))
                k = dist.bit_length() - 1
                blockers = [
                    other
                    for other in ring
                    if other != node
                    and (1 << k) <= space.ring_distance(node, other) < dist
                ]
                assert not blockers, (
                    f"link {node}->{link} violates condition (a) in its ring"
                )

    def test_condition_b_links_inside_gap(self, net):
        """Merge links are strictly closer than the own-ring successor."""
        space = net.space
        hierarchy = net.hierarchy
        for node in net.node_ids[:40]:
            path = net.hierarchy.path_of(node)
            for link in net.links[node]:
                shared = lca(path, hierarchy.path_of(link))
                if len(shared) >= len(path):
                    continue  # leaf-ring link: no (b) constraint
                # Own ring at the level below the merge: path[:len(shared)+1].
                own_ring = hierarchy.sorted_members(path[: len(shared) + 1])
                dist = space.ring_distance(node, link)
                own_dists = [
                    space.ring_distance(node, o) for o in own_ring if o != node
                ]
                if own_dists:
                    assert dist < min(own_dists), (
                        f"merge link {node}->{link} not closer than own ring"
                    )

    def test_global_successor_always_linked(self, net):
        ids = net.node_ids
        for i, node in enumerate(ids):
            succ = ids[(i + 1) % len(ids)]
            assert succ in net.links[node]


class TestEquivalences:
    def test_one_level_equals_chord(self):
        rng = random.Random(13)
        space = IdSpace(32)
        ids = space.random_ids(500, rng)
        h = build_uniform_hierarchy(ids, 10, 1, rng)
        chord = ChordNetwork(space, h).build()
        crescendo = CrescendoNetwork(space, h).build()
        assert chord.links == crescendo.links

    def test_numpy_matches_python(self):
        for seed in (1, 2, 3):
            rng = random.Random(seed)
            space = IdSpace(32)
            ids = space.random_ids(200, rng)
            h = build_uniform_hierarchy(ids, 3, 3, rng)
            a = CrescendoNetwork(space, h, use_numpy=False).build()
            b = CrescendoNetwork(space, h, use_numpy=True).build()
            assert a.links == b.links

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_numpy_matches_python_property(self, seed):
        rng = random.Random(seed)
        space = IdSpace(16)
        size = rng.randint(65, 130)  # force the numpy path (> 64 members)
        ids = space.random_ids(size, rng)
        h = build_uniform_hierarchy(ids, 3, rng.randint(1, 4), rng)
        a = CrescendoNetwork(space, h, use_numpy=False).build()
        b = CrescendoNetwork(space, h, use_numpy=True).build()
        assert a.links == b.links


class TestStructuralProperties:
    """Section 2.2: locality of intra-domain paths; convergence of
    inter-domain paths."""

    @pytest.fixture(scope="class")
    def net(self):
        return make_crescendo(size=500, levels=4, fanout=3, seed=17)

    def test_intra_domain_path_locality(self, net):
        """A route never leaves the lowest common domain of its endpoints."""
        rng = random.Random(18)
        hierarchy = net.hierarchy
        for _ in range(200):
            a, b = rng.sample(net.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            r = route_ring(net, a, b)
            assert r.success
            for hop in r.path:
                assert hierarchy.path_of(hop)[: len(shared)] == shared

    def test_inter_domain_path_convergence(self, net):
        """All routes from domain D to an outside key exit through the
        closest predecessor of the key within D."""
        rng = random.Random(19)
        hierarchy = net.hierarchy
        checked = 0
        while checked < 50:
            src = rng.choice(net.node_ids)
            path = hierarchy.path_of(src)
            domain = path[:2]
            key = net.space.random_id(rng)
            owner = net.responsible_node(key)
            if hierarchy.path_of(owner)[:2] == domain:
                continue  # key is inside: no exit to check
            expected_exit = net.exit_node(domain, key)
            r = route_ring(net, src, key)
            inside = [
                n for n in r.path if hierarchy.path_of(n)[:2] == domain
            ]
            assert inside, "route must start inside the domain"
            assert inside[-1] == expected_exit
            checked += 1

    def test_convergence_pairwise(self, net):
        """Two same-domain sources exit through the same node (cacheable)."""
        rng = random.Random(20)
        hierarchy = net.hierarchy
        checked = 0
        while checked < 30:
            src = rng.choice(net.node_ids)
            domain = hierarchy.path_of(src)[:2]
            peers = [m for m in hierarchy.members(domain) if m != src]
            if not peers:
                continue
            other = rng.choice(peers)
            key = net.space.random_id(rng)
            if hierarchy.path_of(net.responsible_node(key))[:2] == domain:
                continue
            exit1 = [n for n in route_ring(net, src, key).path
                     if hierarchy.path_of(n)[:2] == domain][-1]
            exit2 = [n for n in route_ring(net, other, key).path
                     if hierarchy.path_of(n)[:2] == domain][-1]
            assert exit1 == exit2
            checked += 1


class TestDegreeBehaviour:
    def test_average_degree_below_chord(self):
        """Paper: Crescendo's average degree is below Chord's and decreases
        with hierarchy depth."""
        rng = random.Random(23)
        space = IdSpace(32)
        ids = space.random_ids(2000, rng)
        degrees = []
        for levels in (1, 3, 5):
            h = build_uniform_hierarchy(ids, 10, levels, random.Random(23))
            net = CrescendoNetwork(space, h).build()
            degrees.append(net.average_degree())
        assert degrees[0] >= degrees[1] >= degrees[2]

    def test_theorem2_degree_bound(self):
        rng = random.Random(24)
        space = IdSpace(32)
        ids = space.random_ids(1500, rng)
        for levels in (2, 4):
            h = build_uniform_hierarchy(ids, 10, levels, random.Random(24))
            net = CrescendoNetwork(space, h).build()
            n = len(ids)
            bound = math.log2(n - 1) + min(levels, math.log2(n))
            assert net.average_degree() <= bound

    def test_max_degree_logarithmic(self):
        """Theorem 3: O(log n) degree w.h.p."""
        net = make_crescendo(size=2000, levels=4, fanout=10, seed=25)
        assert net.max_degree() <= 4 * math.log2(net.size)


class TestLevelBookkeeping:
    @pytest.fixture(scope="class")
    def net(self):
        return make_crescendo(size=120, levels=3, fanout=3, seed=29, bits=16)

    def test_levels_of(self, net):
        node = net.node_ids[0]
        assert net.levels_of(node) == len(net.hierarchy.path_of(node)) + 1

    def test_successor_at_level_global(self, net):
        ids = net.node_ids
        for i, node in enumerate(ids[:20]):
            assert net.successor_at_level(node, 0) == ids[(i + 1) % len(ids)]

    def test_successor_at_leaf_level(self, net):
        node = net.node_ids[0]
        leaf_depth = len(net.hierarchy.path_of(node))
        members = net.hierarchy.sorted_members(net.hierarchy.path_of(node))
        pos = members.index(node)
        expected = members[(pos + 1) % len(members)]
        assert net.successor_at_level(node, leaf_depth) == expected

    def test_successor_at_invalid_level(self, net):
        node = net.node_ids[0]
        assert net.successor_at_level(node, 99) is None

    def test_exit_node_is_domain_predecessor(self, net):
        rng = random.Random(30)
        key = net.space.random_id(rng)
        domain = net.hierarchy.path_of(net.node_ids[0])[:1]
        members = net.hierarchy.sorted_members(domain)
        assert net.exit_node(domain, key) == net.responsible_node(key, within=members)

    def test_exit_node_empty_domain(self, net):
        with pytest.raises(ValueError):
            net.exit_node(("nope",), 0)
