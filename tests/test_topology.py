"""Tests for the transit-stub topology model (GT-ITM substitute)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace
from repro.topology.transit_stub import (
    HOST_STUB_MS,
    STUB_STUB_MS,
    TRANSIT_STUB_MS,
    TRANSIT_TRANSIT_MS,
    TopologyParams,
    TransitStubTopology,
)


@pytest.fixture(scope="module")
def topo():
    return TransitStubTopology(rng=random.Random(0))


@pytest.fixture(scope="module")
def small_topo():
    params = TopologyParams(
        transit_domains=2,
        transit_per_domain=3,
        stub_domains_per_transit=2,
        stub_per_domain=4,
    )
    return TransitStubTopology(params, rng=random.Random(1))


class TestParams:
    def test_paper_default_is_2040_routers(self):
        assert TopologyParams().router_count == 2040

    def test_counts(self):
        p = TopologyParams(2, 3, 2, 4)
        assert p.transit_count == 6
        assert p.stub_count == 48
        assert p.router_count == 54


class TestGraph:
    def test_connected(self, small_topo):
        routers = small_topo.params.router_count
        for b in range(0, routers, 7):
            assert small_topo.router_latency(0, b) < float("inf")

    def test_latency_symmetric(self, small_topo):
        assert small_topo.router_latency(0, 10) == small_topo.router_latency(10, 0)

    def test_self_latency_zero(self, small_topo):
        assert small_topo.router_latency(5, 5) == 0.0

    def test_latency_classes(self, small_topo):
        """Stub-stub within a domain is cheap; crossing transit domains
        costs at least one 100 ms link."""
        stubs = small_topo.stub_routers
        same_domain = [
            s
            for s in stubs
            if small_topo.stub_location[s][:3] == small_topo.stub_location[stubs[0]][:3]
        ]
        assert len(same_domain) >= 2
        intra = small_topo.router_latency(same_domain[0], same_domain[1])
        assert intra <= STUB_STUB_MS * small_topo.params.stub_per_domain

        other_domain = [
            s
            for s in stubs
            if small_topo.stub_location[s][0] != small_topo.stub_location[stubs[0]][0]
        ]
        inter = small_topo.router_latency(stubs[0], other_domain[0])
        assert inter >= TRANSIT_TRANSIT_MS

    def test_stub_locations_cover_all(self, small_topo):
        p = small_topo.params
        locations = set(small_topo.stub_location.values())
        assert len(locations) == p.stub_count
        assert len(small_topo.stub_routers) == p.stub_count


class TestAttachment:
    def test_induced_hierarchy_depth(self, small_topo):
        rng = random.Random(2)
        space = IdSpace(32)
        ids = space.random_ids(100, rng)
        h = small_topo.attach_nodes(ids, rng)
        assert all(len(h.path_of(i)) == 4 for i in ids)
        assert h.max_depth == 4

    def test_hierarchy_matches_stub_location(self, small_topo):
        rng = random.Random(3)
        ids = IdSpace(32).random_ids(50, rng)
        h = small_topo.attach_nodes(ids, rng)
        for node in ids:
            router = small_topo.router_of(node)
            td, tn, sd, sn = small_topo.stub_location[router]
            assert h.path_of(node) == (f"t{td}", f"n{tn}", f"s{sd}", f"r{sn}")

    def test_node_latency_includes_access_links(self, small_topo):
        rng = random.Random(4)
        ids = IdSpace(32).random_ids(20, rng)
        small_topo.attach_nodes(ids, rng)
        a, b = ids[0], ids[1]
        ra, rb = small_topo.router_of(a), small_topo.router_of(b)
        expected = 2 * HOST_STUB_MS + small_topo.router_latency(ra, rb)
        assert small_topo.node_latency(a, b) == pytest.approx(expected)

    def test_same_node_latency_zero(self, small_topo):
        rng = random.Random(5)
        ids = IdSpace(32).random_ids(5, rng)
        small_topo.attach_nodes(ids, rng)
        assert small_topo.node_latency(ids[0], ids[0]) == 0.0

    def test_same_stub_costs_2ms(self, small_topo):
        """Two hosts on the same stub router: 1 ms up + 1 ms down."""
        rng = random.Random(6)
        ids = IdSpace(32).random_ids(300, rng)
        small_topo.attach_nodes(ids, rng)
        by_router = {}
        for node in ids:
            by_router.setdefault(small_topo.router_of(node), []).append(node)
        pair = next(v for v in by_router.values() if len(v) >= 2)
        assert small_topo.node_latency(pair[0], pair[1]) == pytest.approx(2.0)

    def test_average_direct_latency_positive(self, small_topo):
        rng = random.Random(7)
        ids = IdSpace(32).random_ids(50, rng)
        small_topo.attach_nodes(ids, rng)
        avg = small_topo.average_direct_latency(200, rng)
        assert avg > 2.0


class TestPaperScale:
    def test_full_model_builds(self, topo):
        assert topo.params.router_count == 2040
        assert len(topo.stub_routers) == 2000

    def test_transit_paths_dominate_cross_domain(self, topo):
        """Crossing the core costs >= 100 ms more than staying local."""
        stubs = topo.stub_routers
        loc = topo.stub_location
        s0 = stubs[0]
        cross = next(s for s in stubs if loc[s][0] != loc[s0][0])
        local = next(s for s in stubs[1:] if loc[s][:3] == loc[s0][:3])
        assert topo.router_latency(s0, cross) > topo.router_latency(s0, local)
