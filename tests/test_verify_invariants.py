"""The invariant registry: clean builds pass, corrupted tables fail.

Structural checks are exercised both positively (every family, both build
paths, zero violations) and negatively (every registered mutation kind is
detected, with structured node/level/domain attribution).
"""

from __future__ import annotations

import random

import pytest

from repro.core.network import LinkTableError
from repro.obs import metrics as obs_metrics
from repro.verify.builders import EXTRA_FAMILIES, FAMILIES, small_network
from repro.verify.invariants import (
    auto_verify_enabled,
    checkers_for,
    maybe_verify,
    run_checks,
    set_auto_verify,
    verify_network,
)
from repro.verify.mutate import KINDS, corrupt, mutation_smoke
from repro.verify.violations import InvariantViolationError, summarize

ALL_FAMILIES = FAMILIES + EXTRA_FAMILIES


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_clean_build_has_no_violations(family):
    net = small_network(family, seed=1)
    assert run_checks(net) == []


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_every_family_has_specific_checkers(family):
    names = {c.name for c in checkers_for(family)}
    assert "links-valid" in names
    # Beyond generic hygiene, each family must have a structural check.
    assert len(names) > 1, f"{family} only has generic checkers"


@pytest.mark.parametrize("kind", KINDS)
def test_corruption_is_detected(kind):
    net = small_network("crescendo", seed=2)
    assert run_checks(net) == []
    corrupt(net, random.Random(2), kind)
    violations = run_checks(net)
    assert violations, f"{kind} corruption went undetected"
    worst = violations[0]
    assert worst.family == "crescendo"
    assert worst.node in net.links or worst.node is None
    assert "no violations" not in summarize(violations)


def test_verify_network_raises_with_structured_payload():
    net = small_network("chord", seed=3)
    verify_network(net)  # clean: no raise
    corrupt(net, random.Random(3), "drop")
    with pytest.raises(InvariantViolationError) as err:
        verify_network(net)
    assert err.value.violations
    violation = err.value.violations[0]
    assert violation.check
    assert violation.family == "chord"


def test_link_table_error_reports_offender():
    net = small_network("symphony", seed=4)
    node = net.node_ids[5]
    net.links[node] = sorted(net.links[node] + [node])  # self-link
    with pytest.raises(LinkTableError) as err:
        net.check_links_valid()
    assert err.value.node == node
    assert err.value.link == node
    assert "itself" in err.value.reason


def test_unknown_target_reported_with_link():
    net = small_network("chord", seed=5)
    node = net.node_ids[0]
    bogus = net.space.size  # one past the id space: never a member
    net.links[node] = sorted(net.links[node] + [bogus])
    offenders = [
        (n, link) for n, link, _ in net.iter_link_violations()
    ]
    assert (node, bogus) in offenders


def test_mutation_smoke_covers_all_ten_families():
    report = mutation_smoke(families=FAMILIES, seed=0, size=80)
    assert set(report) == set(FAMILIES)
    for family, kinds in report.items():
        for kind, checks in kinds.items():
            assert checks, f"{family}/{kind} detected by no checker"


def test_metrics_count_checks_and_violations():
    net = small_network("kandy", seed=6)
    with obs_metrics.collecting() as registry:
        run_checks(net)
        checks_clean = registry.counter("verify.checks").value
        assert checks_clean == len(checkers_for("kandy"))
        assert registry.counter("verify.violations").value == 0
        corrupt(net, random.Random(6), "drop")
        run_checks(net)
        assert registry.counter("verify.violations").value > 0


def test_auto_verify_toggle():
    assert not auto_verify_enabled()
    net = small_network("chord", seed=7)
    corrupt(net, random.Random(7), "drop")
    maybe_verify(net)  # off: no raise even though the table is bad
    set_auto_verify(True)
    try:
        assert auto_verify_enabled()
        with pytest.raises(InvariantViolationError):
            maybe_verify(net)
    finally:
        set_auto_verify(False)


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_python_build_path_is_also_clean(family):
    """The scalar reference builders satisfy the same invariants."""
    net = small_network(family, seed=8, size=60)
    assert run_checks(net) == []
