"""Tests for Cacophony — Canonical Symphony (Section 3.1)."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.hierarchy import lca
from repro.core.routing import route_ring, route_ring_lookahead
from repro.dhts.cacophony import CacophonyNetwork


def build(size=500, levels=3, fanout=4, seed=0):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, fanout, levels, rng)
    return CacophonyNetwork(space, h, rng).build()


@pytest.fixture(scope="module")
def net():
    return build()


class TestConstruction:
    def test_degree_about_log_n(self, net):
        assert net.average_degree() < 2 * math.log2(net.size)
        assert net.average_degree() > 0.5 * math.log2(net.size)

    def test_per_level_successors_linked(self, net):
        """Each node links its successor at every level (Section 3.1)."""
        hierarchy = net.hierarchy
        for node in net.node_ids[:50]:
            path = hierarchy.path_of(node)
            for depth in range(len(path) + 1):
                members = hierarchy.sorted_members(path[:depth])
                if len(members) < 2:
                    continue
                pos = members.index(node)
                succ = members[(pos + 1) % len(members)]
                assert succ in net.links[node], (
                    f"missing depth-{depth} successor for {node}"
                )

    def test_merge_links_inside_gap(self, net):
        """Out-of-domain links are closer than the lower-level successor
        (condition (b) analogue), except the always-kept level successor."""
        space = net.space
        hierarchy = net.hierarchy
        for node in net.node_ids[:50]:
            path = hierarchy.path_of(node)
            for link in net.links[node]:
                shared = lca(path, hierarchy.path_of(link))
                if len(shared) >= len(path):
                    continue  # within the leaf domain: Symphony links, no (b)
                own = hierarchy.sorted_members(path[: len(shared) + 1])
                own_dists = [space.ring_distance(node, o) for o in own if o != node]
                if not own_dists:
                    continue
                dist = space.ring_distance(node, link)
                # Successors at every enclosing level are always linked; any
                # other cross-domain link must sit strictly inside the gap.
                level_successors = set()
                for depth in range(len(shared) + 1):
                    members = hierarchy.sorted_members(path[:depth])
                    idx = members.index(node)
                    level_successors.add(members[(idx + 1) % len(members)])
                assert dist < min(own_dists) or link in level_successors

    def test_links_valid(self, net):
        net.check_links_valid()


class TestRouting:
    def test_total_delivery(self, net):
        rng = random.Random(1)
        for _ in range(150):
            a, b = rng.sample(net.node_ids, 2)
            r = route_ring(net, a, b)
            assert r.success and r.terminal == b

    def test_hops_logarithmic(self, net):
        rng = random.Random(2)
        hops = [
            route_ring(net, *rng.sample(net.node_ids, 2)).hops for _ in range(200)
        ]
        assert statistics.mean(hops) < 2 * math.log2(net.size)

    def test_lookahead_works_and_saves(self, net):
        rng = random.Random(3)
        pairs = [rng.sample(net.node_ids, 2) for _ in range(120)]
        greedy, ahead = [], []
        for a, b in pairs:
            r1 = route_ring(net, a, b)
            r2 = route_ring_lookahead(net, a, b)
            assert r1.success and r2.success and r2.terminal == b
            greedy.append(r1.hops)
            ahead.append(r2.hops)
        assert statistics.mean(ahead) <= statistics.mean(greedy)

    def test_intra_domain_locality(self, net):
        """Canon locality holds for Cacophony too."""
        rng = random.Random(4)
        hierarchy = net.hierarchy
        for _ in range(100):
            a, b = rng.sample(net.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            r = route_ring(net, a, b)
            assert all(
                hierarchy.path_of(n)[: len(shared)] == shared for n in r.path
            )


class TestScaling:
    def test_flat_matches_symphony_shape(self):
        flat = build(size=400, levels=1, seed=5)
        deep = build(size=400, levels=4, seed=5)
        # Canon versions keep roughly the flat degree budget.
        assert abs(flat.average_degree() - deep.average_degree()) < 3.0
