"""Differential oracles: they pass on agreement and flag divergence.

The builder oracle is trusted by ``test_perf_build``; here it is tested
*as a detector* — injected divergences must surface as violations.  The
routing oracle gets the property treatment: over seeded grids of
(family, seed, alive-fraction), batch kernel routes must agree hop-for-hop
with the scalar failure-aware engines.
"""

from __future__ import annotations

import random

import pytest

from repro.core.routing import route
from repro.verify.builders import FAMILIES, small_network
from repro.verify.oracles import (
    BuildComparison,
    compare_builders,
    compare_routing,
    ks_critical,
    ks_distance,
)


class TestBuilderOracle:
    def test_equivalent_builds_pass(self):
        from repro.core.hierarchy import build_uniform_hierarchy
        from repro.core.idspace import IdSpace
        from repro.dhts.naive import NaiveHierarchicalChord

        rng = random.Random(31)
        space = IdSpace(32)
        ids = space.random_ids(200, rng)
        hierarchy = build_uniform_hierarchy(ids, 4, 2, rng)
        comparison = compare_builders(
            lambda un: NaiveHierarchicalChord(space, hierarchy, un)
        )
        assert comparison.equivalent
        assert comparison.ref.built_with == "python"
        assert comparison.bulk.built_with == "numpy"

    def test_injected_divergence_is_reported(self):
        from repro.core.hierarchy import build_uniform_hierarchy
        from repro.core.idspace import IdSpace
        from repro.dhts.naive import NaiveHierarchicalChord

        rng = random.Random(32)
        space = IdSpace(32)
        ids = space.random_ids(200, rng)
        hierarchy = build_uniform_hierarchy(ids, 4, 2, rng)

        def factory(use_numpy):
            net = NaiveHierarchicalChord(space, hierarchy, use_numpy).build()
            if use_numpy:  # sabotage the bulk build only
                node = net.node_ids[7]
                net.links[node] = net.links[node][1:]
            return net

        comparison = compare_builders(factory)
        assert not comparison.equivalent
        assert any("link tables differ" in v.message for v in comparison.violations)

    def test_invalid_table_in_either_build_is_flagged(self):
        from repro.core.hierarchy import build_uniform_hierarchy
        from repro.core.idspace import IdSpace
        from repro.dhts.naive import NaiveHierarchicalChord

        rng = random.Random(33)
        space = IdSpace(32)
        ids = space.random_ids(200, rng)
        hierarchy = build_uniform_hierarchy(ids, 4, 2, rng)

        def factory(use_numpy):
            net = NaiveHierarchicalChord(space, hierarchy, use_numpy).build()
            if use_numpy:
                node = net.node_ids[0]
                net.links[node] = sorted(net.links[node] + [node])
            return net

        comparison = compare_builders(factory)
        assert any(
            "invalid link table" in v.message for v in comparison.violations
        )

    def test_ks_helpers(self):
        rng = random.Random(34)
        same = [rng.random() for _ in range(500)]
        other = [rng.random() ** 3 for _ in range(500)]
        assert ks_distance(same, same) < ks_critical(500, 500)
        assert ks_distance(same, other) > ks_critical(500, 500)


class TestRoutingOracle:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_full_membership_agreement(self, family):
        net = small_network(family, seed=41)
        rng = random.Random(f"routing:{family}")
        ids = net.node_ids
        pairs = [
            (ids[rng.randrange(len(ids))], net.space.random_id(rng))
            for _ in range(40)
        ]
        assert compare_routing(net, pairs) == []

    @pytest.mark.parametrize("family", ("chord", "crescendo", "kademlia", "can"))
    @pytest.mark.parametrize("seed", (0, 1, 2))
    @pytest.mark.parametrize("dead_fraction", (0.1, 0.3))
    def test_alive_filtered_agreement(self, family, seed, dead_fraction):
        """Property: batch and scalar engines agree under failures too."""
        net = small_network(family, seed=seed)
        rng = random.Random(f"alive:{family}:{seed}:{dead_fraction}")
        ids = list(net.node_ids)
        dead = set(rng.sample(ids, int(len(ids) * dead_fraction)))
        alive = set(ids) - dead
        sources = sorted(alive)
        pairs = [
            (sources[rng.randrange(len(sources))], net.space.random_id(rng))
            for _ in range(30)
        ]
        assert compare_routing(net, pairs, alive=alive) == []

    def test_divergence_is_attributed_to_a_hop(self):
        net = small_network("chord", seed=42)
        ids = net.node_ids
        src, key = ids[0], ids[len(ids) // 2]
        scalar = route(net, src, key)
        assert scalar.success and len(scalar.path) >= 2
        assert compare_routing(net, [(src, key)]) == []  # compiles the net
        # Remove the scalar engine's first hop *after* the batch kernel
        # memoised its compiled tables: the engines now see different
        # networks, and the oracle must attribute the divergence to src.
        first_hop = scalar.path[1]
        net.links[src] = [t for t in net.links[src] if t != first_hop]
        violations = compare_routing(net, [(src, key)])
        assert violations
        assert violations[0].node == src
