"""Unit + property tests for the identifier space primitives."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.idspace import (
    IdSpace,
    predecessor_index,
    sorted_unique,
    successor_index,
)

IDS8 = st.integers(min_value=0, max_value=255)


class TestIdSpaceBasics:
    def test_size(self):
        assert IdSpace(8).size == 256
        assert IdSpace(32).size == 2**32

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IdSpace(0)

    def test_contains(self):
        space = IdSpace(8)
        assert space.contains(0)
        assert space.contains(255)
        assert not space.contains(256)
        assert not space.contains(-1)

    def test_validate_passes_through(self):
        assert IdSpace(8).validate(42) == 42

    def test_validate_raises(self):
        with pytest.raises(ValueError):
            IdSpace(8).validate(300)

    def test_add_wraps(self):
        space = IdSpace(8)
        assert space.add(250, 10) == 4

    def test_prefix(self):
        space = IdSpace(8)
        assert space.prefix(0b10110011, 3) == 0b101
        assert space.prefix(0b10110011, 0) == 0
        assert space.prefix(0b10110011, 8) == 0b10110011

    def test_prefix_bad_length(self):
        with pytest.raises(ValueError):
            IdSpace(8).prefix(1, 9)

    def test_top_bit(self):
        space = IdSpace(8)
        assert space.top_bit(0) == -1
        assert space.top_bit(1) == 0
        assert space.top_bit(128) == 7


class TestDistances:
    def test_ring_distance_forward(self):
        space = IdSpace(4)
        assert space.ring_distance(2, 5) == 3

    def test_ring_distance_wraps(self):
        space = IdSpace(4)
        assert space.ring_distance(14, 2) == 4

    def test_ring_distance_self(self):
        assert IdSpace(4).ring_distance(7, 7) == 0

    def test_ring_distance_asymmetric(self):
        space = IdSpace(4)
        assert space.ring_distance(2, 5) + space.ring_distance(5, 2) == 16

    def test_xor_distance_symmetric(self):
        space = IdSpace(8)
        assert space.xor_distance(12, 200) == space.xor_distance(200, 12)

    def test_xor_distance_zero_iff_equal(self):
        space = IdSpace(8)
        assert space.xor_distance(9, 9) == 0
        assert space.xor_distance(9, 10) != 0

    @given(a=IDS8, b=IDS8, c=IDS8)
    def test_xor_triangle_inequality(self, a, b, c):
        space = IdSpace(8)
        assert space.xor_distance(a, c) <= space.xor_distance(
            a, b
        ) + space.xor_distance(b, c)

    @given(a=IDS8, b=IDS8)
    def test_ring_distances_sum_to_size(self, a, b):
        space = IdSpace(8)
        if a == b:
            assert space.ring_distance(a, b) == 0
        else:
            assert space.ring_distance(a, b) + space.ring_distance(b, a) == 256


class TestHashing:
    def test_hash_deterministic(self):
        space = IdSpace(32)
        assert space.hash_key("hello") == space.hash_key("hello")

    def test_hash_in_range(self):
        space = IdSpace(8)
        for key in ("a", "b", 42, b"raw"):
            assert 0 <= space.hash_key(key) < 256

    def test_hash_bytes_vs_str_differ_or_not_crash(self):
        space = IdSpace(32)
        space.hash_key(b"abc")
        space.hash_key("abc")

    def test_random_id_in_range(self):
        space = IdSpace(8)
        rng = random.Random(1)
        assert all(0 <= space.random_id(rng) < 256 for _ in range(50))

    def test_random_ids_distinct(self):
        space = IdSpace(8)
        ids = space.random_ids(100, random.Random(2))
        assert len(set(ids)) == 100

    def test_random_ids_too_many(self):
        with pytest.raises(ValueError):
            IdSpace(2).random_ids(5, random.Random(0))

    def test_random_id_numpy_generator(self):
        import numpy as np

        space = IdSpace(16)
        gen = np.random.default_rng(3)
        assert 0 <= space.random_id(gen) < space.size


class TestSuccessorIndex:
    def test_exact_match(self):
        assert successor_index([10, 20, 30], 20) == 1

    def test_between(self):
        assert successor_index([10, 20, 30], 15) == 1

    def test_wraps(self):
        assert successor_index([10, 20, 30], 35) == 0

    def test_before_first(self):
        assert successor_index([10, 20, 30], 5) == 0

    @given(st.lists(IDS8, min_size=1, max_size=20, unique=True), IDS8)
    def test_matches_bruteforce(self, ids, target):
        ids = sorted(ids)
        idx = successor_index(ids, target)
        geq = [i for i in ids if i >= target]
        expected = min(geq) if geq else ids[0]
        assert ids[idx] == expected


class TestPredecessorIndex:
    def test_exact_match(self):
        assert predecessor_index([10, 20, 30], 20) == 1

    def test_between(self):
        assert predecessor_index([10, 20, 30], 25) == 1

    def test_wraps(self):
        assert predecessor_index([10, 20, 30], 5) == 2

    @given(st.lists(IDS8, min_size=1, max_size=20, unique=True), IDS8)
    def test_matches_bruteforce(self, ids, target):
        ids = sorted(ids)
        idx = predecessor_index(ids, target)
        leq = [i for i in ids if i <= target]
        expected = max(leq) if leq else ids[-1]
        assert ids[idx] == expected

    @given(st.lists(IDS8, min_size=1, max_size=20, unique=True), IDS8)
    def test_responsibility_rule(self, ids, key):
        """The predecessor-or-equal node is responsible for [own, next)."""
        ids = sorted(ids)
        space = IdSpace(8)
        owner = ids[predecessor_index(ids, key)]
        dist_owner = space.ring_distance(owner, key)
        assert all(
            space.ring_distance(i, key) >= dist_owner for i in ids
        ), "some node is clockwise-closer behind the key than the owner"


def test_sorted_unique():
    assert sorted_unique([3, 1, 2, 3, 1]) == [1, 2, 3]
