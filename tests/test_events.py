"""Tests for the discrete-event simulator core."""

from __future__ import annotations

import pytest

from repro.simulation.events import (
    CalendarQueue,
    ConstantLatency,
    FastSimulator,
    MessageLayer,
    MessageStats,
    Simulator,
)


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append("b"))
        sim.schedule(1, lambda: log.append("a"))
        sim.schedule(9, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9

    def test_fifo_for_ties(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append(1))
        sim.schedule(1, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append("early"))
        sim.schedule(10, lambda: log.append("late"))
        sim.run(until=5)
        assert log == ["early"]
        assert sim.pending == 1
        sim.run()
        assert log == ["early", "late"]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 3:
                sim.schedule(1, chain)

        sim.schedule(1, chain)
        sim.run()
        assert log == [1, 2, 3]

    def test_event_budget(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_exact_budget_drain_is_not_an_error(self):
        # Regression: draining the queue with exactly max_events events used
        # to raise a spurious "budget exhausted" error.
        sim = Simulator()
        for i in range(100):
            sim.schedule(i, lambda: None)
        assert sim.run(max_events=100) == 100
        assert sim.pending == 0
        assert sim.events_run == 100

    def test_budget_error_reports_events_and_virtual_time(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        with pytest.raises(RuntimeError) as excinfo:
            sim.run(max_events=50)
        message = str(excinfo.value)
        assert "50 events run" in message
        assert "virtual time 50" in message
        assert sim.events_run == 50

    def test_tracer_sees_each_drained_event(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert len(tracer) == 2
        assert [r["attrs"]["t"] for r in tracer.records] == [1, 2]

    def test_active_tracer_captured_at_construction(self):
        from repro.obs.trace import tracing

        with tracing() as tracer:
            sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()
        assert len(tracer) == 1

    def test_events_run_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        assert sim.run() == 5
        assert sim.events_run == 5


class TestLatencyAndStats:
    def test_constant_latency(self):
        assert ConstantLatency(3.5)(1, 2) == 3.5

    def test_stats_counts(self):
        stats = MessageStats()
        stats.record("x")
        stats.record("x")
        stats.record("y")
        assert stats.total == 3
        assert stats.counts["x"] == 2

    def test_stats_reset(self):
        stats = MessageStats()
        stats.record("x")
        snapshot = stats.reset()
        assert snapshot["x"] == 1
        assert stats.total == 0

    def test_message_layer_delays_and_counts(self):
        sim = Simulator()
        layer = MessageLayer(sim, ConstantLatency(2.0))
        log = []
        layer.send(1, 2, "ping", lambda: log.append(sim.now))
        sim.run()
        assert log == [2.0]
        assert layer.stats.counts["ping"] == 1

    def test_stats_sink_mirrors_counts(self):
        seen = []
        stats = MessageStats(sink=seen.append)
        stats.record("join")
        stats.record("join")
        assert stats.counts["join"] == 2
        assert seen == ["join", "join"]

    def test_message_layer_feeds_metrics_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator()
        layer = MessageLayer(sim, ConstantLatency(), metrics=registry)
        layer.send(1, 2, "join", lambda: None)
        layer.send(2, 3, "stabilize", lambda: None)
        layer.send(3, 1, "join", lambda: None)
        # Mirroring is batched: counts land in the registry when the
        # simulator drains its queue, not per message.
        assert registry.counter("messages.join").value == 0
        sim.run()
        assert registry.counter("messages.join").value == 2
        assert registry.counter("messages.stabilize").value == 1
        # The layer's own Counter keeps working alongside the sink.
        assert layer.stats.total == 3

    def test_message_layer_captures_active_registry(self):
        from repro.obs.metrics import collecting

        with collecting() as registry:
            layer = MessageLayer(Simulator(), ConstantLatency())
        layer.send(1, 2, "ping", lambda: None)
        layer.stats.flush()
        assert registry.counter("messages.ping").value == 1

    def test_stats_reset_flushes_pending_batched_counts(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stats = MessageStats(batch_sink=registry.message_sink_batch())
        stats.record("join")
        stats.record("join")
        assert registry.counter("messages.join").value == 0
        snapshot = stats.reset()
        assert snapshot["join"] == 2
        assert registry.counter("messages.join").value == 2
        assert not stats.pending


class TestCalendarQueue:
    def test_same_total_order_as_heap(self):
        import heapq
        import random

        rng = random.Random(7)
        items = [(rng.random() * 40, seq, None) for seq in range(500)]
        heap = list(items)
        heapq.heapify(heap)
        cal = CalendarQueue(bucket_width=1.0)
        for item in items:
            cal.push(item)
        while heap:
            assert cal.peek() == heap[0]
            assert cal.pop() == heapq.heappop(heap)
        assert len(cal) == 0
        assert cal.peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarQueue(bucket_width=0)

    def test_interleaved_push_pop(self):
        cal = CalendarQueue(bucket_width=2.0)
        cal.push((5.0, 0, "a"))
        cal.push((1.0, 1, "b"))
        assert cal.pop() == (1.0, 1, "b")
        cal.push((0.5, 2, "c"))
        assert cal.pop() == (0.5, 2, "c")
        assert cal.pop() == (5.0, 0, "a")


class TestFastSimulator:
    def test_matches_reference_execution_order(self):
        import random

        rng = random.Random(13)
        delays = [rng.random() * 9 for _ in range(300)]
        logs = []
        for cls in (Simulator, FastSimulator):
            sim = cls()
            log = []
            for i, d in enumerate(delays):
                sim.schedule(d, lambda i=i: log.append(i))
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]

    def test_run_until_and_pending(self):
        sim = FastSimulator()
        log = []
        sim.schedule(1, lambda: log.append("early"))
        sim.schedule(10, lambda: log.append("late"))
        sim.run(until=5)
        assert log == ["early"]
        assert sim.pending == 1
        sim.run()
        assert log == ["early", "late"]

    def test_events_scheduled_during_run(self):
        sim = FastSimulator()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 3:
                sim.schedule(1, chain)

        sim.schedule(1, chain)
        sim.run()
        assert log == [1, 2, 3]

    def test_event_budget(self):
        sim = FastSimulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestLightweightEvents:
    def test_post_dispatches_registered_handler(self):
        sim = Simulator()
        log = []
        sim.on("deliver", lambda src, dst: log.append((sim.now, src, dst)))
        sim.post(2, "deliver", 1, 9)
        sim.post(1, "deliver", 4, 5)
        assert sim.run() == 2
        assert log == [(1, 4, 5), (2, 1, 9)]

    def test_post_and_schedule_interleave_in_order(self):
        sim = FastSimulator()
        log = []
        sim.on("tick", log.append)
        sim.schedule(1, lambda: log.append("closure"))
        sim.post(1, "tick", "tuple")
        sim.run()
        assert log == ["closure", "tuple"]

    def test_post_negative_delay_rejected(self):
        sim = Simulator()
        sim.on("x", lambda: None)
        with pytest.raises(ValueError):
            sim.post(-1, "x")

    def test_unregistered_kind_raises(self):
        sim = Simulator()
        sim.post(0, "nope")
        with pytest.raises(KeyError):
            sim.run()

    def test_tracer_labels_posted_events_by_kind(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.on("deliver", lambda: None)
        sim.post(1, "deliver")
        sim.run()
        assert tracer.records[0]["attrs"]["action"] == "deliver"

    def test_drain_hook_runs_per_drain(self):
        sim = Simulator()
        calls = []
        sim.add_drain_hook(lambda: calls.append(sim.now))
        sim.schedule(1, lambda: None)
        sim.run()
        sim.run()
        assert calls == [1, 1]
