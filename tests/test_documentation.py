"""Documentation coverage: every public module, class and function in the
library carries a docstring (deliverable (e): doc comments on every public
item), and the project documents exist with their required sections."""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

ROOT = Path(repro.__file__).resolve().parent
PROJECT = ROOT.parent.parent


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        undocumented = []
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-export; documented at its definition site
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__}: missing docstrings on {undocumented}"
        )

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_methods_documented(self, module):
        undocumented = []
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if cls.__module__ != module.__name__:
                continue
            for name, method in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{cls_name}.{name}")
        assert not undocumented, (
            f"{module.__name__}: missing docstrings on {undocumented}"
        )


class TestProjectDocuments:
    def test_readme_sections(self):
        text = (PROJECT / "README.md").read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture"):
            assert heading in text

    def test_design_sections(self):
        text = (PROJECT / "DESIGN.md").read_text()
        assert "System inventory" in text
        assert "Experiment index" in text
        assert "Interpretation notes" in text

    def test_experiments_covers_every_figure(self):
        text = (PROJECT / "EXPERIMENTS.md").read_text()
        for fig in range(3, 10):
            assert f"Figure {fig}" in text

    def test_paper_map_exists(self):
        text = (PROJECT / "docs" / "paper_map.md").read_text()
        for section in ("§1", "§2", "§3", "§4", "§5"):
            assert section in text
