"""Tests for group-based proximity adaptation (Section 3.6)."""

from __future__ import annotations

import random
import statistics

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring
from repro.proximity.groups import (
    ProximityChordNetwork,
    ProximityCrescendoNetwork,
    _GroupIndex,
    group_prefix_bits,
    route_grouped,
)


def fake_latency(a: int, b: int) -> float:
    """Deterministic synthetic latency: distance in a 1-D space of id hashes."""
    return abs((a % 9973) - (b % 9973)) / 10.0


def build_prox_chord(size=500, seed=0, group_target=8):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 4, 1, rng)
    return ProximityChordNetwork(
        space, h, fake_latency, rng, group_target=group_target
    ).build()


def build_prox_crescendo(size=500, seed=0, levels=3):
    rng = random.Random(seed)
    space = IdSpace(32)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 4, levels, rng)
    return ProximityCrescendoNetwork(space, h, fake_latency, rng).build()


class TestGroupBits:
    def test_small_population(self):
        assert group_prefix_bits(5, 8) == 0

    def test_scales_logarithmically(self):
        assert group_prefix_bits(64, 8) == 3
        assert group_prefix_bits(1024, 8) == 7
        assert group_prefix_bits(2048, 8) == 8

    def test_expected_group_size(self):
        bits = group_prefix_bits(4096, 8)
        assert abs(4096 / (1 << bits) - 8) < 4


class TestGroupIndex:
    @pytest.fixture(scope="class")
    def index(self):
        rng = random.Random(1)
        space = IdSpace(16)
        ids = sorted(space.random_ids(200, rng))
        return _GroupIndex(space, ids, 4)

    def test_members_partition_nodes(self, index):
        total = sum(len(m) for m in index.members.values())
        assert total == 200

    def test_group_of(self, index):
        for group, members in index.members.items():
            for member in members:
                assert index.group_of(member) == group

    def test_existing_group_lookup(self, index):
        for group in index.group_ids:
            assert index.existing_group_at_or_after(group) == group

    def test_group_distance_cyclic(self, index):
        assert index.group_distance(15, 1) == 2
        assert index.group_distance(3, 3) == 0

    def test_best_member_minimises_latency(self, index):
        rng = random.Random(2)
        src = index.members[index.group_ids[0]][0]
        target = index.group_ids[-1]
        best = index.best_member(src, target, fake_latency, rng, sample=10_000)
        expected = min(
            (m for m in index.members[target] if m != src),
            key=lambda c: fake_latency(src, c),
        )
        assert best == expected

    def test_best_member_excludes_self(self, index):
        group = index.group_ids[0]
        src = index.members[group][0]
        best = index.best_member(src, group, fake_latency, random.Random(3))
        assert best != src


class TestProximityChord:
    @pytest.fixture(scope="class")
    def net(self):
        return build_prox_chord()

    def test_intra_group_dense(self, net):
        for node in net.node_ids[:50]:
            own = net.groups.group_of(node)
            for member in net.groups.members[own]:
                if member != node:
                    assert member in net.links[node]

    def test_routing_total(self, net):
        rng = random.Random(4)
        for _ in range(200):
            a, b = rng.sample(net.node_ids, 2)
            r = route_grouped(net, a, b)
            assert r.success and r.terminal == b

    def test_key_routing(self, net):
        rng = random.Random(5)
        for _ in range(100):
            key = net.space.random_id(rng)
            src = rng.choice(net.node_ids)
            r = route_grouped(net, src, key)
            assert r.success and r.terminal == net.responsible_node(key)

    def test_group_hops_logarithmic(self, net):
        import math

        rng = random.Random(6)
        hops = [
            route_grouped(net, *rng.sample(net.node_ids, 2)).hops
            for _ in range(200)
        ]
        assert statistics.mean(hops) < math.log2(net.size)


class TestProximityCrescendo:
    @pytest.fixture(scope="class")
    def net(self):
        return build_prox_crescendo()

    def test_routing_total(self, net):
        rng = random.Random(7)
        for _ in range(200):
            a, b = rng.sample(net.node_ids, 2)
            r = route_grouped(net, a, b)
            assert r.success and r.terminal == b

    def test_lower_levels_are_crescendo(self, net):
        """Below the top level the construction is plain Crescendo: links
        between same-depth-1-domain nodes match the pure construction."""
        from repro.dhts.crescendo import CrescendoNetwork

        pure = CrescendoNetwork(net.space, net.hierarchy).build()
        hierarchy = net.hierarchy
        for node in net.node_ids[:40]:
            d1 = hierarchy.path_of(node)[:1]
            mine = {
                l for l in net.links[node] if hierarchy.path_of(l)[:1] == d1
            }
            pure_local = {
                l for l in pure.links[node] if hierarchy.path_of(l)[:1] == d1
            }
            # The prox variant may add same-domain *group* links on top.
            assert pure_local <= mine

    def test_intra_domain_locality_preserved(self, net):
        rng = random.Random(8)
        hierarchy = net.hierarchy
        checked = 0
        while checked < 80:
            a, b = rng.sample(net.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            if not shared:
                continue  # top-level routing may use group detours
            r = route_grouped(net, a, b)
            assert r.success
            checked += 1

    def test_proximity_reduces_latency(self):
        """Group links pick nearby members: mean top-level latency drops
        versus plain Crescendo under the synthetic metric."""
        rng = random.Random(9)
        space = IdSpace(32)
        ids = space.random_ids(600, rng)
        h = build_uniform_hierarchy(ids, 4, 2, rng)
        from repro.dhts.crescendo import CrescendoNetwork

        plain = CrescendoNetwork(space, h).build()
        prox = ProximityCrescendoNetwork(space, h, fake_latency, rng).build()
        pairs = [rng.sample(ids, 2) for _ in range(300)]
        plain_lat = statistics.mean(
            route_ring(plain, a, b).latency(fake_latency) for a, b in pairs
        )
        prox_lat = statistics.mean(
            route_grouped(prox, a, b).latency(fake_latency) for a, b in pairs
        )
        assert prox_lat < plain_lat
