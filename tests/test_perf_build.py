"""Bulk builders must be equivalent to the scalar reference constructions.

Deterministic families (naive, LanCrescendo, deterministic Kademlia/Kandy,
CAN, deterministic Can-Can) must produce *identical* link tables on both
paths.  Randomized families consume randomness in a different order, so
their tables are compared distributionally — mean degree, and a two-sample
Kolmogorov-Smirnov test on the harmonic link-distance samples — while every
RNG-independent side output (Cacophony/ND-Crescendo ``gap``, Kandy
``contact_depth``, Can-Can ``edge_depth``, Kademlia/Kandy degree sequences)
must still match exactly.
"""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro.analysis.metrics import DegreeStats
from repro.core.hierarchy import Hierarchy, build_uniform_hierarchy
from repro.core.idspace import IdSpace
from repro.dhts.cacophony import CacophonyNetwork
from repro.dhts.can import PrefixTree, build_can
from repro.dhts.cancan import CanCanNetwork, build_cancan
from repro.dhts.kademlia import KademliaNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.mixed import LanCrescendoNetwork
from repro.dhts.naive import NaiveHierarchicalChord
from repro.dhts.ndchord import NDChordNetwork, NDCrescendoNetwork
from repro.dhts.symphony import SymphonyNetwork, draw_long_links
from repro.obs import metrics as obs_metrics
from repro.perf import build as perf_build
from repro.perf.build import (
    BULK_THRESHOLD,
    builder_tag,
    bulk_enabled,
    set_build_mode,
)

SIZE = 300
BITS = 32


@pytest.fixture(autouse=True)
def _restore_build_mode():
    yield
    set_build_mode("auto")


def _space():
    return IdSpace(BITS)


def _hierarchy(size, seed=11, levels=3, fanout=4):
    rng = random.Random(seed)
    space = _space()
    ids = space.random_ids(size, rng)
    return space, build_uniform_hierarchy(ids, fanout, levels, rng)


def _pair(factory):
    """Build the same network twice: scalar reference vs. bulk path."""
    ref = factory(False).build()
    bulk = factory(True).build()
    assert ref.built_with == "python"
    assert bulk.built_with == "numpy"
    return ref, bulk


# ------------------------------------------------------ deterministic families


class TestDeterministicEquality:
    def test_naive(self):
        space, hierarchy = _hierarchy(SIZE)
        ref, bulk = _pair(lambda un: NaiveHierarchicalChord(space, hierarchy, un))
        assert ref.links == bulk.links

    def test_lan_crescendo(self):
        space, hierarchy = _hierarchy(SIZE)
        ref, bulk = _pair(lambda un: LanCrescendoNetwork(space, hierarchy, un))
        assert ref.links == bulk.links
        assert ref.gap == bulk.gap

    def test_kademlia_deterministic(self):
        space, hierarchy = _hierarchy(SIZE)
        ref, bulk = _pair(
            lambda un: KademliaNetwork(space, hierarchy, None, 1, use_numpy=un)
        )
        assert ref.links == bulk.links

    def test_kandy_deterministic(self):
        space, hierarchy = _hierarchy(SIZE)
        ref, bulk = _pair(
            lambda un: KandyNetwork(space, hierarchy, None, 1, use_numpy=un)
        )
        assert ref.links == bulk.links
        assert ref.contact_depth == bulk.contact_depth

    @pytest.mark.parametrize("policy", ["random", "largest"])
    def test_can(self, policy):
        space = _space()
        ref = build_can(space, SIZE, random.Random(5), policy, use_numpy=False)
        bulk = build_can(space, SIZE, random.Random(5), policy, use_numpy=True)
        assert ref.built_with == "python" and bulk.built_with == "numpy"
        assert ref.node_ids == bulk.node_ids
        assert ref.links == bulk.links

    def test_cancan_deterministic(self):
        space = _space()
        paths = [("lan%d" % (i % 5),) for i in range(SIZE)]
        tree = PrefixTree(space.bits)
        leaves = tree.grow_aligned(paths, random.Random(6))
        hierarchy = Hierarchy()
        prefixes = {}
        for i, leaf in enumerate(leaves):
            padded = leaf.padded(space.bits)
            prefixes[padded] = leaf
            hierarchy.place(padded, paths[i])
        ref, bulk = _pair(
            lambda un: CanCanNetwork(space, hierarchy, prefixes, None, use_numpy=un)
        )
        assert ref.links == bulk.links
        assert ref.edge_depth == bulk.edge_depth

    def test_deterministic_kademlia_wide_bucket_stays_reference(self):
        space, hierarchy = _hierarchy(SIZE)
        net = KademliaNetwork(space, hierarchy, None, 3, use_numpy=True).build()
        # Bulk has no deterministic multi-contact path; the build must fall
        # back to the scalar reference rather than raise or approximate.
        assert net.built_with == "python"
        with pytest.raises(ValueError):
            perf_build.kademlia_link_sets(net.node_ids, space, None, bucket_size=3)


# --------------------------------------------------------- randomized families


def _ks_distance(sample_a, sample_b):
    """Two-sample Kolmogorov-Smirnov statistic, no scipy required."""
    a = sorted(sample_a)
    b = sorted(sample_b)
    i = j = 0
    d = 0.0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            i += 1
        else:
            j += 1
        d = max(d, abs(i / len(a) - j / len(b)))
    return d


def _ks_critical(m, n, alpha=0.001):
    c = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c * math.sqrt((m + n) / (m * n))


def _link_distances(net):
    space = net.space
    return [
        space.ring_distance(node, link)
        for node in net.node_ids
        for link in net.links[node]
    ]


def _mean_degree(net):
    return sum(len(net.links[n]) for n in net.node_ids) / net.size


class TestRandomizedEquivalence:
    def test_symphony_distribution(self):
        space, hierarchy = _hierarchy(512, levels=1)
        ref, bulk = _pair(
            lambda un: SymphonyNetwork(
                space, hierarchy, random.Random(21), use_numpy=un
            )
        )
        assert abs(_mean_degree(ref) - _mean_degree(bulk)) < 0.5
        da, db = _link_distances(ref), _link_distances(bulk)
        assert _ks_distance(da, db) < _ks_critical(len(da), len(db))

    def test_cacophony_distribution_and_gap(self):
        space, hierarchy = _hierarchy(512)
        ref, bulk = _pair(
            lambda un: CacophonyNetwork(space, hierarchy, random.Random(22), un)
        )
        assert ref.gap == bulk.gap  # successor structure is rng-independent
        assert abs(_mean_degree(ref) - _mean_degree(bulk)) < 0.5
        da, db = _link_distances(ref), _link_distances(bulk)
        assert _ks_distance(da, db) < _ks_critical(len(da), len(db))

    def test_ndchord_distribution(self):
        space, hierarchy = _hierarchy(512)
        ref, bulk = _pair(
            lambda un: NDChordNetwork(space, hierarchy, random.Random(23), un)
        )
        assert abs(_mean_degree(ref) - _mean_degree(bulk)) < 0.5

    def test_ndcrescendo_distribution_and_gap(self):
        space, hierarchy = _hierarchy(512)
        ref, bulk = _pair(
            lambda un: NDCrescendoNetwork(space, hierarchy, random.Random(24), un)
        )
        assert ref.gap == bulk.gap
        assert abs(_mean_degree(ref) - _mean_degree(bulk)) < 0.5

    @pytest.mark.parametrize("bucket_size", [1, 3])
    def test_kademlia_random_degree_sequence(self, bucket_size):
        # Degree is the number of occupied (bucket, slot) pairs, which the
        # id population fixes regardless of which contacts the rng picked.
        space, hierarchy = _hierarchy(SIZE)
        ref, bulk = _pair(
            lambda un: KademliaNetwork(
                space, hierarchy, random.Random(25), bucket_size, use_numpy=un
            )
        )
        assert ref.degrees() == bulk.degrees()

    @pytest.mark.parametrize("bucket_size", [1, 3])
    def test_kandy_random_contact_depth(self, bucket_size):
        space, hierarchy = _hierarchy(SIZE)
        ref, bulk = _pair(
            lambda un: KandyNetwork(
                space, hierarchy, random.Random(26), bucket_size, use_numpy=un
            )
        )
        assert ref.contact_depth == bulk.contact_depth
        assert ref.degrees() == bulk.degrees()

    def test_cancan_random_edge_depth(self):
        space = _space()
        paths = [("lan%d" % (i % 5),) for i in range(SIZE)]
        ref = build_cancan(space, SIZE, random.Random(27), paths, use_numpy=False)
        bulk = build_cancan(space, SIZE, random.Random(27), paths, use_numpy=True)
        assert ref.edge_depth == bulk.edge_depth
        assert abs(_mean_degree(ref) - _mean_degree(bulk)) < 0.5


# --------------------------------------------------------- short-draw counter


class TestShortDrawCounter:
    def test_scalar_reports_exhausted_budget(self):
        space = _space()
        members = sorted(random.Random(1).sample(range(space.size), 3))
        with obs_metrics.collecting() as registry:
            links = draw_long_links(members[0], members, 5, space, random.Random(2))
        # Only two distinct non-self targets exist; 5 are impossible.
        assert len(links) < 5
        assert registry.counter("build.symphony.short_draws").value >= 5 - len(links)

    def test_bulk_reports_exhausted_budget(self):
        space, hierarchy = _hierarchy(70, levels=1)
        with obs_metrics.collecting() as registry:
            net = SymphonyNetwork(
                space, hierarchy, random.Random(3), links_per_node=80, use_numpy=True
            ).build()
        assert net.built_with == "numpy"
        assert registry.counter("build.symphony.short_draws").value > 0


# ---------------------------------------------------------- cache interaction


class TestCacheKeying:
    def test_builder_tag_partitions_cache_entries(self, tmp_path):
        from repro.experiments.common import build_crescendo, seeded_rng
        from repro.perf import cache as perf_cache
        from repro.perf.cache import NetworkCache

        token = ("build-tag-test",)
        with perf_cache.caching(NetworkCache(tmp_path / "networks")) as cache:
            set_build_mode("numpy")
            build_crescendo(128, 2, seeded_rng(*token), cache_token=token)
            set_build_mode("python")
            build_crescendo(128, 2, seeded_rng(*token), cache_token=token)
            # Different builder tags: the second build must not be served
            # the bulk-built entry.
            assert cache.stats() == {"hits": 0, "misses": 2, "stores": 2}
            build_crescendo(128, 2, seeded_rng(*token), cache_token=token)
            assert cache.stats()["hits"] == 1


# ------------------------------------------------- dispatch, tags and metrics


class TestDispatch:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            set_build_mode("fortran")

    def test_mode_overrides_threshold(self):
        assert not bulk_enabled(True, BULK_THRESHOLD)
        assert bulk_enabled(True, BULK_THRESHOLD + 1)
        assert not bulk_enabled(False, BULK_THRESHOLD + 1)
        set_build_mode("numpy")
        assert bulk_enabled(False, 2)
        set_build_mode("python")
        assert not bulk_enabled(True, 1 << 20)

    def test_builder_tag_names_the_path(self):
        assert builder_tag(size=BULK_THRESHOLD + 1).startswith("numpy-v")
        assert builder_tag(size=BULK_THRESHOLD) == "python"
        assert builder_tag(use_numpy=False) == "python"
        set_build_mode("python")
        assert builder_tag(size=1 << 20) == "python"

    def test_forced_python_mode_builds_reference(self):
        space, hierarchy = _hierarchy(SIZE)
        set_build_mode("python")
        net = NaiveHierarchicalChord(space, hierarchy, use_numpy=True).build()
        assert net.built_with == "python"

    def test_degree_stats_vectorized_path_matches_scalar(self):
        space, hierarchy = _hierarchy(SIZE)
        net = NaiveHierarchicalChord(space, hierarchy).build()
        stats = DegreeStats.of(net)
        degrees = net.degrees()
        assert stats.mean == statistics.mean(degrees)
        assert stats.maximum == max(degrees)
        assert stats.minimum == min(degrees)
        assert stats.pdf == net.degree_distribution()
