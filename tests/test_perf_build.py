"""Bulk builders must be equivalent to the scalar reference constructions.

The comparisons themselves live in :mod:`repro.verify.oracles` (so the
fuzzer and CLI share them); this module pins the per-family comparison
profile.  Deterministic families (naive, LanCrescendo, deterministic
Kademlia/Kandy, CAN, deterministic Can-Can) must produce *identical* link
tables on both paths.  Randomized families consume randomness in a
different order, so their tables are compared distributionally — mean
degree, and a two-sample Kolmogorov-Smirnov test on the link-distance
samples — while every RNG-independent side output (Cacophony/ND-Crescendo
``gap``, Kandy ``contact_depth``, Can-Can ``edge_depth``, Kademlia/Kandy
degree sequences) must still match exactly.
"""

from __future__ import annotations

import random
import statistics

import pytest

from repro.analysis.metrics import DegreeStats
from repro.core.hierarchy import Hierarchy, build_uniform_hierarchy
from repro.core.idspace import IdSpace
from repro.dhts.cacophony import CacophonyNetwork
from repro.dhts.can import PrefixTree, build_can
from repro.dhts.cancan import CanCanNetwork, build_cancan
from repro.dhts.kademlia import KademliaNetwork
from repro.dhts.kandy import KandyNetwork
from repro.dhts.mixed import LanCrescendoNetwork
from repro.dhts.naive import NaiveHierarchicalChord
from repro.dhts.ndchord import NDChordNetwork, NDCrescendoNetwork
from repro.dhts.symphony import SymphonyNetwork, draw_long_links
from repro.obs import metrics as obs_metrics
from repro.perf import build as perf_build
from repro.perf.build import (
    BULK_THRESHOLD,
    builder_tag,
    bulk_enabled,
    set_build_mode,
)
from repro.verify.oracles import DEGREE_TOLERANCE, KS_ALPHA, compare_builders

SIZE = 300
BITS = 32


@pytest.fixture(autouse=True)
def _restore_build_mode():
    yield
    set_build_mode("auto")


def _space():
    return IdSpace(BITS)


def _hierarchy(size, seed=11, levels=3, fanout=4):
    rng = random.Random(seed)
    space = _space()
    ids = space.random_ids(size, rng)
    return space, build_uniform_hierarchy(ids, fanout, levels, rng)


def _exact(factory, side_attrs=()):
    """Oracle profile for deterministic families: identical link tables."""
    comparison = compare_builders(factory, exact=True, side_attrs=side_attrs)
    comparison.raise_on_violations()
    return comparison


def _distributional(factory, side_attrs=(), compare_degrees=False, ks=True):
    """Oracle profile for randomized families: KS + side-output equality.

    ``compare_degrees`` switches to exact degree-sequence equality (the
    id population fixes degrees for the bucket families); ``ks=False``
    keeps only the mean-degree tolerance (Can-Can's two build paths grow
    different prefix trees, so link distances are not comparable).
    """
    comparison = compare_builders(
        factory,
        exact=False,
        compare_degrees=compare_degrees,
        degree_tolerance=None if compare_degrees else DEGREE_TOLERANCE,
        ks_alpha=KS_ALPHA if ks and not compare_degrees else None,
        side_attrs=side_attrs,
    )
    comparison.raise_on_violations()
    return comparison


# ------------------------------------------------------ deterministic families


class TestDeterministicEquality:
    def test_naive(self):
        space, hierarchy = _hierarchy(SIZE)
        _exact(lambda un: NaiveHierarchicalChord(space, hierarchy, un))

    def test_lan_crescendo(self):
        space, hierarchy = _hierarchy(SIZE)
        _exact(
            lambda un: LanCrescendoNetwork(space, hierarchy, un),
            side_attrs=("gap",),
        )

    def test_kademlia_deterministic(self):
        space, hierarchy = _hierarchy(SIZE)
        _exact(lambda un: KademliaNetwork(space, hierarchy, None, 1, use_numpy=un))

    def test_kandy_deterministic(self):
        space, hierarchy = _hierarchy(SIZE)
        _exact(
            lambda un: KandyNetwork(space, hierarchy, None, 1, use_numpy=un),
            side_attrs=("contact_depth",),
        )

    @pytest.mark.parametrize("policy", ["random", "largest"])
    def test_can(self, policy):
        space = _space()
        _exact(
            lambda un: build_can(
                space, SIZE, random.Random(5), policy, use_numpy=un
            )
        )

    def test_cancan_deterministic(self):
        space = _space()
        paths = [("lan%d" % (i % 5),) for i in range(SIZE)]
        tree = PrefixTree(space.bits)
        leaves = tree.grow_aligned(paths, random.Random(6))
        hierarchy = Hierarchy()
        prefixes = {}
        for i, leaf in enumerate(leaves):
            padded = leaf.padded(space.bits)
            prefixes[padded] = leaf
            hierarchy.place(padded, paths[i])
        _exact(
            lambda un: CanCanNetwork(
                space, hierarchy, prefixes, None, use_numpy=un
            ),
            side_attrs=("edge_depth",),
        )

    def test_deterministic_kademlia_wide_bucket_stays_reference(self):
        space, hierarchy = _hierarchy(SIZE)
        net = KademliaNetwork(space, hierarchy, None, 3, use_numpy=True).build()
        # Bulk has no deterministic multi-contact path; the build must fall
        # back to the scalar reference rather than raise or approximate.
        assert net.built_with == "python"
        with pytest.raises(ValueError):
            perf_build.kademlia_link_sets(net.node_ids, space, None, bucket_size=3)


# --------------------------------------------------------- randomized families


class TestRandomizedEquivalence:
    def test_symphony_distribution(self):
        space, hierarchy = _hierarchy(512, levels=1)
        _distributional(
            lambda un: SymphonyNetwork(
                space, hierarchy, random.Random(21), use_numpy=un
            )
        )

    def test_cacophony_distribution_and_gap(self):
        space, hierarchy = _hierarchy(512)
        # The successor structure (gap) is rng-independent: exact equality.
        _distributional(
            lambda un: CacophonyNetwork(space, hierarchy, random.Random(22), un),
            side_attrs=("gap",),
        )

    def test_ndchord_distribution(self):
        space, hierarchy = _hierarchy(512)
        _distributional(
            lambda un: NDChordNetwork(space, hierarchy, random.Random(23), un)
        )

    def test_ndcrescendo_distribution_and_gap(self):
        space, hierarchy = _hierarchy(512)
        _distributional(
            lambda un: NDCrescendoNetwork(space, hierarchy, random.Random(24), un),
            side_attrs=("gap",),
        )

    @pytest.mark.parametrize("bucket_size", [1, 3])
    def test_kademlia_random_degree_sequence(self, bucket_size):
        # Degree is the number of occupied (bucket, slot) pairs, which the
        # id population fixes regardless of which contacts the rng picked.
        space, hierarchy = _hierarchy(SIZE)
        _distributional(
            lambda un: KademliaNetwork(
                space, hierarchy, random.Random(25), bucket_size, use_numpy=un
            ),
            compare_degrees=True,
        )

    @pytest.mark.parametrize("bucket_size", [1, 3])
    def test_kandy_random_contact_depth(self, bucket_size):
        space, hierarchy = _hierarchy(SIZE)
        _distributional(
            lambda un: KandyNetwork(
                space, hierarchy, random.Random(26), bucket_size, use_numpy=un
            ),
            side_attrs=("contact_depth",),
            compare_degrees=True,
        )

    def test_cancan_random_edge_depth(self):
        space = _space()
        paths = [("lan%d" % (i % 5),) for i in range(SIZE)]
        _distributional(
            lambda un: build_cancan(
                space, SIZE, random.Random(27), paths, use_numpy=un
            ),
            side_attrs=("edge_depth",),
            ks=False,
        )


# --------------------------------------------------------- short-draw counter


class TestShortDrawCounter:
    def test_scalar_reports_exhausted_budget(self):
        space = _space()
        members = sorted(random.Random(1).sample(range(space.size), 3))
        with obs_metrics.collecting() as registry:
            links = draw_long_links(members[0], members, 5, space, random.Random(2))
        # Only two distinct non-self targets exist; 5 are impossible.
        assert len(links) < 5
        assert registry.counter("build.symphony.short_draws").value >= 5 - len(links)

    def test_bulk_reports_exhausted_budget(self):
        space, hierarchy = _hierarchy(70, levels=1)
        with obs_metrics.collecting() as registry:
            net = SymphonyNetwork(
                space, hierarchy, random.Random(3), links_per_node=80, use_numpy=True
            ).build()
        assert net.built_with == "numpy"
        assert registry.counter("build.symphony.short_draws").value > 0


# ---------------------------------------------------------- cache interaction


class TestCacheKeying:
    def test_builder_tag_partitions_cache_entries(self, tmp_path):
        from repro.experiments.common import build_crescendo, seeded_rng
        from repro.perf import cache as perf_cache
        from repro.perf.cache import NetworkCache

        token = ("build-tag-test",)
        with perf_cache.caching(NetworkCache(tmp_path / "networks")) as cache:
            set_build_mode("numpy")
            build_crescendo(128, 2, seeded_rng(*token), cache_token=token)
            set_build_mode("python")
            build_crescendo(128, 2, seeded_rng(*token), cache_token=token)
            # Different builder tags: the second build must not be served
            # the bulk-built entry.
            assert cache.stats() == {"hits": 0, "misses": 2, "stores": 2}
            build_crescendo(128, 2, seeded_rng(*token), cache_token=token)
            assert cache.stats()["hits"] == 1


# ------------------------------------------------- dispatch, tags and metrics


class TestDispatch:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            set_build_mode("fortran")

    def test_mode_overrides_threshold(self):
        assert not bulk_enabled(True, BULK_THRESHOLD)
        assert bulk_enabled(True, BULK_THRESHOLD + 1)
        assert not bulk_enabled(False, BULK_THRESHOLD + 1)
        set_build_mode("numpy")
        assert bulk_enabled(False, 2)
        set_build_mode("python")
        assert not bulk_enabled(True, 1 << 20)

    def test_builder_tag_names_the_path(self):
        assert builder_tag(size=BULK_THRESHOLD + 1).startswith("numpy-v")
        assert builder_tag(size=BULK_THRESHOLD) == "python"
        assert builder_tag(use_numpy=False) == "python"
        set_build_mode("python")
        assert builder_tag(size=1 << 20) == "python"

    def test_forced_python_mode_builds_reference(self):
        space, hierarchy = _hierarchy(SIZE)
        set_build_mode("python")
        net = NaiveHierarchicalChord(space, hierarchy, use_numpy=True).build()
        assert net.built_with == "python"

    def test_degree_stats_vectorized_path_matches_scalar(self):
        space, hierarchy = _hierarchy(SIZE)
        net = NaiveHierarchicalChord(space, hierarchy).build()
        stats = DegreeStats.of(net)
        degrees = net.degrees()
        assert stats.mean == statistics.mean(degrees)
        assert stats.maximum == max(degrees)
        assert stats.minimum == min(degrees)
        assert stats.pdf == net.degree_distribution()
