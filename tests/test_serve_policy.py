"""Property tests for the serving policy layer.

The policy contract (module docstring of ``repro.serve.policy``): on a
static network, deadlines, retry budgets and hedges may change *when* a
lookup completes and what the counters say — never *where* it lands.
Every test here compares per-ticket ``(success, terminal)`` outcomes
against the no-policy run and only lets policy show up in latency and
counters.  Admission control and ACLs are the exception by design: they
complete lookups without serving them, with their own statuses.
"""

from __future__ import annotations

import random

import numpy as np

from repro.obs.metrics import collecting
from repro.obs.slo import SLOReport
from repro.serve import (
    NO_POLICY,
    STATUS_DEADLINE,
    STATUS_DENIED,
    STATUS_OK,
    STATUS_SHED,
    DomainACL,
    DomainBuckets,
    SLOMiddleware,
    ServePolicy,
    ServeRuntime,
    compile_protocol_view,
    run_open_loop,
)
from repro.serve.testbed import build_serving_net, domain_labeler, lookup_workload

SEEDS = (21, 22, 23)


def _serve(net, latency, sources, keys, policy, **kwargs):
    runtime = ServeRuntime(
        *compile_protocol_view(net), policy=policy, latency=latency, **kwargs
    )
    runtime.submit_many(sources, keys)
    runtime.drain()
    return runtime.report()


def _served_outcomes(report):
    """ticket -> (success, terminal) over lookups that got a routing verdict."""
    return {
        ticket: (ok, term)
        for ticket, (ok, term, status) in report.outcome_map().items()
        if status in (0, 1)  # STATUS_OK / STATUS_FAIL
    }


class TestOutcomeInvariance:
    """Seeded property sweep: policy never changes served outcomes."""

    def test_retries_and_hedges_match_no_policy_run(self):
        policies = {
            "retry x3": ServePolicy(max_attempts=3),
            "retry x3 alternates": ServePolicy(
                max_attempts=3, retry_alternates=True
            ),
            "hedge p50": ServePolicy(hedge_quantile=0.5),
            "hedge p50 floor": ServePolicy(hedge_quantile=0.5, hedge_min_ms=2.0),
        }
        for seed in SEEDS:
            net, latency = build_serving_net(160, seed=seed)
            sources, keys = lookup_workload(net, 150, seed=seed)
            baseline = _serve(net, latency, sources, keys, NO_POLICY)
            base_outcomes = _served_outcomes(baseline)
            assert len(base_outcomes) == 150
            for name, policy in policies.items():
                report = _serve(net, latency, sources, keys, policy)
                assert _served_outcomes(report) == base_outcomes, (name, seed)
                assert report.counters["expired"] == 0, (name, seed)

    def test_hedges_actually_fire_and_only_touch_counters(self):
        net, latency = build_serving_net(256, seed=31)
        sources, keys = lookup_workload(net, 400, seed=31)
        baseline = _serve(net, latency, sources, keys, NO_POLICY)
        hedged = _serve(
            net, latency, sources, keys, ServePolicy(hedge_quantile=0.5)
        )
        assert hedged.counters["hedges"] > 0
        # On a static net every spawned hedge pair resolves by exactly one
        # runner winning and the other being cancelled.
        assert hedged.counters["hedge_cancelled"] == hedged.counters["hedges"]
        assert hedged.counters["hedge_wins"] <= hedged.counters["hedges"]
        assert _served_outcomes(hedged) == _served_outcomes(baseline)
        # A winning hedge can only shorten a lookup, never lengthen it.
        assert hedged.quantile_ms(0.99) <= baseline.quantile_ms(0.99) + 1e-9

    def test_deadline_expiry_excludes_but_never_rewrites(self):
        for seed in SEEDS:
            net, latency = build_serving_net(160, seed=seed)
            sources, keys = lookup_workload(net, 150, seed=seed)
            baseline = _serve(net, latency, sources, keys, NO_POLICY)
            base_outcomes = _served_outcomes(baseline)
            cutoff = baseline.quantile_ms(0.5)
            report = _serve(
                net, latency, sources, keys, ServePolicy(deadline_ms=cutoff)
            )
            expired = {
                t
                for t, (_ok, _term, status) in report.outcome_map().items()
                if status == STATUS_DEADLINE
            }
            assert report.counters["expired"] == len(expired) > 0
            served = _served_outcomes(report)
            assert set(served) | expired == set(base_outcomes)
            # Every non-expired ticket keeps the baseline verdict.
            for ticket, outcome in served.items():
                assert outcome == base_outcomes[ticket], seed
            # All lookups the deadline reaped were slower than the cutoff
            # in the baseline run (same static net, same latency fold).
            base_ms = dict(
                zip(baseline.tickets.tolist(), baseline.latency_ms.tolist())
            )
            for ticket in expired:
                assert base_ms[ticket] > cutoff

    def test_retries_recover_lookups_under_churn(self):
        net, _ = build_serving_net(512, seed=33, with_latency=False)
        compiled, alive = compile_protocol_view(net)
        runtime = ServeRuntime(
            compiled, alive, policy=ServePolicy(max_attempts=4)
        )
        sources, keys = lookup_workload(net, 600, seed=33)
        runtime.submit_many(sources, keys)
        rng = random.Random("serve-policy-churn")
        for round_ in range(3):
            runtime.tick()
            victims = rng.sample(sorted(net.live_view()), 25)
            for victim in victims:
                net.crash(victim)
            runtime.set_view(*compile_protocol_view(net))
        runtime.drain()
        report = runtime.report()
        assert report.size == 600
        assert report.counters["retries"] > 0
        # A retry consumes a fresh attempt; the report must show it.
        assert int(report.attempts.max()) > 1


class TestDomainBuckets:
    def test_refill_caps_at_burst(self):
        buckets = DomainBuckets(rate=3.0, burst=5.0, domains=("a",))
        code = buckets.code("a")
        buckets.tokens[code] = 0.0
        buckets.refill()
        assert buckets.tokens[code] == 3.0
        buckets.refill()
        assert buckets.tokens[code] == 5.0  # capped, not 6

    def test_admit_is_fifo_within_batch(self):
        buckets = DomainBuckets(rate=0.0, burst=2.0, domains=("a", "b"))
        a, b = buckets.code("a"), buckets.code("b")
        codes = np.asarray([a, a, b, a, b], dtype=np.int64)
        admitted = buckets.admit(codes)
        # Two tokens per domain: the first two of each domain win, batch order.
        assert admitted.tolist() == [True, True, True, False, True]
        assert buckets.tokens[a] == 0.0 and buckets.tokens[b] == 0.0
        assert not buckets.admit(codes).any()

    def test_new_domains_start_with_full_burst(self):
        buckets = DomainBuckets(rate=1.0, burst=4.0)
        code = buckets.code("late")
        assert buckets.tokens[code] == 4.0
        assert buckets.domains == ("late",)


class TestAdmissionAndACL:
    def test_acl_denies_whole_domain_immediately(self):
        net, _ = build_serving_net(128, seed=41, with_latency=False)
        labeler = domain_labeler(net)
        sources, keys = lookup_workload(net, 120, seed=41)
        blocked = labeler(int(sources[0]))
        runtime = ServeRuntime(
            *compile_protocol_view(net),
            middlewares=[DomainACL(deny_sources=[blocked])],
            domain_of=labeler,
        )
        runtime.submit_many(sources, keys)
        runtime.drain()
        report = runtime.report()
        denied = report.status == STATUS_DENIED
        assert report.counters["denied"] == int(np.count_nonzero(denied)) > 0
        by_ticket = dict(zip(report.tickets.tolist(), report.status.tolist()))
        for ticket, src in enumerate(sources.tolist()):
            if labeler(src) == blocked:
                assert by_ticket[ticket] == STATUS_DENIED
            else:
                assert by_ticket[ticket] != STATUS_DENIED
        # Denied lookups never entered the frontier.
        assert np.all(report.hops[denied] == 0)
        assert not np.any(report.success[denied])

    def test_open_loop_sheds_over_admission_rate(self):
        net, _ = build_serving_net(256, seed=42, with_latency=False)
        sources, keys = lookup_workload(net, 800, seed=42)
        runtime = ServeRuntime(
            *compile_protocol_view(net),
            policy=ServePolicy(admit_rate=8.0, admit_burst=16.0),
            domain_of=domain_labeler(net),
        )
        report = run_open_loop(runtime, sources, keys, per_tick=200)
        c = report.counters
        assert c["shed"] > 0
        assert c["shed"] == int(np.count_nonzero(report.status == STATUS_SHED))
        # Shed or not, every submission completes exactly once.
        assert c["completed"] == c["submitted"] == 800
        assert c["admitted"] + c["shed"] + c["denied"] == 800

    def test_no_admission_control_without_rate(self):
        net, _ = build_serving_net(64, seed=43, with_latency=False)
        runtime = ServeRuntime(*compile_protocol_view(net))
        assert runtime.buckets is None


class TestSLOMiddleware:
    def test_serving_run_lands_in_slo_report(self):
        net, latency = build_serving_net(128, seed=51)
        sources, keys = lookup_workload(net, 90, seed=51)
        with collecting() as registry:
            report = _serve(
                net,
                latency,
                sources,
                keys,
                NO_POLICY,
                middlewares=[SLOMiddleware("serve.test")],
            )
        slo = SLOReport.from_snapshot(registry.snapshot())
        row = slo.row("serve.test")
        assert row is not None
        assert row.samples == 90
        assert row.delivered == report.counters["delivered"]
        assert row.p50_ms > 0
        counters = registry.snapshot().data["counters"]
        assert counters["serve.completed"] == 90
        assert counters["serve.submitted"] == 90
