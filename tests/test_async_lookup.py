"""Tests for asynchronous, in-flight lookups on the virtual clock."""

from __future__ import annotations

import math
import random

import pytest

from repro import IdSpace
from repro.obs.metrics import collecting
from repro.simulation.async_lookup import AsyncEngine
from repro.simulation.events import ConstantLatency, Simulator
from repro.simulation.protocol import SimulatedCrescendo

PATHS = [("a", "x"), ("a", "y"), ("b", "x")]


def grown(size=150, seed=0, latency=2.0):
    rng = random.Random(seed)
    space = IdSpace(32)
    sim = Simulator()
    net = SimulatedCrescendo(space, sim=sim, latency_model=ConstantLatency(latency))
    for node_id in space.random_ids(size, rng):
        net.join(node_id, PATHS[rng.randrange(len(PATHS))])
    net.stabilize()
    return net, rng


class TestBasics:
    def test_lookup_completes_with_callback(self):
        net, rng = grown()
        engine = AsyncEngine(net)
        ids = list(net.nodes)
        done = []
        engine.lookup(ids[0], ids[5], done.append)
        net.sim.run()
        assert len(done) == 1
        result = done[0]
        assert result.success and result.path[-1] == ids[5]
        assert engine.in_flight == 0

    def test_duration_is_hops_times_latency(self):
        net, rng = grown(latency=3.0)
        engine = AsyncEngine(net)
        ids = list(net.nodes)
        engine.lookup(ids[1], ids[9])
        net.sim.run()
        result = engine.completed[0]
        assert result.duration == pytest.approx(result.hops * 3.0)

    def test_self_lookup_instant(self):
        net, rng = grown()
        engine = AsyncEngine(net)
        node = next(iter(net.nodes))
        engine.lookup(node, node)
        net.sim.run()
        assert engine.completed[0].success
        assert engine.completed[0].duration == 0.0

    def test_dead_source_rejected(self):
        net, rng = grown()
        victim = next(iter(net.nodes))
        net.crash(victim)
        engine = AsyncEngine(net)
        with pytest.raises(ValueError):
            engine.lookup(victim, 123)

    def test_many_concurrent_lookups(self):
        net, rng = grown()
        engine = AsyncEngine(net)
        ids = list(net.nodes)
        for _ in range(100):
            a, b = rng.sample(ids, 2)
            engine.lookup(a, b)
        assert engine.in_flight == 100
        net.sim.run()
        assert engine.in_flight == 0
        assert engine.delivery_rate() == 1.0
        assert engine.mean_duration() > 0


class TestInFlightChurn:
    def test_crash_during_flight_can_drop_messages(self):
        """Crashing nodes while lookups are airborne: some may be lost, the
        engine reports them as failures rather than hanging."""
        net, rng = grown(size=200, seed=1)
        engine = AsyncEngine(net)
        ids = list(net.nodes)
        for _ in range(150):
            a, b = rng.sample(ids, 2)
            engine.lookup(a, b)
        # Schedule crashes shortly after launch, mid-flight.
        victims = rng.sample(ids, 15)

        def crash_all():
            for victim in victims:
                if victim in net.nodes and net.nodes[victim].alive:
                    net.crash(victim)

        net.sim.schedule(3.0, crash_all)  # between hop 1 and hop 2
        net.sim.run()
        assert engine.in_flight == 0, "every lookup must terminate"
        assert len(engine.completed) == 150
        # Lookups routed around or through dead nodes; most still deliver.
        assert engine.delivery_rate() > 0.7

    def test_next_hop_uses_state_at_delivery_time(self):
        """A repair that lands while a message is in flight is used by the
        following hop (decisions are made at delivery, not at launch)."""
        net, rng = grown(size=100, seed=2)
        engine = AsyncEngine(net)
        ids = sorted(net.nodes)
        src, dst = ids[0], ids[-1]
        engine.lookup(src, dst)
        # Stabilize mid-flight: harmless, and exercises the interleaving.
        net.sim.schedule(1.0, lambda: net.stabilize())
        net.sim.run()
        assert engine.completed[0].success

    def test_joins_during_flight(self):
        net, rng = grown(size=120, seed=3)
        engine = AsyncEngine(net)
        ids = list(net.nodes)
        for _ in range(60):
            a, b = rng.sample(ids, 2)
            engine.lookup(a, b)

        def add_nodes():
            for _ in range(10):
                new_id = net.space.random_id(rng)
                while new_id in net.nodes:
                    new_id = net.space.random_id(rng)
                net.join(new_id, PATHS[rng.randrange(len(PATHS))])

        net.sim.schedule(2.0, add_nodes)
        net.sim.run()
        assert engine.delivery_rate() == 1.0


class TestAccounting:
    """delivery_rate edge cases and the async.* counters."""

    def test_delivery_rate_is_nan_with_no_completions(self):
        net, rng = grown(size=60)
        engine = AsyncEngine(net)
        assert math.isnan(engine.delivery_rate())
        ids = sorted(net.nodes)
        engine.lookup(ids[0], ids[-1])
        # Still in flight: no data is NaN, not a perfect 1.0.
        assert engine.in_flight == 1
        assert math.isnan(engine.delivery_rate())
        net.sim.run()
        assert engine.delivery_rate() == 1.0

    def test_completed_counter_tracks_every_finish(self):
        net, rng = grown(size=100)
        engine = AsyncEngine(net)
        ids = list(net.nodes)
        with collecting() as registry:
            for _ in range(25):
                a, b = rng.sample(ids, 2)
                engine.lookup(a, b)
            net.sim.run()
        counters = registry.snapshot().data["counters"]
        assert counters["async.completed"] == 25
        assert "async.lost" not in counters  # nothing died mid-flight

    def test_lost_counter_fires_on_dead_delivery(self):
        net, rng = grown(size=80, seed=4)
        engine = AsyncEngine(net)
        ids = sorted(net.nodes)
        src, dst = ids[0], ids[len(ids) // 2]

        def crash_everyone_else():
            for node_id in list(net.nodes):
                if node_id != src and net.nodes[node_id].alive:
                    net.crash(node_id)

        with collecting() as registry:
            engine.lookup(src, dst)
            # Before the first delivery (latency 2.0) every other node dies,
            # so the in-flight message lands on a corpse.
            net.sim.schedule(0.5, crash_everyone_else)
            net.sim.run()
        counters = registry.snapshot().data["counters"]
        assert counters["async.lost"] == 1
        assert counters["async.completed"] == 1
        assert engine.delivery_rate() == 0.0
