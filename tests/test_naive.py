"""Tests for the naive per-level Chord strawman (ablation baseline)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring
from repro.dhts.crescendo import CrescendoNetwork
from repro.dhts.naive import NaiveHierarchicalChord


@pytest.fixture(scope="module")
def nets():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(400, rng)
    hierarchy = build_uniform_hierarchy(ids, 4, 3, rng)
    naive = NaiveHierarchicalChord(space, hierarchy).build()
    crescendo = CrescendoNetwork(space, hierarchy).build()
    return naive, crescendo


class TestNaive:
    def test_superset_of_crescendo_links(self, nets):
        """Crescendo's links are a subset of the naive construction's."""
        naive, crescendo = nets
        for node in crescendo.node_ids:
            assert set(crescendo.links[node]) <= set(naive.links[node])

    def test_degree_blowup(self, nets):
        """The naive construction pays ~levels x the state."""
        naive, crescendo = nets
        assert naive.average_degree() > 1.5 * crescendo.average_degree()

    def test_routing_still_works(self, nets):
        naive, _ = nets
        rng = random.Random(1)
        for _ in range(100):
            a, b = rng.sample(naive.node_ids, 2)
            r = route_ring(naive, a, b)
            assert r.success and r.terminal == b

    def test_locality_holds_too(self, nets):
        """The strawman has the same locality — it just overpays for it."""
        naive, _ = nets
        rng = random.Random(2)
        hierarchy = naive.hierarchy
        for _ in range(60):
            a, b = rng.sample(naive.node_ids, 2)
            shared = hierarchy.lca_of_nodes(a, b)
            r = route_ring(naive, a, b)
            assert all(
                hierarchy.path_of(n)[: len(shared)] == shared for n in r.path
            )

    def test_hops_no_better_than_marginally(self, nets):
        """Nearly doubled state buys well under a 2x hop improvement —
        the paper's state-vs-hops tradeoff argument."""
        import statistics

        naive, crescendo = nets
        rng = random.Random(3)
        pairs = [rng.sample(naive.node_ids, 2) for _ in range(200)]
        naive_hops = statistics.mean(route_ring(naive, a, b).hops for a, b in pairs)
        cres_hops = statistics.mean(
            route_ring(crescendo, a, b).hops for a, b in pairs
        )
        state_ratio = naive.average_degree() / crescendo.average_degree()
        hop_ratio = cres_hops / naive_hops
        assert hop_ratio < state_ratio
