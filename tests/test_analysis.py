"""Tests for the analysis layer: metrics, overlap fractions, tables."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.analysis.metrics import DegreeStats, sample_routing, stretch
from repro.analysis.overlap import (
    common_suffix_edges,
    mean_overlap,
    overlap_fractions,
)
from repro.analysis.tables import Table
from repro.dhts.chord import ChordNetwork


@pytest.fixture(scope="module")
def net():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(300, rng)
    h = build_uniform_hierarchy(ids, 3, 1, rng)
    return ChordNetwork(space, h).build()


class TestDegreeStats:
    def test_of_network(self, net):
        stats = DegreeStats.of(net)
        assert stats.minimum <= stats.mean <= stats.maximum
        assert abs(sum(stats.pdf.values()) - 1.0) < 1e-9


class TestSampleRouting:
    def test_basic(self, net):
        stats = sample_routing(net, random.Random(1), samples=100)
        assert stats.samples == 100
        assert stats.success_rate == 1.0
        assert stats.mean_hops > 0
        assert stats.mean_latency is None

    def test_with_latency(self, net):
        stats = sample_routing(
            net, random.Random(2), samples=50, latency_fn=lambda a, b: 1.0
        )
        assert stats.mean_latency == pytest.approx(stats.mean_hops)

    def test_explicit_pairs(self, net):
        ids = net.node_ids
        pairs = [(ids[0], ids[5]), (ids[1], ids[9])]
        stats = sample_routing(net, random.Random(3), pairs=pairs)
        assert stats.samples == 2

    def test_stretch(self, net):
        value, latency = stretch(
            net, random.Random(4), lambda a, b: 2.0, direct_latency=2.0, samples=50
        )
        assert value == pytest.approx(latency / 2.0)

    def test_stretch_bad_direct(self, net):
        with pytest.raises(ValueError):
            stretch(net, random.Random(5), lambda a, b: 1.0, 0.0, samples=10)


class TestOverlap:
    def test_common_suffix(self):
        assert common_suffix_edges([1, 2, 3, 4], [9, 3, 4]) == [(3, 4)]

    def test_no_overlap(self):
        assert common_suffix_edges([1, 2], [3, 4]) == []

    def test_identical_paths(self):
        path = [1, 2, 3]
        assert common_suffix_edges(path, path) == [(1, 2), (2, 3)]

    def test_suffix_only_not_middle(self):
        """A shared middle segment that diverges again does not count."""
        assert common_suffix_edges([1, 2, 3, 9], [0, 2, 3, 8]) == []

    def test_overlap_fractions_hops(self):
        hop, lat = overlap_fractions([1, 2, 3, 4], [9, 3, 4])
        assert hop == pytest.approx(0.5)
        assert lat is None

    def test_overlap_fractions_latency(self):
        hop, lat = overlap_fractions(
            [1, 2, 3, 4], [9, 3, 4], latency_fn=lambda a, b: abs(b - a)
        )
        # second path edges: (9,3)=6, (3,4)=1; shared suffix latency 1.
        assert lat == pytest.approx(1 / 7)

    def test_trivial_second_path(self):
        hop, lat = overlap_fractions([1, 2], [5], latency_fn=lambda a, b: 1.0)
        assert hop == 1.0
        assert lat == 1.0

    def test_mean_overlap(self):
        pairs = [([1, 2, 3], [9, 2, 3]), ([1, 2], [4, 5])]
        hop, lat = mean_overlap(pairs)
        assert hop == pytest.approx((0.5 + 0.0) / 2)


class TestTable:
    def test_render_contains_cells(self):
        table = Table("Demo", ["a", "b"])
        table.add_row(1, 2.5)
        out = table.render()
        assert "Demo" in out
        assert "2.50" in out

    def test_wrong_arity(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown(self):
        table = Table("Demo", ["x"])
        table.add_row("v")
        md = table.to_markdown()
        assert md.startswith("**Demo**")
        assert "| v |" in md

    def test_column_access(self):
        table = Table("Demo", ["x", "y"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("y") == ["2", "4"]

    def test_empty_table_renders(self):
        assert "Demo" in Table("Demo", ["x"]).render()
