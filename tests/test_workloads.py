"""Tests for workload generators (queries, multicast)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_ring
from repro.dhts.crescendo import CrescendoNetwork
from repro.workloads.multicast import (
    count_interdomain_edges,
    multicast_interdomain_profile,
    multicast_tree,
)
from repro.workloads.queries import (
    locality_pair,
    locality_pairs,
    random_pair,
    zipf_key_workload,
)


@pytest.fixture(scope="module")
def net():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(400, rng)
    h = build_uniform_hierarchy(ids, 3, 3, rng)
    return CrescendoNetwork(space, h).build()


class TestQueryWorkloads:
    def test_random_pair_distinct(self, net):
        rng = random.Random(1)
        for _ in range(50):
            a, b = random_pair(net.node_ids, rng)
            assert a != b

    def test_random_pair_too_small(self):
        with pytest.raises(ValueError):
            random_pair([1], random.Random(0))

    def test_locality_pair_level0_any(self, net):
        rng = random.Random(2)
        a, b = locality_pair(net.hierarchy, net.node_ids, rng, 0)
        assert a != b

    def test_locality_pair_respects_level(self, net):
        rng = random.Random(3)
        for level in (1, 2, 3):
            for _ in range(30):
                a, b = locality_pair(net.hierarchy, net.node_ids, rng, level)
                pa, pb = net.hierarchy.path_of(a), net.hierarchy.path_of(b)
                assert pa[:level] == pb[:level]

    def test_locality_pairs_count(self, net):
        rng = random.Random(4)
        pairs = list(locality_pairs(net.hierarchy, net.node_ids, rng, 2, 25))
        assert len(pairs) == 25

    def test_deep_level_clamps_to_leaf(self, net):
        rng = random.Random(5)
        a, b = locality_pair(net.hierarchy, net.node_ids, rng, 99)
        assert net.hierarchy.path_of(a) == net.hierarchy.path_of(b)

    def test_zipf_keys_in_range(self):
        keys = zipf_key_workload(100, 500, random.Random(6))
        assert all(0 <= k < 100 for k in keys)

    def test_zipf_keys_skewed(self):
        keys = zipf_key_workload(1000, 5000, random.Random(7), exponent=1.0)
        counts = Counter(keys)
        top10 = sum(counts[k] for k in range(10))
        assert top10 > 0.15 * len(keys), "popular keys dominate"


class TestMulticast:
    def test_tree_edges_are_route_edges(self, net):
        rng = random.Random(8)
        sources = rng.sample(net.node_ids, 50)
        dest = rng.choice([n for n in net.node_ids if n not in sources])
        edges = multicast_tree(net, route_ring, sources, dest)
        assert edges
        for a, b in edges:
            assert a in net and b in net

    def test_tree_smaller_than_path_sum(self, net):
        """Path convergence makes the union smaller than the sum."""
        rng = random.Random(9)
        sources = rng.sample(net.node_ids, 80)
        dest = rng.choice([n for n in net.node_ids if n not in sources])
        total_hops = sum(
            route_ring(net, s, dest).hops for s in sources if s != dest
        )
        edges = multicast_tree(net, route_ring, sources, dest)
        assert len(edges) < total_hops

    def test_source_equal_dest_skipped(self, net):
        dest = net.node_ids[0]
        edges = multicast_tree(net, route_ring, [dest], dest)
        assert edges == set()

    def test_count_interdomain_edges(self, net):
        h = net.hierarchy
        a = net.node_ids[0]
        same = next(
            m for m in h.members(h.path_of(a)) if m != a
        )
        other = next(
            m for m in net.node_ids if h.path_of(m)[:1] != h.path_of(a)[:1]
        )
        edges = {(a, same), (a, other)}
        assert count_interdomain_edges(h, edges, 1) == 1
        assert count_interdomain_edges(h, edges, 0) == 0

    def test_profile_monotone_in_depth(self, net):
        """Finer domains can only turn intra- into inter-domain edges."""
        rng = random.Random(10)
        sources = rng.sample(net.node_ids, 60)
        dest = rng.choice([n for n in net.node_ids if n not in sources])
        profile = multicast_interdomain_profile(
            net, route_ring, sources, dest, depths=(1, 2, 3)
        )
        assert profile[1] <= profile[2] <= profile[3]
