"""Property tests for the storage layer's access-control semantics.

The paper's claim (§4.1): "a query initiated by a node automatically
retrieves exactly that content that a node is permitted to access".
Hypothesis draws random storage/access domain combinations and random
querier positions; the result must match the permission predicate exactly.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.core.hierarchy import is_ancestor
from repro.dhts.crescendo import CrescendoNetwork
from repro.storage.caching import LevelAwareCache
from repro.storage.store import HierarchicalStore


@pytest.fixture(scope="module")
def net():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(300, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 3, rng)
    return CrescendoNetwork(space, hierarchy).build()


@settings(max_examples=40, deadline=None)
@given(
    owner_index=st.integers(0, 299),
    querier_index=st.integers(0, 299),
    storage_depth=st.integers(0, 3),
    access_depth=st.integers(0, 3),
    key_seed=st.integers(0, 10_000),
)
def test_access_exactly_matches_permission(
    net, owner_index, querier_index, storage_depth, access_depth, key_seed
):
    """found == (querier lies inside the access domain)."""
    store = HierarchicalStore(net)
    owner = net.node_ids[owner_index]
    querier = net.node_ids[querier_index]
    owner_path = net.hierarchy.path_of(owner)
    access_depth = min(access_depth, storage_depth)
    storage_domain = owner_path[:storage_depth]
    access_domain = owner_path[:access_depth]
    key = f"key-{key_seed}"
    store.put(owner, key, "payload", storage_domain, access_domain)

    result = store.get(querier, key)
    permitted = is_ancestor(access_domain, net.hierarchy.path_of(querier))
    assert result.found == permitted
    if result.found:
        assert result.values == ["payload"]


@settings(max_examples=40, deadline=None)
@given(
    owner_index=st.integers(0, 299),
    storage_depth=st.integers(0, 3),
    key_seed=st.integers(0, 10_000),
)
def test_content_physically_inside_storage_domain(
    net, owner_index, storage_depth, key_seed
):
    """The stored bytes live on a node of the storage domain — always."""
    store = HierarchicalStore(net)
    owner = net.node_ids[owner_index]
    domain = net.hierarchy.path_of(owner)[:storage_depth]
    home, _ = store.put(owner, f"k-{key_seed}", b"x", storage_domain=domain)
    assert net.hierarchy.path_of(home)[: len(domain)] == domain


class TestLevelAwareCacheModel:
    """Model-based check: the cache behaves like a bounded dict whose
    eviction order is (level desc, recency asc)."""

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 9),          # key
                st.integers(1, 4),          # level
                st.booleans(),              # get before put
            ),
            min_size=1,
            max_size=30,
        ),
        capacity=st.integers(1, 6),
    )
    def test_against_model(self, ops, capacity):
        cache = LevelAwareCache(capacity)
        model = {}  # key -> (value, level); recency by insertion order
        order = []  # recency list, most recent last

        for key, level, read_first in ops:
            if read_first and cache.get(key) is not None:
                order.remove(key)
                order.append(key)
            effective = min(level, model[key][1]) if key in model else level
            cache.put(key, f"v{key}", level)
            model[key] = (f"v{key}", effective)
            if key in order:
                order.remove(key)
            order.append(key)
            while len(model) > capacity:
                worst = max(lv for _, lv in model.values())
                victim = next(k for k in order if model[k][1] == worst)
                del model[victim]
                order.remove(victim)

        assert len(cache) == len(model)
        for key, (value, level) in model.items():
            assert cache.get(key) == value
            assert cache.level_of(key) == level
