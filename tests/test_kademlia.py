"""Tests for flat Kademlia: buckets, contacts, XOR routing."""

from __future__ import annotations

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdSpace, build_uniform_hierarchy
from repro.core.routing import route_xor
from repro.dhts.kademlia import (
    KademliaNetwork,
    bucket_bounds,
    bucket_members_range,
    choose_bucket_contact,
    find_closest,
)


class TestBucketGeometry:
    def test_bounds_flip_bit(self):
        space = IdSpace(8)
        lo, hi = bucket_bounds(0b10110000, 4, space)
        assert lo == 0b10100000
        assert hi == 0b10110000

    def test_bounds_distance_invariant(self):
        """Members of bucket k are exactly at XOR distance [2**k, 2**(k+1))."""
        space = IdSpace(8)
        node = 0b10110011
        for k in range(8):
            lo, hi = bucket_bounds(node, k, space)
            for other in range(256):
                in_bucket = lo <= other < hi
                in_distance = (1 << k) <= space.xor_distance(node, other) < (
                    1 << (k + 1)
                )
                assert in_bucket == in_distance

    @given(node=st.integers(0, 255), k=st.integers(0, 7))
    def test_bounds_size(self, node, k):
        lo, hi = bucket_bounds(node, k, IdSpace(8))
        assert hi - lo == 1 << k

    def test_members_range_matches_bruteforce(self):
        space = IdSpace(8)
        rng = random.Random(0)
        members = sorted(space.random_ids(40, rng))
        node = members[0]
        for k in range(8):
            i, j = bucket_members_range(node, k, members, space)
            got = set(members[i:j])
            expected = {
                m
                for m in members
                if (1 << k) <= space.xor_distance(node, m) < (1 << (k + 1))
            }
            assert got == expected

    def test_empty_bucket_range(self):
        space = IdSpace(8)
        i, j = bucket_members_range(0, 7, [0, 1], space)
        assert i == j


class TestContactChoice:
    def test_deterministic_picks_closest(self):
        space = IdSpace(8)
        members = sorted([0b0000_0000, 0b1000_0001, 0b1100_0000])
        contacts = choose_bucket_contact(0, 7, members, space)
        assert contacts == [0b1000_0001]  # xor distance 129 < 192

    def test_random_picks_within_bucket(self):
        space = IdSpace(8)
        members = sorted([0, 129, 192, 255])
        rng = random.Random(1)
        seen = set()
        for _ in range(60):
            seen.update(choose_bucket_contact(0, 7, members, space, rng))
        assert seen == {129, 192, 255}

    def test_count(self):
        space = IdSpace(8)
        members = sorted([0, 129, 192, 255])
        assert len(choose_bucket_contact(0, 7, members, space, count=2)) == 2

    def test_empty(self):
        assert choose_bucket_contact(0, 3, [0, 128], IdSpace(8)) == []


class TestNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        rng = random.Random(2)
        space = IdSpace(32)
        ids = space.random_ids(600, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        return KademliaNetwork(space, h, rng).build()

    def test_one_contact_per_nonempty_bucket(self, net):
        space = net.space
        members = net.node_ids
        for node in members[:40]:
            expected_buckets = {
                k
                for k in range(space.bits)
                if bucket_members_range(node, k, members, space)[0]
                != bucket_members_range(node, k, members, space)[1]
            }
            got_buckets = {
                space.xor_distance(node, link).bit_length() - 1
                for link in net.links[node]
            }
            assert got_buckets == expected_buckets

    def test_degree_logarithmic(self, net):
        assert net.average_degree() < 1.5 * math.log2(net.size)

    def test_routing_total(self, net):
        rng = random.Random(3)
        for _ in range(150):
            a, b = rng.sample(net.node_ids, 2)
            r = route_xor(net, a, b)
            assert r.success and r.terminal == b

    def test_hops_logarithmic(self, net):
        rng = random.Random(4)
        hops = [
            route_xor(net, *rng.sample(net.node_ids, 2)).hops for _ in range(200)
        ]
        assert statistics.mean(hops) < math.log2(net.size)

    def test_bucket_size_replication(self):
        rng = random.Random(5)
        space = IdSpace(16)
        ids = space.random_ids(200, rng)
        h = build_uniform_hierarchy(ids, 4, 1, rng)
        k1 = KademliaNetwork(space, h, random.Random(6), bucket_size=1).build()
        k3 = KademliaNetwork(space, h, random.Random(6), bucket_size=3).build()
        assert k3.average_degree() > k1.average_degree()

    def test_find_closest_exact(self, net):
        rng = random.Random(7)
        space = net.space
        for _ in range(60):
            key = space.random_id(rng)
            found = find_closest(net, rng.choice(net.node_ids), key)
            best = min(space.xor_distance(n, key) for n in net.node_ids)
            assert space.xor_distance(found, key) == best
