"""Tests for the application-level multicast service."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.chord import ChordNetwork
from repro.dhts.crescendo import CrescendoNetwork
from repro.multicast import MulticastService


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(500, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 3, rng)
    crescendo = CrescendoNetwork(space, hierarchy).build()
    chord = ChordNetwork(space, hierarchy).build()
    return crescendo, chord, rng


class TestTopics:
    def test_create(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        topic = svc.create_topic("news")
        assert topic.root == crescendo.responsible_node(
            crescendo.space.hash_key("news")
        )

    def test_duplicate_rejected(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        svc.create_topic("dup")
        with pytest.raises(ValueError):
            svc.create_topic("dup")


class TestSubscribePublish:
    def test_all_subscribers_receive(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        svc.create_topic("sports")
        subs = set(rng.sample(crescendo.node_ids, 60))
        for node in subs:
            svc.subscribe(node, "sports")
        report = svc.publish("sports")
        assert report.delivered_all(subs)

    def test_message_count_equals_tree_edges(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        svc.create_topic("tech")
        for node in rng.sample(crescendo.node_ids, 40):
            svc.subscribe(node, "tech")
        report = svc.publish("tech")
        assert report.messages == len(svc.tree_edges("tech"))

    def test_tree_sharing(self, env):
        """Same-domain subscribers share their spine: edges grow sublinearly."""
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        svc.create_topic("shared")
        domain_members = crescendo.hierarchy.members(
            crescendo.hierarchy.path_of(crescendo.node_ids[0])[:1]
        )
        total_path_edges = 0
        for node in domain_members[:30]:
            route = svc.subscribe(node, "shared")
            total_path_edges += route.hops
        assert len(svc.tree_edges("shared")) < total_path_edges

    def test_subscriber_latencies_reported(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo, latency_fn=lambda a, b: 2.0)
        svc.create_topic("lat")
        subs = rng.sample(crescendo.node_ids, 10)
        for node in subs:
            svc.subscribe(node, "lat")
        report = svc.publish("lat")
        for node in subs:
            assert report.latencies[node] > 0 or node == svc.topics["lat"].root

    def test_root_subscriber(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        topic = svc.create_topic("self")
        svc.subscribe(topic.root, "self")
        report = svc.publish("self")
        assert topic.root in report.delivered


class TestUnsubscribe:
    def test_pruning(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        svc.create_topic("prune")
        subs = rng.sample(crescendo.node_ids, 20)
        for node in subs:
            svc.subscribe(node, "prune")
        edges_before = len(svc.tree_edges("prune"))
        for node in subs:
            svc.unsubscribe(node, "prune")
        assert len(svc.tree_edges("prune")) == 0
        assert edges_before > 0

    def test_partial_unsubscribe_keeps_others(self, env):
        crescendo, _, rng = env
        svc = MulticastService(crescendo)
        svc.create_topic("part")
        keep, drop = rng.sample(crescendo.node_ids, 2)
        svc.subscribe(keep, "part")
        svc.subscribe(drop, "part")
        svc.unsubscribe(drop, "part")
        report = svc.publish("part")
        assert keep in report.delivered
        assert drop not in report.delivered


class TestInterdomainCost:
    def test_crescendo_cheaper_than_chord(self, env):
        """Figure 9 at application level: Crescendo's dissemination tree
        crosses far fewer top-level domain boundaries."""
        crescendo, chord, rng = env
        subs = rng.sample(crescendo.node_ids, 150)
        reports = {}
        for label, net in (("crescendo", crescendo), ("chord", chord)):
            svc = MulticastService(net)
            svc.create_topic("video")
            for node in subs:
                svc.subscribe(node, "video")
            reports[label] = svc.publish("video")
        assert (
            reports["crescendo"].interdomain_links[1]
            < reports["chord"].interdomain_links[1] / 2
        )
        assert reports["crescendo"].delivered_all(set(subs))
        assert reports["chord"].delivered_all(set(subs))
