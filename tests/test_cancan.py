"""Tests for Can-Can — Canonical CAN (Section 3.4)."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace
from repro.dhts.can import PrefixId, build_can
from repro.dhts.cancan import CanCanNetwork, build_cancan, differing_bit


def make_paths(count, fanout, depth, rng):
    return [
        tuple(str(rng.randrange(fanout)) for _ in range(depth)) for _ in range(count)
    ]


@pytest.fixture(scope="module")
def net():
    rng = random.Random(0)
    paths = make_paths(300, 4, 2, rng)
    return build_cancan(IdSpace(16), 300, rng, paths)


class TestDifferingBit:
    def test_single_bit(self):
        assert differing_bit(PrefixId(0b00, 2), PrefixId(0b10, 2)) == 0
        assert differing_bit(PrefixId(0b00, 2), PrefixId(0b01, 2)) == 1

    def test_not_adjacent(self):
        assert differing_bit(PrefixId(0b00, 2), PrefixId(0b11, 2)) is None

    def test_unequal_lengths(self):
        assert differing_bit(PrefixId(0b0, 1), PrefixId(0b10, 2)) == 0
        assert differing_bit(PrefixId(0b0, 1), PrefixId(0b11, 2)) == 0

    def test_ancestor_returns_none(self):
        assert differing_bit(PrefixId(0b1, 1), PrefixId(0b10, 2)) is None


class TestConstruction:
    def test_links_are_valid_can_edges(self, net):
        from repro.dhts.can import are_adjacent

        for node in net.node_ids[:50]:
            for link in net.links[node]:
                assert are_adjacent(net.prefixes[node], net.prefixes[link])

    def test_one_edge_per_bit(self, net):
        """At most one chosen edge per identifier bit (plus none for bits
        with no adjacent node anywhere)."""
        for node in net.node_ids[:50]:
            assert len(net.links[node]) <= net.prefixes[node].length

    def test_edges_from_lowest_domain(self, net):
        """The chosen edge for each bit comes from the deepest enclosing
        domain containing any valid candidate."""
        hierarchy = net.hierarchy
        for node in net.node_ids[:30]:
            prefix = net.prefixes[node]
            chain = hierarchy.ancestor_chain(node)
            for bit, depth in net.edge_depth[node].items():
                for domain in chain:
                    members = hierarchy.sorted_members(domain)
                    has_candidate = any(
                        differing_bit(prefix, net.prefixes[m]) == bit
                        for m in members
                        if m != node
                    )
                    if has_candidate:
                        assert len(domain) == depth
                        break

    def test_degree_not_above_flat_can(self, net):
        rng = random.Random(1)
        # Same prefix tree shape, flat hierarchy (full hypercube emulation).
        flat = build_can(IdSpace(16), 300, random.Random(0))
        assert net.average_degree() <= flat.average_degree()


class TestRouting:
    def test_bitfix_total(self, net):
        rng = random.Random(2)
        for _ in range(150):
            src = rng.choice(net.node_ids)
            key = net.space.random_id(rng)
            r = net.route_bitfix(src, key)
            assert r.success
            assert net.prefixes[r.terminal].contains_key(key, net.space.bits)

    def test_node_to_node(self, net):
        rng = random.Random(3)
        for _ in range(100):
            a, b = rng.sample(net.node_ids, 2)
            key = net.prefixes[b].padded(net.space.bits)
            r = net.route_bitfix(a, key)
            assert r.success and r.terminal == b

    def test_intra_domain_locality(self, net):
        """Same-domain lookups never leave the domain."""
        rng = random.Random(4)
        hierarchy = net.hierarchy
        checked = 0
        while checked < 60:
            a = rng.choice(net.node_ids)
            domain = hierarchy.path_of(a)
            peers = [m for m in hierarchy.members(domain) if m != a]
            if not peers:
                continue
            b = rng.choice(peers)
            key = net.prefixes[b].padded(net.space.bits)
            r = net.route_bitfix(a, key)
            assert r.success and r.terminal == b
            assert all(hierarchy.path_of(n) == domain for n in r.path)
            checked += 1


class TestBuilder:
    def test_path_count_mismatch(self):
        with pytest.raises(ValueError):
            build_cancan(IdSpace(8), 5, random.Random(0), [("a",)] * 4)

    def test_deterministic_choice_without_rng(self):
        rng = random.Random(5)
        paths = make_paths(50, 3, 1, rng)
        tree_rng = random.Random(6)
        a = build_cancan(IdSpace(12), 50, random.Random(6), paths)
        # rebuild with the same tree seed but deterministic edge choice
        from repro.core.hierarchy import Hierarchy
        from repro.dhts.can import PrefixTree

        tree = PrefixTree(12)
        leaves = tree.grow(50, random.Random(6))
        h = Hierarchy()
        prefixes = {}
        for i, leaf in enumerate(leaves):
            padded = leaf.padded(12)
            prefixes[padded] = leaf
            h.place(padded, paths[i])
        b = CanCanNetwork(IdSpace(12), h, prefixes, rng=None).build()
        c = CanCanNetwork(IdSpace(12), h, prefixes, rng=None).build()
        assert b.links == c.links
