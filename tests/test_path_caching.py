"""Tests for the flat path-caching baseline and the §4.2 caching study."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace, build_uniform_hierarchy
from repro.dhts.crescendo import CrescendoNetwork
from repro.storage.caching import CachingStore
from repro.storage.path_caching import PathCachingStore
from repro.storage.store import HierarchicalStore


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0)
    space = IdSpace(32)
    ids = space.random_ids(400, rng)
    hierarchy = build_uniform_hierarchy(ids, 4, 3, rng)
    net = CrescendoNetwork(space, hierarchy).build()
    return net, rng


class TestPathCachingStore:
    def test_miss_then_hit(self, env):
        net, rng = env
        store = HierarchicalStore(net)
        store.put(net.node_ids[0], "k", "v")
        pc = PathCachingStore(store)
        first = pc.get(net.node_ids[5], "k")
        assert first.found and pc.stats.misses == 1
        again = pc.get(net.node_ids[5], "k")
        assert again.found and again.hops == 0
        assert pc.stats.hits == 1

    def test_copies_on_every_path_node(self, env):
        net, rng = env
        store = HierarchicalStore(net)
        store.put(net.node_ids[1], "k2", "v2")
        pc = PathCachingStore(store)
        result = pc.get(net.node_ids[9], "k2")
        key_hash = net.space.hash_key("k2")
        for node in result.path:
            assert key_hash in pc._caches.get(node, {})
        assert pc.stats.copies_created == len(result.path)

    def test_lru_eviction(self, env):
        net, rng = env
        store = HierarchicalStore(net)
        for i in range(6):
            store.put(net.node_ids[i], f"bulk{i}", i)
        pc = PathCachingStore(store, capacity=2)
        src = net.node_ids[20]
        for i in range(6):
            pc.get(src, f"bulk{i}")
        assert len(pc._caches[src]) <= 2

    def test_missing_key(self, env):
        net, rng = env
        pc = PathCachingStore(HierarchicalStore(net))
        result = pc.get(net.node_ids[3], "absent")
        assert not result.found

    def test_total_cached_copies(self, env):
        net, rng = env
        store = HierarchicalStore(net)
        store.put(net.node_ids[2], "k3", "v3")
        pc = PathCachingStore(store)
        pc.get(net.node_ids[11], "k3")
        assert pc.total_cached_copies() == pc.stats.copies_created


class TestComparisonInvariants:
    def test_path_copies_superset_of_proxy(self, env):
        """Converged paths pass the proxies, so a path-cached answer is also
        present everywhere proxy caching would have put it."""
        net, rng = env
        store1 = HierarchicalStore(net)
        store2 = HierarchicalStore(net)
        store1.put(net.node_ids[0], "shared", "v")
        store2.put(net.node_ids[0], "shared", "v")
        proxy = CachingStore(store1, capacity=64)
        path = PathCachingStore(store2, capacity=64)
        src = net.node_ids[17]
        proxy.get(src, "shared")
        path.get(src, "shared")
        key_hash = net.space.hash_key("shared")
        proxy_nodes = {
            node
            for node, cache in proxy._caches.items()
            if cache.get(key_hash) is not None
        }
        path_nodes = {
            node
            for node, cache in path._caches.items()
            if key_hash in cache
        }
        assert proxy_nodes <= path_nodes

    def test_study_shape(self):
        from repro.experiments.caching_study import measurements

        data = measurements("smoke")
        proxy, path = data["proxy"], data["path"]
        # Path caching makes several times more copies…
        assert path["copies"] > 3 * proxy["copies"]
        # …for broadly comparable steady-state behaviour.
        assert proxy["hit_rate"] > 0.6
        assert path["hit_rate"] >= proxy["hit_rate"]
        assert proxy["mean_hops"] < 2 * path["mean_hops"]
