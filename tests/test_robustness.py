"""Misuse and degenerate-input behaviour across the public API.

Locks in that errors are raised early with clear context rather than
surfacing as corrupt state later.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ChordNetwork,
    CrescendoNetwork,
    IdSpace,
    build_uniform_hierarchy,
)
from repro.core.hierarchy import Hierarchy
from repro.core.routing import route_ring
from repro.multicast import MulticastService
from repro.storage import HierarchicalStore


def tiny_net(size=5, seed=0):
    rng = random.Random(seed)
    space = IdSpace(16)
    ids = space.random_ids(size, rng)
    h = build_uniform_hierarchy(ids, 2, 1, rng)
    return CrescendoNetwork(space, h, use_numpy=False).build()


class TestDegenerateNetworks:
    def test_single_node_network(self):
        net = tiny_net(size=1)
        node = net.node_ids[0]
        assert net.links[node] == []
        result = route_ring(net, node, node)
        assert result.success and result.hops == 0

    def test_single_node_key_lookup(self):
        net = tiny_net(size=1)
        node = net.node_ids[0]
        result = route_ring(net, node, (node + 12345) % net.space.size)
        assert result.success and result.terminal == node

    def test_two_node_network(self):
        net = tiny_net(size=2)
        a, b = net.node_ids
        assert route_ring(net, a, b).success
        assert route_ring(net, b, a).success

    def test_empty_hierarchy_network(self):
        space = IdSpace(16)
        net = ChordNetwork(space, Hierarchy(), use_numpy=False).build()
        assert net.size == 0

    def test_dense_id_space(self):
        """Every identifier taken: construction and routing still work."""
        space = IdSpace(4)
        h = Hierarchy()
        for i in range(16):
            h.place(i, ())
        net = CrescendoNetwork(space, h, use_numpy=False).build()
        for src in range(0, 16, 5):
            result = route_ring(net, src, (src + 7) % 16)
            assert result.success


class TestMisuse:
    def test_store_requires_built_network(self):
        rng = random.Random(1)
        space = IdSpace(16)
        ids = space.random_ids(5, rng)
        h = build_uniform_hierarchy(ids, 2, 1, rng)
        unbuilt = CrescendoNetwork(space, h)
        with pytest.raises(RuntimeError):
            HierarchicalStore(unbuilt)

    def test_multicast_requires_built_network(self):
        rng = random.Random(2)
        space = IdSpace(16)
        ids = space.random_ids(5, rng)
        h = build_uniform_hierarchy(ids, 2, 1, rng)
        with pytest.raises(RuntimeError):
            MulticastService(CrescendoNetwork(space, h))

    def test_store_unknown_origin(self):
        net = tiny_net()
        store = HierarchicalStore(net)
        with pytest.raises(KeyError):
            store.put(999_999, "k", "v")

    def test_subscribe_unknown_topic(self):
        net = tiny_net()
        service = MulticastService(net)
        with pytest.raises(KeyError):
            service.subscribe(net.node_ids[0], "never-created")

    def test_route_from_unknown_node(self):
        net = tiny_net()
        with pytest.raises(KeyError):
            route_ring(net, 999_999, net.node_ids[0])


class TestHierarchyEdgeCases:
    def test_mixed_depth_placements(self):
        """Nodes at different leaf depths coexist in one network."""
        space = IdSpace(16)
        rng = random.Random(3)
        h = Hierarchy()
        ids = space.random_ids(40, rng)
        for i, node in enumerate(ids):
            depth = i % 3
            h.place(node, tuple("abc"[: depth]))
        net = CrescendoNetwork(space, h, use_numpy=False).build()
        for _ in range(40):
            a, b = rng.sample(ids, 2)
            result = route_ring(net, a, b)
            assert result.success and result.terminal == b

    def test_singleton_leaf_domains(self):
        """Every node alone in its own leaf domain ~ flat Chord."""
        space = IdSpace(16)
        rng = random.Random(4)
        h = Hierarchy()
        ids = space.random_ids(30, rng)
        for i, node in enumerate(ids):
            h.place(node, (f"solo-{i}",))
        net = CrescendoNetwork(space, h, use_numpy=False).build()
        flat_h = build_uniform_hierarchy(ids, 2, 1, random.Random(4))
        chord = ChordNetwork(space, flat_h, use_numpy=False).build()
        assert net.links == chord.links
