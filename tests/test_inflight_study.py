"""Tests for the in-flight failure sensitivity study."""

from __future__ import annotations

import pytest

from repro.experiments.inflight_study import TIMINGS, measurements, run


class TestInflightStudy:
    @pytest.fixture(scope="class")
    def data(self):
        return measurements("smoke")

    def test_all_timings_measured(self, data):
        assert set(data) == set(TIMINGS)

    def test_delivery_rates_valid(self, data):
        assert all(0.0 <= rate <= 1.0 for rate in data.values())

    def test_post_landing_crashes_are_free(self, data):
        """Crashing after every lookup has completed cannot hurt them."""
        assert data["after landing"] == 1.0

    def test_late_crashes_hurt_less(self, data):
        """The later the batch lands, the fewer lookups are still exposed."""
        assert data["mid-flight (hop 4)"] >= data["mid-flight (hop 2)"] - 0.02
        assert data["after landing"] >= data["mid-flight (hop 4)"]

    def test_early_crashes_survivable(self, data):
        """Even a 10% batch before launch leaves most lookups deliverable
        (leaf sets route around the bodies)."""
        assert data["before launch"] > 0.75

    def test_table(self):
        table = run("smoke")
        assert "crash timing" in table.columns
        assert len(table.rows) == len(TIMINGS)
