"""The hierarchy evolves dynamically (paper §2.1): new domains appear when
the first node carrying a new name joins.  The protocol must bootstrap such
nodes through the deepest *populated* ancestor domain."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace
from repro.simulation.protocol import SimulatedCrescendo


@pytest.fixture
def net():
    rng = random.Random(0)
    space = IdSpace(32)
    network = SimulatedCrescendo(space)
    for node_id in space.random_ids(80, rng):
        network.join(node_id, ("us", rng.choice(["west", "east"])))
    return network, rng


class TestNewDomains:
    def test_first_node_of_new_leaf_domain(self, net):
        """A new sub-domain under a populated parent bootstraps fine."""
        network, rng = net
        new_id = network.space.random_id(rng)
        while new_id in network.nodes:
            new_id = network.space.random_id(rng)
        network.join(new_id, ("us", "central"))  # brand-new leaf domain
        node = network.nodes[new_id]
        assert node.rings[2].successor is None, "alone in its leaf ring"
        assert node.rings[1].successor is not None, "spliced into the us ring"
        network.stabilize()
        assert network.static_links() == network.oracle_links()

    def test_first_node_of_new_top_domain(self, net):
        """A whole new organisation joins: only the global ring is shared."""
        network, rng = net
        new_id = network.space.random_id(rng)
        while new_id in network.nodes:
            new_id = network.space.random_id(rng)
        network.join(new_id, ("eu", "north"))
        node = network.nodes[new_id]
        assert node.rings[0].successor is not None
        assert node.rings[1].successor is None
        assert node.rings[2].successor is None
        network.stabilize()
        assert network.static_links() == network.oracle_links()

    def test_new_domain_grows(self, net):
        """Subsequent joiners find the young domain through the directory."""
        network, rng = net
        members = []
        for _ in range(8):
            new_id = network.space.random_id(rng)
            while new_id in network.nodes:
                new_id = network.space.random_id(rng)
            network.join(new_id, ("eu", "north"))
            members.append(new_id)
        network.stabilize()
        assert network.static_links() == network.oracle_links()
        # Intra-domain lookups among the newcomers never leave the domain.
        for _ in range(20):
            a, b = rng.sample(members, 2)
            result = network.lookup(a, b)
            assert result.success and result.terminal == b
            assert all(
                network.nodes[n].path == ("eu", "north") for n in result.path
            )

    def test_deeper_paths_than_existing(self, net):
        """A node with a deeper name than anyone else still joins cleanly."""
        network, rng = net
        new_id = network.space.random_id(rng)
        while new_id in network.nodes:
            new_id = network.space.random_id(rng)
        network.join(new_id, ("us", "west", "lab", "rack9"))
        node = network.nodes[new_id]
        assert node.leaf_depth == 4
        network.stabilize()
        assert network.static_links() == network.oracle_links()
        peer = next(
            n for n in network.nodes
            if n != new_id and network.nodes[n].path[:2] == ("us", "west")
        )
        result = network.lookup(new_id, peer)
        assert result.success and result.terminal == peer
