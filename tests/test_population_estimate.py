"""Tests for Symphony's ring-density population estimator."""

from __future__ import annotations

import random
import statistics

import pytest

from repro import IdSpace
from repro.dhts.symphony import estimate_population


class TestEstimate:
    def test_small_rings_exact(self):
        space = IdSpace(16)
        assert estimate_population(5, [5], space) == 1.0

    def test_accurate_on_average(self):
        """Averaged over nodes, the estimate lands near the true count."""
        space = IdSpace(32)
        rng = random.Random(0)
        for n in (100, 1000):
            members = sorted(space.random_ids(n, rng))
            estimates = [
                estimate_population(node, members, space, probes=8)
                for node in rng.sample(members, 50)
            ]
            mean = statistics.mean(estimates)
            assert 0.4 * n < mean < 3.0 * n, f"n={n}, mean estimate {mean}"

    def test_more_probes_less_variance(self):
        space = IdSpace(32)
        rng = random.Random(1)
        members = sorted(space.random_ids(500, rng))
        nodes = rng.sample(members, 60)
        few = [estimate_population(m, members, space, probes=1) for m in nodes]
        many = [estimate_population(m, members, space, probes=16) for m in nodes]
        assert statistics.stdev(many) < statistics.stdev(few)

    def test_two_nodes(self):
        space = IdSpace(8)
        # Nodes at 0 and 128: gaps of exactly half the ring each.
        assert estimate_population(0, [0, 128], space, probes=2) == pytest.approx(2.0)


class TestIsolationStudy:
    def test_crescendo_perfect_chord_collapses(self):
        from repro.experiments.isolation_study import measurements

        data = measurements("smoke")
        for depth in (1, 2):
            rate, inflation = data[("Crescendo", depth)]
            assert rate == 1.0
            assert inflation == pytest.approx(1.0)
            chord_rate, _ = data[("Chord", depth)]
            assert chord_rate < 0.6

    def test_chord_worse_at_deeper_domains(self):
        """Smaller domains leave Chord fewer usable fingers."""
        from repro.experiments.isolation_study import measurements

        data = measurements("smoke")
        assert data[("Chord", 2)][0] <= data[("Chord", 1)][0]


class TestCsvExport:
    def test_to_csv(self):
        from repro.analysis.tables import Table

        table = Table("T", ["a", "b"])
        table.add_row(1, "x,y")
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert '"x,y"' in csv
