"""Tests for phase timers and the sampling profiler (`repro.obs.profile`)."""

from __future__ import annotations

import time

import pytest

from repro.obs.profile import PhaseProfiler, SamplingProfiler


class TestPhaseProfiler:
    def test_accumulates_time_and_calls(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("build"):
                time.sleep(0.001)
        assert prof.calls["build"] == 3
        assert prof.totals["build"] >= 0.003

    def test_phases_accumulate_independently(self):
        prof = PhaseProfiler()
        with prof.phase("build"):
            pass
        with prof.phase("route"):
            pass
        assert set(prof.totals) == {"build", "route"}

    def test_nested_phases_both_recorded(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        assert prof.calls == {"outer": 1, "inner": 1}

    def test_records_on_exception(self):
        prof = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with prof.phase("doomed"):
                raise RuntimeError
        assert prof.calls["doomed"] == 1

    def test_reset(self):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        prof.reset()
        assert prof.totals == {} and prof.calls == {}

    def test_report_and_as_dict(self):
        prof = PhaseProfiler()
        with prof.phase("route"):
            pass
        report = prof.report()
        assert "route" in report and "seconds" in report
        d = prof.as_dict()
        assert d["route"]["calls"] == 1
        assert d["route"]["seconds"] >= 0

    def test_empty_report(self):
        assert PhaseProfiler().report() == "no phases recorded"


class TestSamplingProfiler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_samples_busy_work(self):
        def busy(deadline):
            total = 0
            while time.perf_counter() < deadline:
                total += sum(range(100))
            return total

        with SamplingProfiler(interval=0.001) as prof:
            busy(time.perf_counter() + 0.08)
        assert prof.total_samples > 0
        assert any("busy" in key for key, _ in prof.top(50))
        assert "%" in prof.report(5)

    def test_double_start_rejected(self):
        prof = SamplingProfiler()
        prof.start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler()
        prof.start()
        prof.stop()
        prof.stop()
        assert prof.report() == "no samples collected" or prof.total_samples >= 0
