"""Tests for dynamic maintenance (Section 2.3): joins, leaves, crashes,
stabilization, and exact convergence to the static oracle."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro import IdSpace
from repro.simulation.protocol import SimulatedCrescendo


def grown_network(size=200, seed=0, labels="ab", depth=2):
    rng = random.Random(seed)
    space = IdSpace(32)
    net = SimulatedCrescendo(space)
    ids = space.random_ids(size, rng)
    for node_id in ids:
        path = tuple(rng.choice(labels) for _ in range(depth))
        net.join(node_id, path)
    return net, ids, rng


class TestBootstrap:
    def test_first_node(self):
        net = SimulatedCrescendo(IdSpace(16))
        assert net.join(5, ("a",)) == 0
        assert 5 in net.nodes

    def test_double_bootstrap_rejected(self):
        net = SimulatedCrescendo(IdSpace(16))
        net.bootstrap_node(5, ("a",))
        with pytest.raises(RuntimeError):
            net.bootstrap_node(6, ("a",))

    def test_duplicate_join_rejected(self):
        net = SimulatedCrescendo(IdSpace(16))
        net.join(5, ("a",))
        with pytest.raises(ValueError):
            net.join(5, ("a",))

    def test_second_node_ring(self):
        net = SimulatedCrescendo(IdSpace(16))
        net.join(5, ("a",))
        net.join(900, ("a",))
        assert net.nodes[5].rings[0].successor == 900
        assert net.nodes[900].rings[0].successor == 5


class TestJoin:
    def test_join_message_cost_logarithmic(self):
        costs = {}
        for size in (100, 400):
            net, ids, rng = grown_network(size=size, seed=size)
            samples = []
            for _ in range(20):
                new_id = net.space.random_id(rng)
                while new_id in net.nodes:
                    new_id = net.space.random_id(rng)
                samples.append(net.join(new_id, ("a", "b")))
            costs[size] = statistics.mean(samples)
        for size, cost in costs.items():
            assert cost < 12 * math.log2(size), f"join too chatty at n={size}"
        # sub-linear growth
        assert costs[400] < costs[100] * 2

    def test_links_converge_to_oracle_after_stabilize(self):
        net, ids, rng = grown_network(size=150, seed=1)
        net.stabilize()
        assert net.static_links() == net.oracle_links()

    def test_rings_are_consistent_before_stabilize(self):
        """Successor pointers form the correct ring at every level even
        before any stabilization round."""
        net, ids, rng = grown_network(size=120, seed=2)
        for prefix in [(), ("a",), ("a", "b")]:
            members = sorted(
                n for n in net.nodes if net.nodes[n].path[: len(prefix)] == prefix
            )
            if len(members) < 2:
                continue
            depth = len(prefix)
            for i, node in enumerate(members):
                expected = members[(i + 1) % len(members)]
                assert net.nodes[node].rings[depth].successor == expected

    def test_lookup_total_after_join(self):
        net, ids, rng = grown_network(size=150, seed=3)
        for _ in range(100):
            a, b = rng.sample(ids, 2)
            r = net.lookup(a, b)
            assert r.success and r.terminal == b

    def test_join_with_explicit_bootstrap(self):
        net, ids, rng = grown_network(size=50, seed=4)
        new_id = net.space.random_id(rng)
        messages = net.join(new_id, ("a", "a"), bootstrap_id=ids[0])
        assert messages > 0
        assert new_id in net.nodes


class TestLeave:
    def test_graceful_leave_updates_neighbors(self):
        net, ids, rng = grown_network(size=100, seed=5)
        victim = ids[10]
        messages = net.leave(victim)
        assert messages > 0
        assert victim not in net.nodes
        for node in net.nodes.values():
            for ring in node.rings.values():
                assert victim not in ring.fingers
                assert victim not in ring.successors

    def test_convergence_after_leaves(self):
        net, ids, rng = grown_network(size=150, seed=6)
        for victim in ids[:30]:
            net.leave(victim)
        rounds = net.stabilize_to_convergence()
        assert rounds <= 3, "graceful leaves need no chain repair"
        assert net.static_links() == net.oracle_links()

    def test_lookup_after_leaves(self):
        net, ids, rng = grown_network(size=150, seed=7)
        for victim in ids[:30]:
            net.leave(victim)
        live = ids[30:]
        for _ in range(60):
            a, b = rng.sample(live, 2)
            r = net.lookup(a, b)
            assert r.success and r.terminal == b


class TestCrash:
    def test_crash_then_repair(self):
        net, ids, rng = grown_network(size=150, seed=8)
        for victim in ids[:20]:
            net.crash(victim)
        rounds = net.stabilize_to_convergence()
        assert rounds <= 20
        assert net.static_links() == net.oracle_links()

    def test_lookup_survives_crashes_via_leaf_sets(self):
        net, ids, rng = grown_network(size=200, seed=9)
        crashed = set(ids[:20])
        for victim in crashed:
            net.crash(victim)
        live = [i for i in ids if i not in crashed]
        delivered = 0
        for _ in range(80):
            a, b = rng.sample(live, 2)
            r = net.lookup(a, b)
            delivered += r.success and r.terminal == b
        assert delivered >= 70, "leaf sets should route around most crashes"

    def test_mixed_churn_converges(self):
        net, ids, rng = grown_network(size=200, seed=10)
        for victim in ids[:25]:
            (net.leave if rng.random() < 0.5 else net.crash)(victim)
        for _ in range(10):
            new_id = net.space.random_id(rng)
            while new_id in net.nodes:
                new_id = net.space.random_id(rng)
            net.join(new_id, (rng.choice("ab"), rng.choice("ab")))
        net.stabilize_to_convergence()
        assert net.static_links() == net.oracle_links()


class TestGap:
    def test_gap_matches_lower_ring_successor(self):
        net, ids, rng = grown_network(size=100, seed=11)
        for node_id in ids[:20]:
            node = net.nodes[node_id]
            for depth in range(node.leaf_depth):
                lower_succ = node.rings[depth + 1].successor
                gap = net._gap(node, depth)
                if lower_succ is None or lower_succ == node_id:
                    assert gap == net.space.size
                else:
                    assert gap == net.space.ring_distance(node_id, lower_succ)


class TestMessageAccounting:
    def test_kinds_recorded(self):
        net, ids, rng = grown_network(size=60, seed=12)
        counts = net.msgs.stats.counts
        assert counts["join_lookup"] > 0
        assert counts["notify"] > 0
        assert counts["join_finger"] > 0

    def test_stabilize_counts(self):
        net, ids, rng = grown_network(size=60, seed=13)
        used = net.stabilize()
        assert used > 0
        assert net.msgs.stats.counts["ping"] > 0


class TestSuspendRevive:
    """Partition primitives: dark-but-state-retained vs crashed-and-purged."""

    def test_suspend_hides_node_but_keeps_state(self):
        net, ids, rng = grown_network(size=40, seed=21)
        victim = ids[7]
        rings_before = {
            d: list(net.nodes[victim].rings[d].successors)
            for d in net.nodes[victim].rings
        }
        net.suspend(victim)
        assert not net.nodes[victim].alive
        assert victim in net.nodes
        assert net.suspended_ids() == [victim]
        assert victim not in net.live_view()
        # Frozen state is untouched while dark.
        for depth, succs in rings_before.items():
            assert list(net.nodes[victim].rings[depth].successors) == succs

    def test_stabilize_purges_crashed_but_not_suspended(self):
        net, ids, rng = grown_network(size=40, seed=22)
        suspended, crashed = ids[3], ids[11]
        net.suspend(suspended)
        net.crash(crashed)
        for _ in range(3):
            net.stabilize()
        assert suspended in net.nodes, "suspended node was purged"
        assert crashed not in net.nodes, "crashed node was never purged"
        assert net.suspended_ids() == [suspended]

    def test_revive_restores_membership(self):
        net, ids, rng = grown_network(size=40, seed=23)
        victim = ids[5]
        before = set(net.live_view())
        net.suspend(victim)
        assert set(net.live_view()) == before - {victim}
        net.revive(victim)
        assert net.nodes[victim].alive
        assert net.suspended_ids() == []
        assert set(net.live_view()) == before

    def test_suspend_requires_alive_revive_requires_suspended(self):
        net, ids, rng = grown_network(size=20, seed=24)
        net.crash(ids[2])
        with pytest.raises(ValueError, match="not alive"):
            net.suspend(ids[2])
        with pytest.raises(ValueError, match="not suspended"):
            net.revive(ids[3])
        # A plain crash is not a suspension either.
        with pytest.raises(ValueError, match="not suspended"):
            net.revive(ids[2])

    def test_forgetting_a_suspended_node_clears_the_mark(self):
        net, ids, rng = grown_network(size=20, seed=25)
        victim = ids[4]
        net.suspend(victim)
        net.revive(victim)
        net.crash(victim)
        net.stabilize()
        assert victim not in net.nodes
        assert net.suspended_ids() == []
