"""Tests for the churn workload driver."""

from __future__ import annotations

import random

import pytest

from repro import IdSpace
from repro.simulation.churn import ChurnConfig, run_churn
from repro.simulation.protocol import SimulatedCrescendo

PATHS = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]


def seeded_net(size=80, seed=0):
    rng = random.Random(seed)
    space = IdSpace(32)
    net = SimulatedCrescendo(space)
    for node_id in space.random_ids(size, rng):
        net.join(node_id, PATHS[rng.randrange(len(PATHS))])
    return net, rng


class TestRunChurn:
    def test_requires_bootstrap(self):
        net = SimulatedCrescendo(IdSpace(32))
        with pytest.raises(ValueError):
            run_churn(net, random.Random(0), PATHS)

    def test_population_changes(self):
        net, rng = seeded_net()
        config = ChurnConfig(joins=30, leaves=10, crashes=5, lookups=50)
        report = run_churn(net, rng, PATHS, config)
        assert report.final_population == 80 + 30 - 10 - 5

    def test_converges_to_oracle(self):
        net, rng = seeded_net(seed=1)
        report = run_churn(net, rng, PATHS, ChurnConfig())
        assert report.converged_to_oracle

    def test_high_delivery_under_churn(self):
        net, rng = seeded_net(seed=2)
        report = run_churn(
            net, rng, PATHS, ChurnConfig(joins=40, leaves=20, crashes=10, lookups=150)
        )
        assert report.lookups_attempted > 100
        assert report.delivery_rate > 0.9

    def test_message_accounting(self):
        net, rng = seeded_net(seed=3)
        report = run_churn(net, rng, PATHS, ChurnConfig())
        assert report.join_messages > 0
        assert report.leave_messages > 0
        assert report.stabilize_messages > 0
        assert report.lookup_messages > 0

    def test_no_lookups_perfect_rate(self):
        net, rng = seeded_net(seed=4)
        report = run_churn(
            net, rng, PATHS, ChurnConfig(joins=5, leaves=2, crashes=1, lookups=0)
        )
        assert report.delivery_rate == 1.0
