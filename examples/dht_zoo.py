"""The whole zoo: every flat DHT and its Canonical version, side by side.

Builds Chord/Crescendo, Symphony/Cacophony, ND-Chord/ND-Crescendo,
Kademlia/Kandy and CAN/Can-Can on the same 1500 nodes (3-level hierarchy)
and compares average degree and routing hops — the paper's claim is that
every Canonical construction keeps its flat sibling's state/hops budget
while adding hierarchical locality.

Run:  python examples/dht_zoo.py
"""

import random
import statistics

from repro import (
    CacophonyNetwork,
    ChordNetwork,
    CrescendoNetwork,
    IdSpace,
    KademliaNetwork,
    KandyNetwork,
    NDChordNetwork,
    NDCrescendoNetwork,
    SymphonyNetwork,
    build_can,
    build_cancan,
    build_uniform_hierarchy,
    route,
)
from repro.analysis import Table

SIZE = 1500


def measure_ring(net, ids, rng, samples=300):
    hops = []
    for _ in range(samples):
        a, b = rng.sample(ids, 2)
        result = route(net, a, b)
        assert result.success and result.terminal == b
        hops.append(result.hops)
    return statistics.mean(hops)


def measure_can(net, rng, samples=300):
    hops = []
    ids = net.node_ids
    for _ in range(samples):
        a, b = rng.sample(ids, 2)
        result = net.route_bitfix(a, net.prefixes[b].padded(net.space.bits))
        assert result.success and result.terminal == b
        hops.append(result.hops)
    return statistics.mean(hops)


def main() -> None:
    rng = random.Random(5)
    space = IdSpace(32)
    ids = space.random_ids(SIZE, rng)
    flat = build_uniform_hierarchy(ids, 10, 1, random.Random(5))
    deep = build_uniform_hierarchy(ids, 10, 3, random.Random(5))

    table = Table(
        f"Flat DHTs vs their Canonical versions ({SIZE} nodes, 3-level hierarchy)",
        ["family", "system", "avg degree", "avg hops"],
    )

    pairs = [
        ("Chord", ChordNetwork(space, flat).build(),
         "Crescendo", CrescendoNetwork(space, deep).build()),
        ("Symphony", SymphonyNetwork(space, flat, random.Random(6)).build(),
         "Cacophony", CacophonyNetwork(space, deep, random.Random(6)).build()),
        ("ND-Chord", NDChordNetwork(space, flat, random.Random(7)).build(),
         "ND-Crescendo", NDCrescendoNetwork(space, deep, random.Random(7)).build()),
        ("Kademlia", KademliaNetwork(space, flat, random.Random(8)).build(),
         "Kandy", KandyNetwork(space, deep, random.Random(8)).build()),
    ]
    for flat_name, flat_net, canon_name, canon_net in pairs:
        table.add_row(flat_name, "flat", flat_net.average_degree(),
                      measure_ring(flat_net, ids, rng))
        table.add_row(flat_name, canon_name, canon_net.average_degree(),
                      measure_ring(canon_net, ids, rng))

    # CAN works on prefix-tree identifiers; build its own id universe.
    paths = [deep.path_of(i) for i in ids]
    can = build_can(space, SIZE, random.Random(9))
    cancan = build_cancan(space, SIZE, random.Random(9), paths)
    table.add_row("CAN", "flat", can.average_degree(), measure_can(can, rng))
    table.add_row("CAN", "Can-Can", cancan.average_degree(), measure_can(cancan, rng))

    print(table.render())
    print("\nEvery Canonical system keeps (or beats) its flat sibling's "
          "degree budget at near-identical hop counts.")


if __name__ == "__main__":
    main()
