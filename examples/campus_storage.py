"""Campus file sharing with storage domains, access control and caching.

Models the paper's Figure 1: machines at stanford are organised as
stanford > {cs, ee} > {db, ds, ai / circuits, systems}.  Documents can be
pinned to a storage domain (where the bytes live), made readable by a wider
access domain, and query answers are cached at per-level proxy nodes.

Run:  python examples/campus_storage.py
"""

import random

from repro import CrescendoNetwork, IdSpace, hierarchy_from_names
from repro.storage import CachingStore, HierarchicalStore


def build_campus(rng):
    space = IdSpace(32)
    groups = [
        "stanford.cs.db",
        "stanford.cs.ds",
        "stanford.cs.ai",
        "stanford.ee.circuits",
        "stanford.ee.systems",
    ]
    names = {}
    for group in groups:
        for _ in range(40):
            node_id = space.random_id(rng)
            while node_id in names:
                node_id = space.random_id(rng)
            names[node_id] = group
    hierarchy = hierarchy_from_names(names)
    return CrescendoNetwork(space, hierarchy).build()


def main() -> None:
    rng = random.Random(42)
    net = build_campus(rng)
    store = HierarchicalStore(net)
    h = net.hierarchy

    db_nodes = h.members(("stanford", "cs", "db"))
    ee_nodes = h.members(("stanford", "ee"))
    cs_nodes = h.members(("stanford", "cs"))
    author = db_nodes[0]

    # 1. A DB-internal dataset: stored in DB, readable only within DB.
    store.put(author, "db/experiments.csv", b"<rows>",
              storage_domain=("stanford", "cs", "db"),
              access_domain=("stanford", "cs", "db"))

    # 2. A CS tech report: stored in DB, readable by all of CS.
    store.put(author, "cs/tr-2004-17.pdf", b"<pdf>",
              storage_domain=("stanford", "cs", "db"),
              access_domain=("stanford", "cs"))

    # 3. A campus-wide announcement: stored in CS, readable everywhere.
    store.put(author, "campus/colloquium.txt", b"<talk>",
              storage_domain=("stanford", "cs"))

    # DB colleagues find the dataset without the query ever leaving DB.
    reader = db_nodes[7]
    result = store.get(reader, "db/experiments.csv")
    stays = all(h.path_of(n)[:3] == ("stanford", "cs", "db") for n in result.path)
    print(f"[db reader]  found={result.found}  hops={result.hops}  "
          f"query stayed inside DB: {stays}")

    # An EE node cannot see it (access control falls out of routing):
    snoop = ee_nodes[3]
    result = store.get(snoop, "db/experiments.csv")
    print(f"[ee snoop]   dataset visible to EE: {result.found}  (want False)")

    # The tech report is visible CS-wide (via the pointer in the CS ring)…
    ai_reader = h.members(("stanford", "cs", "ai"))[0]
    result = store.get(ai_reader, "cs/tr-2004-17.pdf")
    print(f"[cs.ai]      tech report found={result.found}  "
          f"via pointer={result.via_pointer}  hops={result.hops}")

    # …but not outside CS.
    result = store.get(snoop, "cs/tr-2004-17.pdf")
    print(f"[ee snoop]   tech report visible to EE: {result.found}  (want False)")

    # Caching: once one EE node reads the announcement, the EE proxy holds a
    # copy and colleagues hit it in fewer hops.
    caching = CachingStore(store, capacity=128)
    cold = caching.get(ee_nodes[0], "campus/colloquium.txt")
    warm_hops = [caching.get(n, "campus/colloquium.txt").hops for n in ee_nodes[1:9]]
    print(f"[caching]    cold lookup: {cold.hops} hops; "
          f"warm lookups from EE: {warm_hops}")
    print(f"[caching]    hit rate: {caching.stats.hit_rate:.2f}")


if __name__ == "__main__":
    main()
