"""Quickstart: build a Crescendo DHT and route some lookups.

Run:  python examples/quickstart.py
"""

import random
import statistics

from repro import (
    CrescendoNetwork,
    IdSpace,
    build_uniform_hierarchy,
    route,
)


def main() -> None:
    rng = random.Random(7)
    space = IdSpace(32)

    # 1000 nodes arranged in a 3-level conceptual hierarchy (fan-out 10),
    # each drawing a random 32-bit identifier — Section 5.1's setup.
    ids = space.random_ids(1000, rng)
    hierarchy = build_uniform_hierarchy(ids, fanout=10, levels=3, rng=rng)
    net = CrescendoNetwork(space, hierarchy).build()

    print(f"nodes: {net.size}")
    print(f"average links per node: {net.average_degree():.2f} "
          f"(log2 n = {__import__('math').log2(net.size):.2f})")

    # Route between random pairs with plain greedy clockwise routing.
    hops = []
    for _ in range(500):
        src, dst = rng.sample(ids, 2)
        result = route(net, src, dst)
        assert result.success and result.terminal == dst
        hops.append(result.hops)
    print(f"average routing hops: {statistics.mean(hops):.2f} "
          f"(0.5 * log2 n = {0.5 * __import__('math').log2(net.size):.2f})")

    # Key lookup: greedy routing terminates at the responsible node.
    key = space.hash_key("hello-world")
    result = route(net, ids[0], key)
    print(f"key 'hello-world' -> node {result.terminal} in {result.hops} hops")

    # The Canon guarantee: a route between two nodes of the same domain
    # never leaves that domain.
    src = ids[0]
    domain = hierarchy.path_of(src)[:1]
    peer = next(m for m in hierarchy.members(domain) if m != src)
    result = route(net, src, peer)
    inside = all(
        hierarchy.path_of(n)[:1] == domain for n in result.path
    )
    print(f"intra-domain route stays inside {domain!r}: {inside}")


if __name__ == "__main__":
    main()
