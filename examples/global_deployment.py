"""A global deployment on a modelled internet (transit-stub topology).

Attaches 4096 DHT nodes to the paper's 2040-router transit-stub model and
compares the four systems of Figure 6 — Chord and Crescendo, with and
without group-based proximity adaptation — on latency, stretch, and query
locality (Figure 7's axis).

Run:  python examples/global_deployment.py
"""

import random
import statistics

from repro import ChordNetwork, CrescendoNetwork, IdSpace, route
from repro.analysis import Table
from repro.core.routing import route_ring
from repro.proximity import (
    ProximityChordNetwork,
    ProximityCrescendoNetwork,
    route_grouped,
)
from repro.topology import TransitStubTopology
from repro.workloads import locality_pair

NODES = 4096
SAMPLES = 400


def main() -> None:
    rng = random.Random(11)
    print("building 2040-router transit-stub model…")
    topo = TransitStubTopology(rng=rng)

    space = IdSpace(32)
    ids = space.random_ids(NODES, rng)
    hierarchy = topo.attach_nodes(ids, rng)
    latency = topo.node_latency
    direct = topo.average_direct_latency(3000, rng)
    print(f"{NODES} nodes attached; mean direct latency {direct:.0f} ms\n")

    systems = [
        ("Chord (No Prox.)", ChordNetwork(space, hierarchy).build(), route_ring),
        ("Crescendo (No Prox.)", CrescendoNetwork(space, hierarchy).build(), route_ring),
        ("Chord (Prox.)",
         ProximityChordNetwork(space, hierarchy, latency, rng).build(), route_grouped),
        ("Crescendo (Prox.)",
         ProximityCrescendoNetwork(space, hierarchy, latency, rng).build(), route_grouped),
    ]

    table = Table("Figure 6 shape: stretch and latency", ["system", "stretch", "ms"])
    for label, net, router in systems:
        lats = []
        for _ in range(SAMPLES):
            a, b = rng.sample(ids, 2)
            result = router(net, a, b)
            assert result.success
            lats.append(result.latency(latency))
        mean = statistics.mean(lats)
        table.add_row(label, mean / direct, mean)
    print(table.render())

    # Query locality (Figure 7's axis): latency when the destination is
    # drawn from the source's level-L domain.
    print()
    loc = Table(
        "Figure 7 shape: latency (ms) vs query locality",
        ["locality", "Crescendo", "Chord (Prox.)"],
    )
    crescendo, chord_prox = systems[1][1], systems[2][1]
    for level in (0, 1, 2, 3, 4):
        pairs = [locality_pair(hierarchy, ids, rng, level) for _ in range(200)]
        cres = statistics.mean(
            route_ring(crescendo, a, b).latency(latency) for a, b in pairs
        )
        chor = statistics.mean(
            route_grouped(chord_prox, a, b).latency(latency) for a, b in pairs
        )
        name = "Top Level" if level == 0 else f"Level {level}"
        loc.add_row(name, cres, chor)
    print(loc.render())


if __name__ == "__main__":
    main()
