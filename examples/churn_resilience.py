"""Dynamic maintenance under churn, plus fault isolation.

Grows a Crescendo network node by node through the Section 2.3 join
protocol, subjects it to leaves and crashes while measuring lookup delivery,
verifies the repaired link tables against the static oracle construction,
and demonstrates fault isolation: killing every node outside a domain leaves
intra-domain routing completely untouched (unlike flat Chord).

Run:  python examples/churn_resilience.py
"""

import random
import statistics

from repro import ChordNetwork, CrescendoNetwork, IdSpace, build_uniform_hierarchy
from repro.simulation import (
    ChurnConfig,
    SimulatedCrescendo,
    intra_domain_isolation,
    run_churn,
)

PATHS = [
    ("us", "west"), ("us", "east"),
    ("eu", "north"), ("eu", "south"),
    ("asia", "east"),
]


def main() -> None:
    rng = random.Random(3)
    space = IdSpace(32)

    # --- grow the network through the join protocol --------------------
    net = SimulatedCrescendo(space)
    costs = []
    for node_id in space.random_ids(300, rng):
        costs.append(net.join(node_id, PATHS[rng.randrange(len(PATHS))]))
    print(f"grew to {len(net.nodes)} nodes; "
          f"mean join cost {statistics.mean(costs[10:]):.1f} messages "
          f"(O(log n), log2 n = {__import__('math').log2(300):.1f})")

    net.stabilize()
    exact = net.static_links() == net.oracle_links()
    print(f"link tables equal the static oracle construction: {exact}")

    # --- churn ----------------------------------------------------------
    report = run_churn(
        net, rng, PATHS,
        ChurnConfig(joins=60, leaves=30, crashes=15, lookups=300),
    )
    print(f"\nchurn: +60 joins, -30 leaves, -15 crashes, 300 live lookups")
    print(f"  delivery rate during churn: {report.delivery_rate:.3f}")
    print(f"  protocol traffic: join={report.join_messages} "
          f"leave={report.leave_messages} stabilize={report.stabilize_messages}")
    print(f"  converged back to the oracle: {report.converged_to_oracle}")

    # --- fault isolation (static networks, same placements) -------------
    rng2 = random.Random(4)
    ids = space.random_ids(600, rng2)
    hierarchy = build_uniform_hierarchy(ids, 3, 2, rng2)
    crescendo = CrescendoNetwork(space, hierarchy).build()
    chord = ChordNetwork(space, hierarchy).build()
    domain = hierarchy.path_of(ids[0])[:1]

    print(f"\nfault isolation: kill every node outside domain {domain!r}")
    for label, network in (("crescendo", crescendo), ("chord", chord)):
        rep = intra_domain_isolation(network, domain, random.Random(5))
        print(f"  {label:10s} intra-domain delivery {rep.success_rate:5.1%}, "
              f"hop inflation x{rep.hop_inflation:.2f}")


if __name__ == "__main__":
    main()
