"""A DNS-flavoured hierarchical name service on Canon.

The paper's introduction lists DNS as the archetypal hierarchical system.
This example builds one on top of Crescendo's hierarchical storage: each
organisation registers names *inside its own domain* (bytes never leave it),
delegates lookups upward through access domains, and benefits from proxy
caching for repeated resolution — all without any dedicated infrastructure,
on the same flat pool of cooperating nodes.

Run:  python examples/name_service.py
"""

import random

from repro import CrescendoNetwork, IdSpace, hierarchy_from_names
from repro.storage import CachingStore, HierarchicalStore


class NameService:
    """resolve(querier, "host.domain.tld") -> record, with scoped publishing."""

    def __init__(self, store: CachingStore) -> None:
        self.store = store
        self.hierarchy = store.hierarchy

    def publish(self, registrar: int, name: str, record: str,
                zone_depth: int = 1, visibility_depth: int = 0) -> None:
        """Register a name.

        ``zone_depth`` pins the record's bytes inside the registrar's
        depth-``zone_depth`` domain (its organisation); ``visibility_depth``
        controls who may resolve it (0 = everyone).
        """
        path = self.hierarchy.path_of(registrar)
        self.store.put(
            registrar, name, record,
            storage_domain=path[:zone_depth],
            access_domain=path[:visibility_depth],
        )

    def resolve(self, querier: int, name: str):
        result = self.store.get(querier, name)
        return (result.values[0] if result.found else None), result


def main() -> None:
    rng = random.Random(23)
    space = IdSpace(32)
    orgs = ["acme.eng", "acme.sales", "globex.research", "globex.ops"]
    names = {}
    for org in orgs:
        for _ in range(50):
            node_id = space.random_id(rng)
            while node_id in names:
                node_id = space.random_id(rng)
            names[node_id] = org
    hierarchy = hierarchy_from_names(names)
    net = CrescendoNetwork(space, hierarchy).build()
    service = NameService(CachingStore(HierarchicalStore(net), capacity=256))

    acme_eng = hierarchy.members(("acme", "eng"))
    globex = hierarchy.members(("globex",))

    # Public record: anyone can resolve www.acme.com.
    service.publish(acme_eng[0], "www.acme.com", "A 203.0.113.10")
    # Organisation-internal record: only acme hosts may resolve it.
    service.publish(acme_eng[0], "vault.acme.internal",
                    "A 10.0.0.2", zone_depth=1, visibility_depth=1)

    record, result = service.resolve(globex[0], "www.acme.com")
    print(f"globex resolves www.acme.com      -> {record}  ({result.hops} hops)")

    record, result = service.resolve(globex[0], "vault.acme.internal")
    print(f"globex resolves vault (internal)  -> {record}  (want None)")

    acme_sales = hierarchy.members(("acme", "sales"))
    record, result = service.resolve(acme_sales[0], "vault.acme.internal")
    print(f"acme.sales resolves vault         -> {record}  ({result.hops} hops)")

    # Repeated resolution exploits the per-level proxy caches.
    cold = service.resolve(globex[1], "www.acme.com")[1].hops
    warm = [service.resolve(node, "www.acme.com")[1].hops for node in globex[2:10]]
    print(f"cold lookup: {cold} hops; warm lookups from globex: {warm}")
    print(f"cache hit rate: {service.store.stats.hit_rate:.2f}")


if __name__ == "__main__":
    main()
