"""Publish/subscribe multicast over Canon DHTs (the paper's §1 use case).

A video stream with 1000 subscribers: the dissemination tree is the union
of the subscribers' reversed query paths (Figure 9's construction, turned
into a service).  On Crescendo, convergence of inter-domain paths makes
same-domain subscribers share their tree spine, so the expensive
inter-domain links carry each packet a handful of times instead of
hundreds.

Run:  python examples/multicast_pubsub.py
"""

import random

from repro import ChordNetwork, CrescendoNetwork, IdSpace
from repro.analysis import Table
from repro.multicast import MulticastService
from repro.topology import TransitStubTopology

SUBSCRIBERS = 1000
NODES = 4096


def main() -> None:
    rng = random.Random(17)
    print("building transit-stub internet + attaching nodes…")
    topo = TransitStubTopology(rng=rng)
    space = IdSpace(32)
    ids = space.random_ids(NODES, rng)
    hierarchy = topo.attach_nodes(ids, rng)
    latency = topo.node_latency

    subscribers = rng.sample(ids, SUBSCRIBERS)
    table = Table(
        f"Streaming to {SUBSCRIBERS} subscribers — dissemination tree cost",
        ["system", "tree edges", "x-transit-domain", "x-transit-node",
         "x-stub-domain", "mean delivery ms"],
    )
    for label, net in (
        ("Crescendo", CrescendoNetwork(space, hierarchy).build()),
        ("Chord", ChordNetwork(space, hierarchy).build()),
    ):
        service = MulticastService(net, latency_fn=latency)
        service.create_topic("live-stream")
        for node in subscribers:
            service.subscribe(node, "live-stream")
        report = service.publish("live-stream")
        assert report.delivered_all(set(subscribers))
        mean_latency = sum(report.latencies.values()) / len(report.latencies)
        table.add_row(
            label,
            report.messages,
            report.interdomain_links[1],
            report.interdomain_links[2],
            report.interdomain_links[3],
            mean_latency,
        )
    print(table.render())
    print("\nEvery subscriber received the stream in both systems; Crescendo "
          "just pays for it with a fraction of the inter-domain bandwidth.")


if __name__ == "__main__":
    main()
