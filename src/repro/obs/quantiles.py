"""Streaming quantile estimation for the SLO layer.

Two estimators plus two pure helpers:

- :func:`percentile` — exact linear-interpolation quantile of a sorted
  sample (numpy's default ``percentile`` method, without requiring numpy).
- :func:`bucket_quantile` — quantile interpolated from fixed histogram
  buckets; the coarse fallback when no sample is available.
- :class:`ReservoirSample` — uniform reservoir (Vitter's algorithm R) with
  a deterministic per-name seed.  Exact while the stream fits in the
  reservoir; an unbiased uniform subsample beyond that.  This is what
  :class:`repro.obs.metrics.Histogram` carries so snapshots can answer
  p50/p95/p99 in milliseconds rather than bucket bounds.
- :class:`P2Quantile` — the Jain & Chlamtac P² marker estimator: O(1)
  memory per tracked quantile, no sample retention.  Used where even a
  bounded reservoir is too much state (and property-tested against numpy
  percentiles in ``tests/test_obs_slo.py``).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

__all__ = [
    "DEFAULT_RESERVOIR_CAP",
    "P2Quantile",
    "ReservoirSample",
    "bucket_quantile",
    "percentile",
]

#: Default reservoir capacity: exact quantiles for every smoke/small run,
#: ~1.5% worst-case p99 sampling error at paper scale, 32 KiB per histogram.
DEFAULT_RESERVOIR_CAP = 4096


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending-sorted sample.

    Matches ``numpy.percentile(values, q * 100)`` (the default "linear"
    method).  ``q`` is a fraction in [0, 1].  Returns 0.0 for an empty
    sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return float(sorted_values[0])
    h = (n - 1) * q
    lo = math.floor(h)
    hi = min(lo + 1, n - 1)
    frac = h - lo
    return float(sorted_values[lo]) + frac * (
        float(sorted_values[hi]) - float(sorted_values[lo])
    )


def bucket_quantile(
    buckets: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Quantile interpolated from fixed histogram buckets (coarse).

    Assumes observations are uniform within each bucket; the overflow
    bucket reports its lower bound.  Only used when a histogram snapshot
    carries no reservoir sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0.0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= target:
            lo = 0.0 if i == 0 else float(buckets[i - 1])
            if i >= len(buckets):  # overflow bucket: no upper bound
                return lo
            hi = float(buckets[i])
            frac = (target - seen) / count
            return lo + frac * (hi - lo)
        seen += count
    lo = float(buckets[-1]) if buckets else 0.0
    return lo


class ReservoirSample:
    """Uniform fixed-capacity reservoir (algorithm R), deterministic.

    The replacement RNG is seeded from ``name`` so two runs observing the
    same value stream produce the same reservoir — snapshots and the SLO
    tables built from them are reproducible.
    """

    __slots__ = ("cap", "seen", "values", "_rng", "_name")

    def __init__(self, name: str = "", cap: int = DEFAULT_RESERVOIR_CAP) -> None:
        if cap <= 0:
            raise ValueError(f"reservoir capacity must be positive, got {cap}")
        self.cap = cap
        self.seen = 0
        self.values: List[float] = []
        self._name = name
        self._rng: Optional[random.Random] = None

    def _rand(self) -> random.Random:
        if self._rng is None:
            self._rng = random.Random(f"reservoir:{self._name}:{self.cap}")
        return self._rng

    @property
    def exact(self) -> bool:
        """True while every observation is still retained."""
        return self.seen <= self.cap

    def observe(self, value: float) -> None:
        """Offer one value to the reservoir."""
        self.seen += 1
        if len(self.values) < self.cap:
            self.values.append(float(value))
            return
        j = self._rand().randrange(self.seen)
        if j < self.cap:
            self.values[j] = float(value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Offer a batch (equivalent to per-value :meth:`observe`)."""
        free = self.cap - len(self.values)
        head = min(free, len(values))
        if head:
            self.values.extend(float(v) for v in values[:head])
            self.seen += head
        rand = self._rand() if head < len(values) else None
        for v in values[head:]:
            self.seen += 1
            j = rand.randrange(self.seen)
            if j < self.cap:
                self.values[j] = float(v)

    def quantile(self, q: float) -> float:
        """Quantile of the retained sample (exact while ``exact``)."""
        return percentile(sorted(self.values), q)


class P2Quantile:
    """Jain & Chlamtac's P² single-quantile estimator (O(1) memory).

    Five markers track the running quantile without retaining the stream;
    heights are adjusted with the piecewise-parabolic (P²) formula.  Exact
    for the first five observations, a close estimate afterwards.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"P2 quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        """Feed one observation to the estimator."""
        value = float(value)
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        h = self._heights
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            n_i, n_lo, n_hi = self._positions[i], self._positions[i - 1], self._positions[i + 1]
            if (d >= 1.0 and n_hi - n_i > 1.0) or (d <= -1.0 and n_lo - n_i < -1.0):
                sign = 1.0 if d >= 1.0 else -1.0
                candidate = h[i] + (sign / (n_hi - n_lo)) * (
                    (n_i - n_lo + sign) * (h[i + 1] - h[i]) / (n_hi - n_i)
                    + (n_hi - n_i - sign) * (h[i] - h[i - 1]) / (n_i - n_lo)
                )
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic step overshot: fall back to linear
                    h[i] += sign * (h[i + int(sign)] - h[i]) / (
                        self._positions[i + int(sign)] - n_i
                    )
                self._positions[i] += sign

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if not self._heights:
            return 0.0
        if self.count <= 5:
            return percentile(sorted(self._heights), self.q)
        return self._heights[2]
