"""Family x level SLO tables from metrics snapshots.

The measurement harness (:func:`repro.analysis.metrics.sample_routing` with
an ``slo_label``, and :func:`repro.simulation.churn.run_churn` with a
latency oracle) records, per family label:

- ``slo.lookup_ms.<label>`` — end-to-end lookup latency histogram (ms),
  delivered lookups only, with a reservoir sample for true quantiles;
- ``slo.lookup_ms.<label>.L<k>`` — the same, split by hierarchy level
  ``k`` = the depth of the lowest common domain of source and target
  (L0 = cross-root traffic, deeper = more local);
- ``slo.direct_ms.<label>`` (and ``.L<k>``) — the direct source→target
  link latency for the same pairs, the paper's stretch denominator;
- counters ``slo.samples.<label>`` / ``slo.delivered.<label>`` — offered
  vs delivered lookups, giving availability.

:class:`SLOReport` parses those names back out of a
:class:`~repro.obs.metrics.MetricsSnapshot` and renders the family x
level -> {p50, p95, p99 lookup ms, stretch vs direct, availability}
table; ``python -m repro.obs report`` is the CLI wrapper that emits it as
text, JSON, or CSV.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsSnapshot

__all__ = ["SLORow", "SLOReport"]

_LOOKUP_PREFIX = "slo.lookup_ms."
_DIRECT_PREFIX = "slo.direct_ms."


def _split_level(rest: str) -> Tuple[str, str]:
    """``"chord.L2" -> ("chord", "L2")``; no suffix -> level ``"all"``."""
    head, dot, tail = rest.rpartition(".")
    if dot and len(tail) > 1 and tail[0] == "L" and tail[1:].isdigit():
        return head, tail
    return rest, "all"


@dataclass
class SLORow:
    """One family x level line of the SLO table."""

    family: str
    level: str  #: ``"all"`` or ``"L<k>"`` (k = common-domain depth)
    samples: int  #: offered lookups (all levels) / delivered at this level
    delivered: int
    availability: float  #: delivered / offered (family-wide)
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    stretch: float  #: mean lookup ms / mean direct ms (0 when no direct data)


class SLOReport:
    """A sorted collection of :class:`SLORow` built from a snapshot."""

    def __init__(self, rows: List[SLORow]) -> None:
        self.rows = rows

    @classmethod
    def from_snapshot(cls, snapshot: MetricsSnapshot) -> "SLOReport":
        """Parse every ``slo.*`` instrument in ``snapshot`` into rows."""
        lookups: Dict[Tuple[str, str], str] = {}
        for name in snapshot.histograms:
            if name.startswith(_LOOKUP_PREFIX):
                family, level = _split_level(name[len(_LOOKUP_PREFIX):])
                lookups[(family, level)] = name
        rows: List[SLORow] = []
        for (family, level), name in sorted(lookups.items()):
            hist = snapshot.histograms[name]
            count = int(hist["count"])
            mean = hist["sum"] / count if count else 0.0
            direct_name = _DIRECT_PREFIX + family + ("" if level == "all" else f".{level}")
            direct = snapshot.histograms.get(direct_name)
            stretch = 0.0
            if direct and direct["count"] and direct["sum"]:
                stretch = mean / (direct["sum"] / direct["count"])
            offered = int(snapshot.counters.get(f"slo.samples.{family}", 0))
            delivered = int(snapshot.counters.get(f"slo.delivered.{family}", 0))
            if level == "all":
                samples = offered or count
            else:
                samples = count
            availability = delivered / offered if offered else (1.0 if count else 0.0)
            rows.append(
                SLORow(
                    family=family,
                    level=level,
                    samples=samples,
                    delivered=delivered if level == "all" else count,
                    availability=availability,
                    p50_ms=snapshot.quantile(name, 0.50),
                    p95_ms=snapshot.quantile(name, 0.95),
                    p99_ms=snapshot.quantile(name, 0.99),
                    mean_ms=mean,
                    stretch=stretch,
                )
            )
        return cls(rows)

    @classmethod
    def from_json_file(cls, path: str) -> "SLOReport":
        """Build a report from an exported metrics-snapshot JSON file."""
        with open(path) as fh:
            return cls.from_snapshot(MetricsSnapshot.from_json(fh.read()))

    def __len__(self) -> int:
        return len(self.rows)

    def row(self, family: str, level: str = "all") -> Optional[SLORow]:
        """The row for ``(family, level)``, or ``None``."""
        for row in self.rows:
            if row.family == family and row.level == level:
                return row
        return None

    # --------------------------------------------------------------- export

    def to_json(self, indent: int = 2) -> str:
        """JSON document: ``{"rows": [{family, level, ...}]}``."""
        return json.dumps({"rows": [asdict(r) for r in self.rows]}, indent=indent)

    def to_csv(self) -> str:
        """Flat CSV with one row per family x level."""
        lines = [
            "family,level,samples,delivered,availability,"
            "p50_ms,p95_ms,p99_ms,mean_ms,stretch"
        ]
        for r in self.rows:
            lines.append(
                f"{r.family},{r.level},{r.samples},{r.delivered},"
                f"{r.availability:.6f},{r.p50_ms:.6f},{r.p95_ms:.6f},"
                f"{r.p99_ms:.6f},{r.mean_ms:.6f},{r.stretch:.6f}"
            )
        return "\n".join(lines)

    def to_markdown(self, title: str = "SLO report") -> str:
        """GitHub-flavoured markdown table (for CI artifacts)."""
        if not self.rows:
            return f"**{title}**\n\nno slo.* instruments found in this snapshot"
        lines = [
            f"**{title}**",
            "",
            "| family | level | samples | avail | p50 ms | p95 ms "
            "| p99 ms | stretch |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for r in self.rows:
            stretch = f"{r.stretch:.3f}" if r.stretch else "-"
            lines.append(
                f"| {r.family} | {r.level} | {r.samples} "
                f"| {r.availability:.3f} | {r.p50_ms:.2f} | {r.p95_ms:.2f} "
                f"| {r.p99_ms:.2f} | {stretch} |"
            )
        return "\n".join(lines)

    def render(self) -> str:
        """An aligned text table (what the report CLI prints)."""
        if not self.rows:
            return "no slo.* instruments found in this snapshot"
        headers = (
            "family", "level", "samples", "avail", "p50 ms", "p95 ms",
            "p99 ms", "stretch",
        )
        cells = [
            (
                r.family,
                r.level,
                str(r.samples),
                f"{r.availability:.3f}",
                f"{r.p50_ms:.2f}",
                f"{r.p95_ms:.2f}",
                f"{r.p99_ms:.2f}",
                f"{r.stretch:.3f}" if r.stretch else "-",
            )
            for r in self.rows
        ]
        widths = [
            max(len(headers[i]), max(len(row[i]) for row in cells))
            for i in range(len(headers))
        ]
        def fmt(row: Tuple[str, ...]) -> str:
            left = row[0].ljust(widths[0])
            rest = "  ".join(row[i].rjust(widths[i]) for i in range(1, len(row)))
            return f"{left}  {rest}"
        out = [fmt(headers), fmt(tuple("-" * w for w in widths))]
        out.extend(fmt(row) for row in cells)
        return "\n".join(out)
