"""Phase timers and an opt-in sampling profiler.

The experiment harness wants one cheap question answered per figure run:
where did the time go — building networks, routing queries, or analysing
results?  :class:`PhaseProfiler` accumulates wall-clock time per named
phase (two ``perf_counter`` calls per phase entry; phases are coarse, so
the overhead is unmeasurable).  The module-level :data:`PROFILER` is the
default instance the library instruments into
:mod:`repro.experiments.common` and :mod:`repro.analysis.metrics`; the CLI
``--profile`` flag reports it after each run.

For *why is this phase slow*, :class:`SamplingProfiler` is an opt-in
statistical profiler: a daemon thread samples every thread's current stack
at a fixed interval and counts frames — no dependencies, no
instrumentation of the profiled code, a few percent overhead at the
default 5 ms interval.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _Counter
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per named phase."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the ``with`` body under ``name`` (nesting is fine)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def reset(self) -> None:
        """Zero all accumulated phases."""
        self.totals.clear()
        self.calls.clear()

    def absorb(self, phases: Dict[str, Dict[str, float]]) -> None:
        """Fold an :meth:`as_dict` payload (e.g. from a worker process) in."""
        for name, entry in phases.items():
            self.totals[name] = self.totals.get(name, 0.0) + entry["seconds"]
            self.calls[name] = self.calls.get(name, 0) + int(entry["calls"])

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": total, "calls": n}}`` for JSON embedding."""
        return {
            name: {"seconds": self.totals[name], "calls": self.calls[name]}
            for name in sorted(self.totals)
        }

    def report(self) -> str:
        """A small fixed-width table of phases, slowest first."""
        if not self.totals:
            return "no phases recorded"
        width = max(len(name) for name in self.totals)
        lines = [f"{'phase'.ljust(width)}  seconds    calls"]
        for name, secs in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name.ljust(width)}  {secs:8.3f}  {self.calls[name]:6d}")
        return "\n".join(lines)


#: Default profiler instrumented into the experiment scaffolding.
PROFILER = PhaseProfiler()


class SamplingProfiler:
    """Statistical profiler: periodically samples all thread stacks.

    Usage::

        with SamplingProfiler(interval=0.005) as prof:
            run_expensive_thing()
        print(prof.report(15))

    Samples are attributed to every frame on the stack (inclusive time),
    keyed by ``function (file:line)``.  The profiled code needs no changes
    and pays nothing beyond the GIL time of the sampler thread.
    """

    def __init__(self, interval: float = 0.005) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.samples: _Counter = _Counter()
        self.total_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _sample_loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            for ident, frame in sys._current_frames().items():
                if ident == own:
                    continue
                self.total_samples += 1
                while frame is not None:
                    code = frame.f_code
                    key = f"{code.co_name} ({code.co_filename}:{code.co_firstlineno})"
                    self.samples[key] += 1
                    frame = frame.f_back

    def start(self) -> "SamplingProfiler":
        """Begin sampling on a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` most-sampled frames as ``(location, samples)`` pairs."""
        return self.samples.most_common(n)

    def report(self, n: int = 10) -> str:
        """Human-readable top-``n`` frames with inclusive sample shares."""
        if not self.total_samples:
            return "no samples collected"
        lines = [f"{self.total_samples} samples @ {self.interval * 1000:.1f} ms"]
        for key, count in self.top(n):
            share = 100.0 * count / self.total_samples
            lines.append(f"{share:5.1f}%  {key}")
        return "\n".join(lines)
