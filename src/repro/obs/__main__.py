"""``python -m repro.obs`` — observability CLI.

``report`` turns an exported metrics-snapshot JSON file (``--metrics`` on
the experiments CLI, or any :meth:`MetricsSnapshot.export_json` output)
into the family x level SLO table::

    python -m repro.obs report metrics.json            # text table
    python -m repro.obs report metrics.json --json slo.json --csv slo.csv

The experiments CLI's ``--slo`` flag and the benchmark-smoke CI job call
this to publish a latency table per run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .slo import SLOReport


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.split("\n\n")[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render the family x level SLO table from a snapshot"
    )
    report.add_argument("snapshot", help="metrics snapshot JSON file")
    report.add_argument("--json", metavar="PATH", help="also write the table as JSON")
    report.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    report.add_argument(
        "--markdown", metavar="PATH", help="also write the table as markdown"
    )
    report.add_argument(
        "--quiet", action="store_true", help="suppress the text table on stdout"
    )
    args = parser.parse_args(argv)

    slo = SLOReport.from_json_file(args.snapshot)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(slo.to_json() + "\n")
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(slo.to_csv() + "\n")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(slo.to_markdown() + "\n")
    if not args.quiet:
        print(slo.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
