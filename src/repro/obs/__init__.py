"""Observability: tracing, metrics and profiling for the whole stack.

The paper's evaluation is a measurement exercise — hops, latency stretch,
locality, fault isolation — so the reproduction carries a first-class,
zero-dependency observability layer:

- :mod:`repro.obs.trace` — span/event tracing with a context-manager API
  and per-hop route tracing annotated with the hierarchy level and domain
  each hop was taken at (the quantity behind Figures 7-8).  Exports JSONL
  and Chrome ``chrome://tracing`` trace-event files.
- :mod:`repro.obs.metrics` — a process-local registry of counters, gauges
  and fixed-bucket histograms with snapshot/diff/merge and CSV/JSON export.
  Histograms carry a bounded reservoir of raw observations so snapshots
  answer p50/p95/p99 in milliseconds, not bucket bounds.
- :mod:`repro.obs.quantiles` — the streaming quantile estimators behind
  that (deterministic reservoir sampling and the P² marker algorithm).
- :mod:`repro.obs.slo` — ``SLOReport``: family x level -> {p50/p95/p99
  lookup ms, stretch vs direct, availability} tables parsed back out of a
  snapshot; ``python -m repro.obs report`` is the CLI.
- :mod:`repro.obs.profile` — phase timers (build vs route vs analysis) and
  an opt-in sampling profiler.

Instrumentation is pay-for-what-you-use: with no tracer or registry
activated, the hot routing loop performs no per-hop work — a single
``is None`` check per *route* (not per hop) is the only overhead.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    active_registry,
    collecting,
)
from .profile import PROFILER, PhaseProfiler, SamplingProfiler
from .quantiles import P2Quantile, ReservoirSample, bucket_quantile, percentile
from .slo import SLOReport, SLORow
from .trace import (
    HopAnnotation,
    Tracer,
    active_tracer,
    annotate_hops,
    jsonl_to_chrome,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HopAnnotation",
    "MetricsRegistry",
    "MetricsSnapshot",
    "P2Quantile",
    "PROFILER",
    "PhaseProfiler",
    "ReservoirSample",
    "SLOReport",
    "SLORow",
    "SamplingProfiler",
    "Tracer",
    "active_registry",
    "active_tracer",
    "annotate_hops",
    "bucket_quantile",
    "collecting",
    "jsonl_to_chrome",
    "percentile",
    "tracing",
]
