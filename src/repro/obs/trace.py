"""Span/event tracing with per-hop route annotation.

A :class:`Tracer` records three kinds of records, all plain dicts so they
serialise directly to JSONL:

- **spans** — named wall-clock intervals opened with the context manager
  :meth:`Tracer.span` (``with tracer.span("fig5", n=4096): ...``); spans
  nest, and each records its parent.
- **events** — instantaneous points (:meth:`Tracer.event`), e.g. one per
  drained simulator event.
- **routes** — one record per routing attempt (:meth:`Tracer.route`), with
  every hop annotated by the hierarchy level and domain it was taken at.
  A hop from ``a`` to ``b`` "happens at" the lowest common ancestor domain
  of the two nodes: that is the merge level whose construction rule created
  the link, and the quantity behind the paper's locality and convergence
  results (Figures 7-8).

Export as JSONL (:meth:`Tracer.export_jsonl`) or as a Chrome trace-event
file (:meth:`Tracer.export_chrome`) loadable in ``chrome://tracing`` /
``ui.perfetto.dev``; :func:`jsonl_to_chrome` converts an existing JSONL
trace.

Tracing must never change behaviour: tracers only *observe* finished
routes, and the engines in :mod:`repro.core.routing` consult their
``tracer`` argument exactly once per route, after the path is complete
(property-tested in ``tests/test_obs_invariance.py``).

A process-wide *active* tracer can be installed with :func:`tracing` (or
:func:`activate`); instrumented call sites such as
:func:`repro.analysis.metrics.sample_routing` and
:class:`repro.simulation.events.Simulator` pick it up automatically.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, TYPE_CHECKING

from ..core.hierarchy import Hierarchy, format_name, lca

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from ..core.routing import Route


@dataclass(frozen=True)
class HopAnnotation:
    """One routing hop, annotated with where in the hierarchy it was taken.

    ``level`` is the depth of the lowest common ancestor domain of ``src``
    and ``dst`` (0 = the hop crossed top-level domains through the root);
    ``domain`` is that LCA domain's dotted name (``""`` for the root).
    """

    src: int
    dst: int
    level: int
    domain: str

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used in trace records."""
        return {
            "src": self.src,
            "dst": self.dst,
            "level": self.level,
            "domain": self.domain,
        }


def annotate_hops(path: Sequence[int], hierarchy: Hierarchy) -> List[HopAnnotation]:
    """Annotate each consecutive hop of a node path with its LCA level/domain."""
    out: List[HopAnnotation] = []
    for a, b in zip(path, path[1:]):
        domain = lca(hierarchy.path_of(a), hierarchy.path_of(b))
        out.append(HopAnnotation(a, b, len(domain), format_name(domain)))
    return out


class Tracer:
    """Collects span, event and route records; exports JSONL / Chrome traces.

    Thread-compatible for the library's single-threaded hot paths: record
    appends are protected by a lock so the sampling profiler and background
    threads may also emit events, but span nesting state is per-tracer (the
    library routes and simulates on one thread).
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._stack: List[str] = []
        self.records: List[Dict[str, Any]] = []

    # ------------------------------------------------------------- recording

    def _now_us(self) -> float:
        """Microseconds since this tracer was created."""
        return (self._clock() - self._epoch) * 1e6

    def _append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Record a named wall-clock interval around the ``with`` body."""
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        start = self._now_us()
        try:
            yield
        finally:
            self._stack.pop()
            record: Dict[str, Any] = {
                "type": "span",
                "name": name,
                "ts": start,
                "dur": self._now_us() - start,
            }
            if parent is not None:
                record["parent"] = parent
            if attrs:
                record["attrs"] = attrs
            self._append(record)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous event."""
        record: Dict[str, Any] = {"type": "event", "name": name, "ts": self._now_us()}
        if self._stack:
            record["parent"] = self._stack[-1]
        if attrs:
            record["attrs"] = attrs
        self._append(record)

    def events_many(self, name: str, attrs_list: Sequence[Dict[str, Any]]) -> None:
        """Record a batch of same-named events in one append.

        The batched counterpart of :meth:`event` for drain-based engines
        (the fast simulator buffers per-event attrs and flushes here): one
        lock acquisition and one timestamp for the whole batch, producing
        records identical to per-call :meth:`event` except that they share
        a ``ts``.
        """
        if not attrs_list:
            return
        ts = self._now_us()
        parent = self._stack[-1] if self._stack else None
        records: List[Dict[str, Any]] = []
        for attrs in attrs_list:
            record: Dict[str, Any] = {"type": "event", "name": name, "ts": ts}
            if parent is not None:
                record["parent"] = parent
            if attrs:
                record["attrs"] = dict(attrs)
            records.append(record)
        with self._lock:
            self.records.extend(records)

    def route(
        self,
        route: "Route",
        hierarchy: Optional[Hierarchy] = None,
        **attrs: Any,
    ) -> None:
        """Record one finished routing attempt, hop-annotated if possible.

        With a ``hierarchy``, each hop is annotated with the level and
        domain of the two endpoints' lowest common ancestor — the level the
        hop was "taken at" in the Canon construction.
        """
        record: Dict[str, Any] = {
            "type": "route",
            "ts": self._now_us(),
            "src": route.source,
            "dest_key": route.dest_key,
            "terminal": route.terminal,
            "hops": route.hops,
            "success": route.success,
        }
        if hierarchy is not None:
            record["path"] = [h.as_dict() for h in annotate_hops(route.path, hierarchy)]
        else:
            record["path"] = list(route.path)
        if self._stack:
            record["parent"] = self._stack[-1]
        if attrs:
            record["attrs"] = attrs
        self._append(record)

    def clear(self) -> None:
        """Drop all collected records."""
        with self._lock:
            self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    # --------------------------------------------------------------- export

    def export_jsonl(self, path: str) -> None:
        """Write one JSON record per line (the native export format)."""
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record) + "\n")

    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """Records in Chrome trace-event form (``chrome://tracing``)."""
        return [_chrome_event(record) for record in self.records]

    def export_chrome(self, path: str) -> None:
        """Write a Chrome trace-event JSON file (open in ``chrome://tracing``)."""
        with open(path, "w") as fh:
            json.dump({"traceEvents": self.to_chrome_events()}, fh)


def _chrome_event(record: Dict[str, Any]) -> Dict[str, Any]:
    """One native trace record -> one Chrome trace-event dict."""
    args = dict(record.get("attrs", {}))
    kind = record.get("type")
    if kind == "span":
        return {
            "name": record["name"],
            "ph": "X",
            "ts": record["ts"],
            "dur": record["dur"],
            "pid": 0,
            "tid": 0,
            "args": args,
        }
    if kind == "route":
        args.update(
            {
                "src": record["src"],
                "dest_key": record["dest_key"],
                "hops": record["hops"],
                "success": record["success"],
                "path": record["path"],
            }
        )
        name = f"route {record['src']}->{record['dest_key']}"
        return {
            "name": name,
            "ph": "i",
            "ts": record["ts"],
            "s": "p",
            "pid": 0,
            "tid": 0,
            "args": args,
        }
    return {
        "name": record.get("name", "event"),
        "ph": "i",
        "ts": record["ts"],
        "s": "t",
        "pid": 0,
        "tid": 0,
        "args": args,
    }


def jsonl_to_chrome(jsonl_path: str, chrome_path: str) -> int:
    """Convert an exported JSONL trace to a Chrome trace-event file.

    Returns the number of converted records.  Usage::

        python -c "from repro.obs.trace import jsonl_to_chrome; \\
                   jsonl_to_chrome('t.jsonl', 't.json')"
    """
    events = []
    with open(jsonl_path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(_chrome_event(json.loads(line)))
    with open(chrome_path, "w") as fh:
        json.dump({"traceEvents": events}, fh)
    return len(events)


# ------------------------------------------------------- active tracer state

_active: Optional[Tracer] = None


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer; returns it."""
    global _active
    _active = tracer
    return tracer


def deactivate() -> None:
    """Remove the active tracer (instrumented call sites become no-ops)."""
    global _active
    _active = None


def active_tracer() -> Optional[Tracer]:
    """The currently installed tracer, or ``None``."""
    return _active


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate a tracer (a fresh one by default) for the ``with`` body."""
    tracer = tracer if tracer is not None else Tracer()
    previous = _active
    activate(tracer)
    try:
        yield tracer
    finally:
        if previous is None:
            deactivate()
        else:
            activate(previous)
