"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of instruments:

- :class:`Counter` — a monotonically increasing count (messages by type,
  routes sampled, cache hits).
- :class:`Gauge` — a last-write-wins value (network size, average degree).
- :class:`Histogram` — fixed upper-bound buckets plus sum/count (hops,
  latency, node degree).  Fixed buckets make snapshots mergeable across
  runs and processes without rebinning.

:meth:`MetricsRegistry.snapshot` captures the registry as an immutable
:class:`MetricsSnapshot` supporting ``diff`` (what happened between two
points), ``merge`` (combine shards/runs) and loss-free JSON round-trips,
plus CSV export for spreadsheets.

A process-wide *active* registry can be installed with :func:`collecting`
(or :func:`activate`); instrumented call sites — the routing sampler, the
simulator's message layer — record into it when present and do nothing
otherwise.
"""

from __future__ import annotations

import json
import random
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .quantiles import (
    DEFAULT_RESERVOIR_CAP,
    ReservoirSample,
    bucket_quantile,
    percentile,
)

#: Default histogram upper bounds: powers of two cover hop counts and
#: latencies across every scale the experiments run at.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed upper-bound buckets with sum and count.

    A value ``v`` lands in the first bucket whose bound satisfies
    ``v <= bound``; values above the last bound land in the implicit
    overflow bucket.  ``counts`` therefore has ``len(buckets) + 1`` slots.

    Alongside the buckets, each histogram keeps a bounded uniform
    reservoir of raw observations (:class:`~repro.obs.quantiles
    .ReservoirSample`) so :meth:`quantile` answers p50/p95/p99 as actual
    values — exact up to the reservoir capacity, an unbiased estimate
    beyond — instead of bucket-bound approximations.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count", "sample")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {name}: buckets must be strictly increasing")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.sample = ReservoirSample(name, DEFAULT_RESERVOIR_CAP)

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1
        self.sample.observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations in one vectorized pass.

        Equivalent to calling :meth:`observe` per value (a value lands in
        the first bucket with ``v <= bound``) but bins the whole batch with
        one ``searchsorted`` + ``bincount`` — the post-loop recording path
        of ``sample_routing`` uses this instead of a Python loop.
        """
        if not len(values):
            return
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a hard dep in practice
            for value in values:
                self.observe(value)
            return
        arr = np.asarray(values, dtype=float)
        idx = np.searchsorted(np.asarray(self.buckets, dtype=float), arr, side="left")
        binned = np.bincount(idx, minlength=len(self.buckets) + 1)
        for i, cnt in enumerate(binned):
            self.counts[i] += int(cnt)
        self.sum += float(arr.sum())
        self.count += int(arr.size)
        self.sample.observe_many(arr.tolist())

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (fraction in [0, 1]) of the observations.

        Exact while the reservoir still holds every observation, a uniform
        subsample estimate beyond that, and a bucket interpolation only if
        the reservoir is somehow empty while counts are not.
        """
        if self.sample.values:
            return self.sample.quantile(q)
        return bucket_quantile(self.buckets, self.counts, q)

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """:meth:`quantile` for several fractions, sorting the sample once."""
        if self.sample.values:
            ordered = sorted(self.sample.values)
            return [percentile(ordered, q) for q in qs]
        return [bucket_quantile(self.buckets, self.counts, q) for q in qs]


class MetricsRegistry:
    """Get-or-create store of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ---------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram named ``name``, created on first use.

        ``buckets`` only applies at creation; asking again with different
        buckets is an error (snapshots would stop merging cleanly).
        """
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, buckets)
        elif tuple(buckets) != inst.buckets and tuple(buckets) != DEFAULT_BUCKETS:
            raise ValueError(f"histogram {name} exists with different buckets")
        return inst

    def absorb(self, snapshot: "MetricsSnapshot") -> None:
        """Fold a snapshot's contents into this registry's live instruments.

        Counters and histogram bins add; gauges take the snapshot's value
        (last-writer-wins, matching :class:`Gauge`).  This is how the
        parallel experiment executor merges per-worker registries back into
        the parent process's active registry.
        """
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).set(value)
        for name, hist in snapshot.histograms.items():
            inst = self.histogram(name, tuple(hist["buckets"]))
            if list(inst.buckets) != list(hist["buckets"]):
                raise ValueError(f"histogram {name}: bucket bounds differ")
            for i, cnt in enumerate(hist["counts"]):
                inst.counts[i] += cnt
            inst.sum += hist["sum"]
            inst.count += hist["count"]
        for name, values in snapshot.samples.items():
            if values:
                self.histogram(name).sample.observe_many(values)

    def message_sink(self, prefix: str = "messages") -> Callable[[str], None]:
        """A ``kind -> None`` callable counting into ``{prefix}.{kind}``.

        Plug into :class:`repro.simulation.events.MessageStats` to mirror
        per-type message counts into this registry.
        """

        def sink(kind: str) -> None:
            self.counter(f"{prefix}.{kind}").inc()

        return sink

    def message_sink_batch(
        self, prefix: str = "messages"
    ) -> Callable[[Mapping[str, int]], None]:
        """A ``{kind: n} -> None`` callable bulk-counting into ``{prefix}.{kind}``.

        The batched counterpart of :meth:`message_sink`: plug into
        :class:`repro.simulation.events.MessageStats` as ``batch_sink`` so
        per-kind counts accumulate locally and land here once per flush
        instead of once per message.
        """

        def sink(pending: Mapping[str, int]) -> None:
            for kind, n in pending.items():
                self.counter(f"{prefix}.{kind}").inc(n)

        return sink

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> "MetricsSnapshot":
        """An immutable copy of every instrument's current state."""
        return MetricsSnapshot(
            {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for n, h in sorted(self._histograms.items())
                },
                "samples": {
                    n: list(h.sample.values)
                    for n, h in sorted(self._histograms.items())
                    if h.sample.values
                },
            }
        )

    def to_json(self, indent: int = 2) -> str:
        """The current snapshot as a JSON document."""
        return self.snapshot().to_json(indent)

    def export_json(self, path: str, indent: int = 2) -> None:
        """Write the current snapshot as JSON."""
        self.snapshot().export_json(path, indent)

    def to_csv(self) -> str:
        """The current snapshot as CSV rows."""
        return self.snapshot().to_csv()

    def export_csv(self, path: str) -> None:
        """Write the current snapshot as CSV."""
        self.snapshot().export_csv(path)


class MetricsSnapshot:
    """A point-in-time copy of a registry, supporting diff/merge/round-trip.

    The payload is plain JSON-serialisable data shaped as::

        {"counters": {name: int},
         "gauges": {name: float},
         "histograms": {name: {"buckets": [...], "counts": [...],
                               "sum": float, "count": int}},
         "samples": {name: [raw observations retained by the histogram's
                            reservoir — what quantile() reads]}}
    """

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = {
            "counters": dict(data.get("counters", {})),
            "gauges": dict(data.get("gauges", {})),
            "histograms": {
                name: dict(hist) for name, hist in data.get("histograms", {}).items()
            },
            "samples": {
                name: list(values)
                for name, values in data.get("samples", {}).items()
                if values
            },
        }

    # ------------------------------------------------------------ accessors

    @property
    def counters(self) -> Dict[str, int]:
        """Counter name -> value."""
        return self.data["counters"]

    @property
    def gauges(self) -> Dict[str, float]:
        """Gauge name -> value."""
        return self.data["gauges"]

    @property
    def histograms(self) -> Dict[str, Dict[str, Any]]:
        """Histogram name -> {buckets, counts, sum, count}."""
        return self.data["histograms"]

    @property
    def samples(self) -> Dict[str, List[float]]:
        """Histogram name -> retained raw observations (reservoir)."""
        return self.data["samples"]

    def quantile(self, name: str, q: float) -> float:
        """The ``q``-quantile of histogram ``name`` at snapshot time.

        Uses the retained reservoir sample when present (exact up to the
        reservoir capacity), falling back to bucket interpolation for
        snapshots recorded without samples.  Raises ``KeyError`` for an
        unknown histogram.
        """
        values = self.samples.get(name)
        if values:
            return percentile(sorted(values), q)
        hist = self.histograms[name]
        return bucket_quantile(hist["buckets"], hist["counts"], q)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MetricsSnapshot) and self.data == other.data

    # ------------------------------------------------------------ operators

    def diff(self, older: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``older`` and this snapshot.

        Counters and histogram counts subtract; gauges keep this (newer)
        snapshot's value.
        """
        counters = {
            name: value - older.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, hist in self.histograms.items():
            old = older.histograms.get(name)
            if old is None:
                histograms[name] = dict(hist)
                continue
            if list(old["buckets"]) != list(hist["buckets"]):
                raise ValueError(f"histogram {name}: bucket bounds differ")
            histograms[name] = {
                "buckets": list(hist["buckets"]),
                "counts": [a - b for a, b in zip(hist["counts"], old["counts"])],
                "sum": hist["sum"] - old["sum"],
                "count": hist["count"] - old["count"],
            }
        return MetricsSnapshot(
            {
                "counters": counters,
                "gauges": dict(self.gauges),
                "histograms": histograms,
                # Reservoirs cannot be subtracted; keep the newer sample,
                # which covers everything up to this snapshot.
                "samples": {n: list(v) for n, v in self.samples.items()},
            }
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots (e.g. from parallel runs or shards).

        Counters and histograms add; for gauges, ``other`` wins on
        conflicts (last writer, matching :class:`Gauge` semantics).
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = {**self.gauges, **other.gauges}
        histograms = {name: dict(hist) for name, hist in self.histograms.items()}
        for name, hist in other.histograms.items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = dict(hist)
                continue
            if list(mine["buckets"]) != list(hist["buckets"]):
                raise ValueError(f"histogram {name}: bucket bounds differ")
            histograms[name] = {
                "buckets": list(mine["buckets"]),
                "counts": [a + b for a, b in zip(mine["counts"], hist["counts"])],
                "sum": mine["sum"] + hist["sum"],
                "count": mine["count"] + hist["count"],
            }
        samples: Dict[str, List[float]] = {
            name: list(values) for name, values in self.samples.items()
        }
        for name, values in other.samples.items():
            combined = samples.get(name, []) + list(values)
            if len(combined) > DEFAULT_RESERVOIR_CAP:
                # Deterministic uniform downsample back to the reservoir cap
                # (seeded per name so shard merges are reproducible).
                rng = random.Random(f"samples-merge:{name}")
                keep = sorted(rng.sample(range(len(combined)), DEFAULT_RESERVOIR_CAP))
                combined = [combined[i] for i in keep]
            samples[name] = combined
        return MetricsSnapshot(
            {
                "counters": counters,
                "gauges": gauges,
                "histograms": histograms,
                "samples": samples,
            }
        )

    # --------------------------------------------------------------- export

    def to_json(self, indent: int = 2) -> str:
        """Loss-free JSON form (inverse of :meth:`from_json`)."""
        return json.dumps(self.data, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_json` output."""
        return cls(json.loads(text))

    def export_json(self, path: str, indent: int = 2) -> None:
        """Write :meth:`to_json` output to a file."""
        with open(path, "w") as fh:
            fh.write(self.to_json(indent) + "\n")

    def to_csv(self) -> str:
        """Flat ``kind,name,field,value`` rows (histograms one row per bucket)."""
        lines = ["kind,name,field,value"]
        for name, value in self.counters.items():
            lines.append(f"counter,{name},value,{value}")
        for name, value in self.gauges.items():
            lines.append(f"gauge,{name},value,{value}")
        for name, hist in self.histograms.items():
            for bound, count in zip(hist["buckets"], hist["counts"]):
                lines.append(f"histogram,{name},le_{bound},{count}")
            lines.append(f"histogram,{name},le_inf,{hist['counts'][-1]}")
            lines.append(f"histogram,{name},sum,{hist['sum']}")
            lines.append(f"histogram,{name},count,{hist['count']}")
        return "\n".join(lines)

    def export_csv(self, path: str) -> None:
        """Write :meth:`to_csv` output to a file."""
        with open(path, "w") as fh:
            fh.write(self.to_csv() + "\n")


# ----------------------------------------------------- active registry state

_active: Optional[MetricsRegistry] = None


def activate(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide active registry; returns it."""
    global _active
    _active = registry
    return registry


def deactivate() -> None:
    """Remove the active registry (instrumented call sites become no-ops)."""
    global _active
    _active = None


def active_registry() -> Optional[MetricsRegistry]:
    """The currently installed registry, or ``None``."""
    return _active


def record_counter(name: str, amount: int = 1) -> None:
    """Increment a counter on the active registry, if one is installed.

    The pay-for-what-you-use instrumentation idiom in one place: call sites
    stay a single line and cost a dict probe when no registry is active.
    """
    if amount and _active is not None:
        _active.counter(name).inc(amount)


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Activate a registry (a fresh one by default) for the ``with`` body."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = _active
    activate(registry)
    try:
        yield registry
    finally:
        if previous is None:
            deactivate()
        else:
            activate(previous)
