"""Vectorized data plane: bulk placement, batch put/get, repair scans.

The scalar data plane (:mod:`repro.storage`) walks Python objects one key at
a time: every put computes a per-domain responsible node with a list bisect,
every get is a hop-by-hop object walk with per-item access checks, and every
churn-era repair decision re-sorts domain member lists per key.  This module
gives the data layer the same treatment :mod:`repro.perf.build` gave
construction and :mod:`repro.perf.kernels` gave routing:

- **Vectorized replica placement** (:func:`plan_puts`): arrays of key hashes
  plus a storage/access domain pair become home nodes, pointer locations and
  the full replica matrix via ``searchsorted`` sweeps over per-domain sorted
  member arrays — bit-identical to
  :meth:`~repro.storage.store.HierarchicalStore.put` placement and
  :meth:`~repro.storage.replication.ReplicatedStore.replica_nodes`.

- **Batch put** (:func:`bulk_put` / :func:`bulk_put_replicated`): apply a
  placement plan to a scalar store in one sweep, leaving the store's
  ``_items`` / ``_pointers`` dicts exactly as the equivalent sequence of
  scalar ``put`` calls would (bucket insertion order included, so follow-up
  scalar reads are indistinguishable).

- **Batch get** (:class:`CompiledStore`): thousands of hierarchical lookups
  frontier-at-a-time over the compiled ring tables of
  :class:`~repro.perf.kernels.CompiledNetwork`, with access-domain
  visibility as integer prefix-code compares (see :class:`DomainIndex`) and
  pointer indirections resolved through a single batched fetch-leg routing
  call.  The returned :class:`BatchSearchResult` reconstructs scalar
  :class:`~repro.storage.store.SearchResult` objects field-for-field;
  ``repro.verify.compare_storage`` holds them hop-for-hop and (with a
  latency table) bit-for-bit equal to the scalar walk.

- **Vectorized repair scans** (:func:`repair_scan` / :class:`FastDataLayer`):
  after a churn era, responsibility and surviving-copy counts over the whole
  keyspace are recomputed in one pass per storage domain, emitting the same
  ``replicate`` / ``transfer`` message counts and holder assignments as the
  scalar :class:`~repro.simulation.data.DataLayer`, but with one aggregated
  ``_count`` per event instead of one per copy.

The visibility compare rests on an exact identity: with ``lca(o, c)`` the
longest common prefix of the origin's and current node's paths,
``is_ancestor(A, lca(o, c))`` holds iff ``A`` is a prefix of *both* paths —
two integer compares against precomputed per-node prefix codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.hierarchy import DomainPath, ROOT, is_ancestor
from ..core.routing import MAX_HOPS
from ..obs import metrics as obs_metrics
from ..storage.store import HierarchicalStore, Pointer, SearchResult, StoredItem
from ..storage.replication import ReplicatedStore
from .kernels import CompiledNetwork, _in_sorted, compile_network

_U64 = np.uint64

__all__ = [
    "BatchSearchResult",
    "CompiledStore",
    "DomainIndex",
    "FastDataLayer",
    "PutPlan",
    "RepairPlan",
    "bulk_put",
    "bulk_put_replicated",
    "plan_puts",
    "repair_scan",
    "scalar_search_latency",
]


_record = obs_metrics.record_counter


def _predecessor_positions(members: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.idspace.predecessor_index` over a ring.

    ``searchsorted(side="right") - 1`` is the last member ``<= key``;
    a negative result (key below every member) wraps to the last member,
    exactly like the scalar bisect with its ``% len`` wrap.
    """
    pos = np.searchsorted(members, keys, side="right").astype(np.int64) - 1
    return np.where(pos < 0, members.size - 1, pos)


class DomainIndex:
    """Per-domain sorted member arrays + integer prefix codes for a hierarchy.

    Every distinct domain path is interned to a small integer code; for each
    node position ``p`` (into the sorted ``ids`` array) and depth ``d``,
    ``prefix_code[p, d]`` is the code of the first ``d`` components of the
    node's path (``-1`` beyond the path's length).  ``is_ancestor(A, path)``
    then collapses to ``prefix_code[p, len(A)] == code(A)`` — one integer
    gather and compare, with domains deeper than the hierarchy always false.
    """

    def __init__(self, hierarchy, ids: Sequence[int]) -> None:
        self.hierarchy = hierarchy
        self.ids = np.asarray(ids, dtype=_U64)
        if self.ids.size and np.any(self.ids[1:] <= self.ids[:-1]):
            self.ids = np.sort(self.ids)
        self._codes: Dict[DomainPath, int] = {}
        self._members: Dict[DomainPath, np.ndarray] = {}
        paths = [hierarchy.path_of(int(i)) for i in self.ids.tolist()]
        self.max_depth = max((len(p) for p in paths), default=0)
        self.prefix_code = np.full(
            (self.ids.size, self.max_depth + 1), -1, dtype=np.int64
        )
        for pos, path in enumerate(paths):
            for depth in range(len(path) + 1):
                self.prefix_code[pos, depth] = self.code(path[:depth])

    def code(self, domain: DomainPath) -> int:
        """Interned integer code of a domain path (assigned on first use)."""
        code = self._codes.get(domain)
        if code is None:
            code = self._codes[domain] = len(self._codes)
        return code

    def ancestor_probe(self, domain: DomainPath) -> Tuple[int, int]:
        """``(code, depth)`` such that node at position ``p`` lies under
        ``domain`` iff ``prefix_code[p, depth] == code``."""
        depth = len(domain)
        if depth > self.max_depth:
            return -2, 0  # deeper than any node path: matches nothing
        return self.code(domain), depth

    def members(self, domain: DomainPath) -> np.ndarray:
        """Sorted member ids of ``domain`` as a uint64 array (cached)."""
        arr = self._members.get(domain)
        if arr is None:
            arr = np.asarray(
                self.hierarchy.sorted_members(domain), dtype=_U64
            )
            self._members[domain] = arr
        return arr

    def positions(self, values: np.ndarray) -> np.ndarray:
        """Index of each node id in the sorted ``ids`` array."""
        pos = np.minimum(
            np.searchsorted(self.ids, values), self.ids.size - 1
        ).astype(np.int64)
        bad = self.ids[pos] != values
        if np.any(bad):
            raise KeyError(f"node {int(np.asarray(values)[bad][0])} not in hierarchy")
        return pos

    def home_positions(self, keys: np.ndarray, domain: DomainPath) -> np.ndarray:
        """Per-key predecessor index into ``members(domain)``."""
        members = self.members(domain)
        if members.size == 0:
            raise ValueError(f"domain {domain!r} has no members")
        return _predecessor_positions(members, keys)


def store_domain_index(store: HierarchicalStore) -> DomainIndex:
    """The (memoized) :class:`DomainIndex` of a store's network."""
    cached = store.__dict__.get("_perf_domain_index")
    if cached is None:
        cached = DomainIndex(store.hierarchy, store.network.node_ids)
        store.__dict__["_perf_domain_index"] = cached
    return cached


# ------------------------------------------------------------------ placement


@dataclass
class PutPlan:
    """Vectorized placement for a batch of puts sharing one domain pair.

    ``pointer_nodes`` mirrors the scalar put's second return value: the
    access-domain responsible node whenever the access domain differs from
    the storage domain (even when it coincides with the home), else ``None``.
    ``replica_sets`` is the ``(m, count)`` holder matrix (primary first,
    then ring predecessors) when a replica count was requested.
    """

    key_hashes: np.ndarray
    storage_domain: DomainPath
    access_domain: DomainPath
    homes: np.ndarray
    pointer_nodes: Optional[np.ndarray] = None
    replica_sets: Optional[np.ndarray] = None


def plan_puts(
    index: DomainIndex,
    key_hashes: Sequence[int],
    storage_domain: Optional[DomainPath] = None,
    access_domain: Optional[DomainPath] = None,
    replicas: Optional[int] = None,
) -> PutPlan:
    """Compute homes / pointer nodes / replica sets for a batch of keys.

    Bit-identical to per-key :meth:`HierarchicalStore.home_node` and
    :meth:`ReplicatedStore.replica_nodes`: the home is the ring predecessor
    (or equal) member of the storage domain, the pointer node the same
    within the access domain, and replica ``i`` the ``i``-th ring
    predecessor of the home among the domain members.
    """
    storage_domain = ROOT if storage_domain is None else tuple(storage_domain)
    access_domain = ROOT if access_domain is None else tuple(access_domain)
    keys = np.asarray(key_hashes, dtype=_U64)
    members = index.members(storage_domain)
    if members.size == 0:
        raise ValueError(f"domain {storage_domain!r} has no members")
    start = _predecessor_positions(members, keys)
    homes = members[start]
    pointer_nodes: Optional[np.ndarray] = None
    if access_domain != storage_domain:
        access_members = index.members(access_domain)
        if access_members.size == 0:
            raise ValueError(f"domain {access_domain!r} has no members")
        pointer_nodes = access_members[_predecessor_positions(access_members, keys)]
    replica_sets: Optional[np.ndarray] = None
    if replicas is not None:
        count = min(int(replicas), int(members.size))
        offsets = np.arange(count, dtype=np.int64)
        replica_sets = members[(start[:, None] - offsets) % members.size]
    return PutPlan(keys, storage_domain, access_domain, homes, pointer_nodes, replica_sets)


def bulk_put(
    store: HierarchicalStore,
    origins: Sequence[int],
    keys: Sequence[object],
    values: Sequence[object],
    storage_domain: Optional[DomainPath] = None,
    access_domain: Optional[DomainPath] = None,
) -> PutPlan:
    """Batch :meth:`HierarchicalStore.put` for one ``(storage, access)`` pair.

    Leaves the store's internal state exactly as the same sequence of scalar
    puts (in argument order) would: items append to the home bucket in order,
    and a pointer is recorded only when the access-domain responsible node
    differs from the home.  Bulk calls with *different* domain pairs commute
    with each other unless two of their keys share a home bucket (same node
    and key hash) — practically, unless the same key is put twice.
    """
    storage_domain = ROOT if storage_domain is None else tuple(storage_domain)
    access_domain = ROOT if access_domain is None else tuple(access_domain)
    index = store_domain_index(store)
    origin_arr = np.asarray(list(origins), dtype=_U64)
    m = int(origin_arr.size)
    if not (len(keys) == len(values) == m):
        raise ValueError(f"{m} origins vs {len(keys)} keys / {len(values)} values")
    scode, sdepth = index.ancestor_probe(storage_domain)
    contained = index.prefix_code[index.positions(origin_arr), sdepth] == scode
    if not bool(np.all(contained)):
        offender = int(origin_arr[~contained][0])
        raise ValueError(
            f"storage domain {storage_domain!r} does not contain node {offender}"
        )
    if not is_ancestor(access_domain, storage_domain):
        raise ValueError(
            f"access domain {access_domain!r} is not a superset of "
            f"storage domain {storage_domain!r}"
        )
    space = store.space
    hashes = [space.hash_key(key) for key in keys]
    plan = plan_puts(index, hashes, storage_domain, access_domain)
    items = store._items
    pointers = store._pointers
    homes = plan.homes.tolist()
    pointer_nodes = (
        plan.pointer_nodes.tolist() if plan.pointer_nodes is not None else None
    )
    for i in range(m):
        home = homes[i]
        key_hash = hashes[i]
        items.setdefault(home, {}).setdefault(key_hash, []).append(
            StoredItem(keys[i], key_hash, values[i], storage_domain, access_domain)
        )
        if pointer_nodes is not None and pointer_nodes[i] != home:
            pointers.setdefault(pointer_nodes[i], {}).setdefault(
                key_hash, []
            ).append(Pointer(key_hash, home, storage_domain, access_domain))
    _record("storage.puts", m)
    return plan


def bulk_put_replicated(
    rstore: ReplicatedStore,
    origins: Sequence[int],
    keys: Sequence[object],
    values: Sequence[object],
    storage_domain: Optional[DomainPath] = None,
    access_domain: Optional[DomainPath] = None,
) -> PutPlan:
    """Batch :meth:`ReplicatedStore.put`: bulk insert + replica copies.

    Replica copies duplicate the *first* stored item for the key at the home
    bucket (the scalar path's ``next(...)`` pick), so repeated puts of one
    key replicate the original value exactly as the scalar store does.
    """
    store = rstore.store
    plan = bulk_put(store, origins, keys, values, storage_domain, access_domain)
    replicated = plan_puts(
        store_domain_index(store),
        plan.key_hashes,
        plan.storage_domain,
        plan.access_domain,
        replicas=rstore.replicas,
    )
    holders = replicated.replica_sets
    assert holders is not None
    items = store._items
    homes = plan.homes.tolist()
    copies = 0
    holder_rows = holders.tolist()
    for i, key in enumerate(keys):
        key_hash = int(plan.key_hashes[i])
        original = next(
            it for it in items[homes[i]][key_hash] if it.key == key
        )
        for holder in holder_rows[i][1:]:
            items.setdefault(holder, {}).setdefault(key_hash, []).append(
                StoredItem(
                    original.key, original.key_hash, original.value,
                    original.storage_domain, original.access_domain,
                )
            )
            copies += 1
        rstore.replica_sets[key_hash] = holder_rows[i]
    _record("storage.replica_copies", copies)
    plan.replica_sets = holders
    return plan


# ------------------------------------------------------------------ batch get


@dataclass
class BatchSearchResult:
    """Outcome of one batch hierarchical lookup, aligned index-for-index.

    ``found_at`` / ``content_node`` hold ``-1`` where the scalar result is
    ``None``; :meth:`results` reconstructs the scalar
    :class:`~repro.storage.store.SearchResult` objects field-for-field.
    ``latency_ms`` (when routed with a latency table) matches
    :func:`scalar_search_latency` bit-for-bit: a float64 left fold over the
    walk, plus twice the fetch leg for pointer answers.  ``probes`` counts
    local-answer probes across all hops (the batch analogue of the scalar
    walk's per-node store checks).
    """

    keys: List[object]
    key_hashes: np.ndarray
    origins: np.ndarray
    paths: List[List[int]]
    found_at: np.ndarray
    via_pointer: np.ndarray
    pointer_hops: np.ndarray
    content_node: np.ndarray
    values: List[List[object]]
    latency_ms: Optional[np.ndarray] = None
    probes: int = 0

    @property
    def size(self) -> int:
        return int(self.origins.size)

    @property
    def found(self) -> np.ndarray:
        return self.found_at >= 0

    def results(self) -> Iterator[SearchResult]:
        """Scalar :class:`SearchResult` objects, index-aligned."""
        for i in range(self.size):
            found_at = int(self.found_at[i])
            content = int(self.content_node[i])
            yield SearchResult(
                self.keys[i],
                self.values[i],
                self.paths[i],
                found_at if found_at >= 0 else None,
                bool(self.via_pointer[i]),
                int(self.pointer_hops[i]),
                content if content >= 0 else None,
            )


class CompiledStore:
    """A :class:`HierarchicalStore` snapshot in array form for batch gets.

    Items and pointers are flattened into sorted composite-key arrays:
    items under ``(node position << key-id bits) | interned key id`` and
    pointers under ``(node position << id-space bits) | key hash``, both
    with aligned access-domain prefix codes.  A batch get then walks all
    queries frontier-at-a-time over the compiled ring tables, probing
    buckets with two ``searchsorted`` calls per hop and checking access
    with integer prefix compares; only final answers materialize Python
    values.  Stores are snapshotted at construction — rebuild after
    mutating the underlying store.
    """

    def __init__(
        self,
        store: HierarchicalStore,
        compiled: Optional[CompiledNetwork] = None,
    ) -> None:
        self.store = store
        self.compiled = compiled or compile_network(store.network)
        self.index = store_domain_index(store)
        ids = self.compiled.ids
        positions = {int(node): pos for pos, node in enumerate(ids.tolist())}

        # Intern every stored key; query keys unknown to the store map to a
        # sentinel id that matches no bucket.  Key identity is dict-based,
        # matching the scalar path's ``item.key == key`` for hashable keys.
        key_ids: Dict[object, int] = {}
        item_rows: List[Tuple[int, int, object, int, int]] = []
        for node, buckets in store._items.items():
            pos = positions[int(node)]
            for bucket in buckets.values():
                for item in bucket:
                    kid = key_ids.setdefault(item.key, len(key_ids))
                    code, depth = self.index.ancestor_probe(item.access_domain)
                    item_rows.append((pos, kid, item.value, code, depth))
        self._key_ids = key_ids
        self._n_keys = len(key_ids)
        kid_bits = max(1, int(self._n_keys).bit_length())
        pos_bits = max(1, int(ids.size - 1).bit_length())
        if pos_bits + kid_bits > 64:
            raise ValueError("store too large for 64-bit item keys")
        self._kid_shift = _U64(kid_bits)

        combos = np.fromiter(
            ((r[0] << kid_bits) | r[1] for r in item_rows), dtype=_U64,
            count=len(item_rows),
        )
        order = np.argsort(combos, kind="stable")  # keeps bucket order
        self._item_combo = combos[order]
        order_list = order.tolist()
        self._item_value = [item_rows[i][2] for i in order_list]
        self._item_code = np.fromiter(
            (item_rows[i][3] for i in order_list), dtype=np.int64,
            count=len(order_list),
        )
        self._item_depth = np.fromiter(
            (item_rows[i][4] for i in order_list), dtype=np.int64,
            count=len(order_list),
        )

        ptr_rows: List[Tuple[int, int, int, int, int]] = []
        bits = int(self.compiled.bits)
        for node, buckets in store._pointers.items():
            pos = positions[int(node)]
            for key_hash, bucket in buckets.items():
                for pointer in bucket:
                    code, depth = self.index.ancestor_probe(pointer.access_domain)
                    ptr_rows.append(
                        (pos, key_hash, positions[int(pointer.home_node)], code, depth)
                    )
        ptr_combos = np.fromiter(
            ((r[0] << bits) | r[1] for r in ptr_rows), dtype=_U64,
            count=len(ptr_rows),
        )
        ptr_order = np.argsort(ptr_combos, kind="stable")
        self._ptr_combo = ptr_combos[ptr_order]
        ptr_order_list = ptr_order.tolist()
        self._ptr_home_pos = np.fromiter(
            (ptr_rows[i][2] for i in ptr_order_list), dtype=np.int64,
            count=len(ptr_order_list),
        )
        self._ptr_code = np.fromiter(
            (ptr_rows[i][3] for i in ptr_order_list), dtype=np.int64,
            count=len(ptr_order_list),
        )
        self._ptr_depth = np.fromiter(
            (ptr_rows[i][4] for i in ptr_order_list), dtype=np.int64,
            count=len(ptr_order_list),
        )
        self._bits_shift = _U64(bits)

    # ----------------------------------------------------------- probe steps

    def _probe_items(
        self, cur: np.ndarray, origin: np.ndarray, kids: np.ndarray
    ) -> Tuple[np.ndarray, Dict[int, List[object]]]:
        """Visible stored items at the frontier nodes, per query.

        Returns a hit mask over the frontier plus, for each hit row, the
        matching values in bucket insertion order — exactly the scalar
        ``_local_answer`` item branch.
        """
        combos = (cur.astype(_U64) << self._kid_shift) | kids
        lo = np.searchsorted(self._item_combo, combos, side="left")
        hi = np.searchsorted(self._item_combo, combos, side="right")
        hit = np.zeros(cur.size, dtype=bool)
        values: Dict[int, List[object]] = {}
        prefix = self.index.prefix_code
        for row in np.flatnonzero(hi > lo).tolist():
            sl = slice(int(lo[row]), int(hi[row]))
            visible = (
                (prefix[origin[row], self._item_depth[sl]] == self._item_code[sl])
                & (prefix[cur[row], self._item_depth[sl]] == self._item_code[sl])
            )
            if visible.any():
                hit[row] = True
                base = int(lo[row])
                values[row] = [
                    self._item_value[base + off]
                    for off in np.flatnonzero(visible).tolist()
                ]
        return hit, values

    def _probe_pointers(
        self,
        cur: np.ndarray,
        origin: np.ndarray,
        kids: np.ndarray,
        key_hashes: np.ndarray,
    ) -> Tuple[np.ndarray, Dict[int, List[object]]]:
        """First resolvable visible pointer at the frontier nodes, per query.

        Returns the content-home position (``-1`` when no pointer resolves)
        plus the remote values — the scalar pointer branch: visible pointers
        in insertion order, taking the first whose home bucket holds the key
        (no visibility check on the remote copy).
        """
        combos = (cur.astype(_U64) << self._bits_shift) | key_hashes
        lo = np.searchsorted(self._ptr_combo, combos, side="left")
        hi = np.searchsorted(self._ptr_combo, combos, side="right")
        resolved = np.full(cur.size, -1, dtype=np.int64)
        values: Dict[int, List[object]] = {}
        prefix = self.index.prefix_code
        kid_bits = int(self._kid_shift)
        for row in np.flatnonzero(hi > lo).tolist():
            for entry in range(int(lo[row]), int(hi[row])):
                depth = int(self._ptr_depth[entry])
                code = int(self._ptr_code[entry])
                if prefix[origin[row], depth] != code or prefix[cur[row], depth] != code:
                    continue
                home_pos = int(self._ptr_home_pos[entry])
                item_combo = _U64((home_pos << kid_bits) | int(kids[row]))
                left = int(np.searchsorted(self._item_combo, item_combo, side="left"))
                right = int(np.searchsorted(self._item_combo, item_combo, side="right"))
                if right > left:
                    resolved[row] = home_pos
                    values[row] = self._item_value[left:right]
                    break
        return resolved, values

    # ------------------------------------------------------------------- get

    def batch_get(
        self,
        origins: Sequence[int],
        keys: Sequence[object],
        latency=None,
    ) -> BatchSearchResult:
        """Batch hierarchical lookup (``first_match`` semantics).

        Every query walks the greedy ring path from its origin; at each hop
        the whole frontier probes stored items (visible at the current
        routing level on both the origin and current sides of the prefix
        identity), then pointers, then takes one vectorized ring step.
        Pointer fetch legs are routed as one batch call afterwards.
        """
        compiled = self.compiled
        space = self.store.space
        keys = list(keys)
        m = len(keys)
        origin_arr = np.asarray(list(origins), dtype=_U64)
        if origin_arr.size != m:
            raise ValueError(f"{origin_arr.size} origins vs {m} keys")
        key_hashes = np.fromiter(
            (space.hash_key(key) for key in keys), dtype=_U64, count=m
        )
        kids = np.fromiter(
            (self._key_ids.get(key, self._n_keys) for key in keys),
            dtype=_U64, count=m,
        )
        cur = compiled._positions(origin_arr)
        origin_pos = cur.copy()
        paths: List[List[int]] = [[int(o)] for o in origin_arr.tolist()]
        found_at_pos = np.full(m, -1, dtype=np.int64)
        content_pos = np.full(m, -1, dtype=np.int64)
        via_pointer = np.zeros(m, dtype=bool)
        not_found = np.zeros(m, dtype=bool)
        values_out: List[List[object]] = [[] for _ in range(m)]
        lat_state = compiled._latency_state(latency)
        lat = np.zeros(m, dtype=np.float64) if lat_state is not None else None
        if lat_state is not None:
            lr, lmat, lhop2 = lat_state
        dist2d, posflat, ids_small = compiled._ring_matrix()
        dt = dist2d.dtype.type
        width = dist2d.shape[1]
        small_mask = (
            None if int(compiled.mask) == np.iinfo(dt).max else dt(compiled.mask)
        )
        dest_small = key_hashes.astype(dt)
        probes = 0
        active = np.arange(m, dtype=np.int64)
        for _ in range(MAX_HOPS):
            if active.size == 0:
                break
            frontier = cur[active]
            opos = origin_pos[active]
            fkids = kids[active]
            probes += int(active.size)
            hit, hit_values = self._probe_items(frontier, opos, fkids)
            if hit.any():
                rows = active[hit]
                found_at_pos[rows] = cur[rows]
                content_pos[rows] = cur[rows]
                for local in np.flatnonzero(hit).tolist():
                    values_out[int(active[local])] = hit_values[local]
                keep = ~hit
                active = active[keep]
                frontier = frontier[keep]
                opos = opos[keep]
                fkids = fkids[keep]
                if active.size == 0:
                    break
            resolved, ptr_values = self._probe_pointers(
                frontier, opos, fkids, key_hashes[active]
            )
            via = resolved >= 0
            if via.any():
                rows = active[via]
                found_at_pos[rows] = cur[rows]
                content_pos[rows] = resolved[via]
                via_pointer[rows] = True
                for local in np.flatnonzero(via).tolist():
                    values_out[int(active[local])] = ptr_values[local]
                keep = ~via
                active = active[keep]
                frontier = frontier[keep]
                if active.size == 0:
                    break
            # One greedy ring step for the remaining frontier.
            current_ids = ids_small[frontier]
            remaining = dest_small[active] - current_ids
            if small_mask is not None:
                remaining &= small_mask
            candidates = dist2d[frontier]
            first = (candidates <= remaining[:, None]).argmax(axis=1)
            nxt = posflat[frontier * width + first].astype(np.int64)
            moved = nxt != frontier
            stuck = active[~moved]
            if stuck.size:
                not_found[stuck] = True  # self-step: greedy walk is done
            advanced = active[moved]
            if advanced.size:
                new_pos = nxt[moved]
                if lat is not None:
                    lat[advanced] += lhop2 + lmat[
                        lr[cur[advanced]], lr[new_pos]
                    ].astype(np.float64)
                cur[advanced] = new_pos
                for row, node in zip(
                    advanced.tolist(), compiled.ids[new_pos].tolist()
                ):
                    paths[row].append(int(node))
            active = advanced
        if active.size:
            raise RuntimeError("lookup exceeded hop bound; broken network")

        pointer_hops = np.zeros(m, dtype=np.int64)
        resolved_rows = np.flatnonzero(via_pointer)
        if resolved_rows.size:
            fetch_src = compiled.ids[found_at_pos[resolved_rows]]
            fetch_dst = compiled.ids[content_pos[resolved_rows]]
            fetch = compiled.route_ring(fetch_src, fetch_dst, latency=latency)
            pointer_hops[resolved_rows] = 2 * fetch.hops
            if lat is not None:
                lat[resolved_rows] = lat[resolved_rows] + 2.0 * fetch.latency_ms

        found_at = np.where(
            found_at_pos >= 0,
            compiled.ids[np.maximum(found_at_pos, 0)].astype(np.int64),
            np.int64(-1),
        )
        content_node = np.where(
            content_pos >= 0,
            compiled.ids[np.maximum(content_pos, 0)].astype(np.int64),
            np.int64(-1),
        )
        _record("storage.gets", m)
        _record("storage.pointer_resolutions", int(resolved_rows.size))
        _record("storage.batch.probes", probes)
        return BatchSearchResult(
            keys=keys,
            key_hashes=key_hashes,
            origins=origin_arr,
            paths=paths,
            found_at=found_at,
            via_pointer=via_pointer,
            pointer_hops=pointer_hops,
            content_node=content_node,
            values=values_out,
            latency_ms=lat,
            probes=probes,
        )


def scalar_search_latency(network, table, result: SearchResult) -> float:
    """Overlay milliseconds of a scalar search, batch-compatible bit-for-bit.

    The walk is the left-fold :meth:`~repro.perf.latency.LatencyTable.path_ms`
    over the search path; a pointer answer adds twice the fetch leg (the
    resolve-and-return round trip), in the same float64 operation order as
    :meth:`CompiledStore.batch_get` accumulates.
    """
    from ..core.routing import route_ring

    total = table.path_ms(result.path)
    if result.via_pointer and result.content_node is not None:
        fetch = route_ring(network, result.found_at, result.content_node)
        total = total + 2.0 * table.path_ms(fetch.path)
    return total


# ---------------------------------------------------------------- repair scan


@dataclass
class RepairPlan:
    """One vectorized repair sweep over a data layer's whole keyspace.

    ``desired`` is a ``(keys, replicas)`` matrix of post-repair holders
    (``-1`` padding past ``desired_count``); rows of lost keys (no surviving
    copy) have count zero.  ``replicate_msgs`` is the number of copy
    transfers the sweep would issue — exactly the scalar
    :meth:`~repro.simulation.data.DataLayer._rebalance` message count.
    """

    key_hashes: np.ndarray
    survivors: np.ndarray
    lost: np.ndarray
    desired: np.ndarray
    desired_count: np.ndarray
    replicate_msgs: int

    def holders_of(self, row: int) -> List[int]:
        """The post-repair holder list for one key row (primary first)."""
        return self.desired[row, : int(self.desired_count[row])].tolist()


def repair_scan(
    key_hashes: Sequence[int],
    storage_domains: Sequence[DomainPath],
    holder_rows: Sequence[Sequence[int]],
    members_of,
    live_ids: Sequence[int],
    replicas: int,
) -> RepairPlan:
    """Recompute responsibility + surviving copies over the whole keyspace.

    ``members_of(domain)`` must return the sorted live member ids of a
    domain as a uint64 array.  For every key: count the current holders
    still alive, mark keys with none as lost, recompute the desired holder
    run (responsible node + ring predecessors) per storage domain with one
    ``searchsorted`` sweep, and count one ``replicate`` per desired holder
    not already holding a live copy.
    """
    m = len(key_hashes)
    keys = np.asarray(key_hashes, dtype=_U64)
    width = max((len(row) for row in holder_rows), default=0)
    holder_matrix = np.full((m, max(width, 1)), -1, dtype=np.int64)
    for i, row in enumerate(holder_rows):
        if row:
            holder_matrix[i, : len(row)] = row
    live_sorted = np.asarray(sorted(live_ids), dtype=_U64)
    live_mask = _in_sorted(live_sorted, holder_matrix.astype(_U64))
    survivors = live_mask.sum(axis=1).astype(np.int64)
    lost = survivors == 0
    live_holders = np.where(live_mask, holder_matrix, -1)

    groups: Dict[DomainPath, List[int]] = {}
    for i, domain in enumerate(storage_domains):
        groups.setdefault(domain, []).append(i)

    replica_cap = max(int(replicas), 1)
    desired = np.full((m, replica_cap), -1, dtype=np.int64)
    desired_count = np.zeros(m, dtype=np.int64)
    replicate_msgs = 0
    for domain, rows in groups.items():
        idx = np.asarray(rows, dtype=np.int64)
        idx = idx[~lost[idx]]
        if idx.size == 0:
            continue
        members = members_of(domain)
        if members.size == 0:
            continue  # no live member: scalar path also empties the holders
        start = _predecessor_positions(members, keys[idx])
        count = min(int(replicas), int(members.size))
        offsets = np.arange(count, dtype=np.int64)
        targets = members[(start[:, None] - offsets) % members.size].astype(np.int64)
        missing = ~(targets[:, :, None] == live_holders[idx][:, None, :]).any(axis=2)
        replicate_msgs += int(missing.sum())
        desired[idx, :count] = targets
        desired_count[idx] = count
    return RepairPlan(keys, survivors, lost, desired, desired_count, replicate_msgs)


class FastDataLayer:
    """Vectorized drop-in for :class:`~repro.simulation.data.DataLayer`.

    The public surface, holder assignments and every ``store`` /
    ``transfer`` / ``replicate`` message count match the scalar layer
    exactly (message counts are issued aggregated — equivalent, since
    :meth:`~repro.simulation.events.MessageStats.record_many` is additive).
    Rebalances and graceful-departure handoffs run as :func:`repair_scan`
    sweeps over per-domain sorted member arrays, cached between membership
    events; listener hooks invalidate the cache, so the layer rides both the
    reference and the fast dynamic engines at 16K+ event schedules.
    """

    def __init__(self, net, replicas: int = 2) -> None:
        if replicas < 1:
            raise ValueError("need at least one copy")
        self.net = net
        self.replicas = replicas
        self.items: Dict[int, "DataItem"] = {}
        self.holders: Dict[int, List[int]] = {}
        self._member_arrays: Dict[DomainPath, np.ndarray] = {}
        self._live_sorted: Optional[np.ndarray] = None
        net.listeners.append(self)

    # -------------------------------------------------------------- placement

    def _invalidate(self) -> None:
        self._member_arrays.clear()
        self._live_sorted = None

    def _members(self, domain: DomainPath) -> np.ndarray:
        arr = self._member_arrays.get(domain)
        if arr is None:
            arr = np.asarray(
                sorted(
                    n
                    for n in self.net.hierarchy.members(domain)
                    if self.net.nodes[n].alive
                ),
                dtype=_U64,
            )
            self._member_arrays[domain] = arr
        return arr

    def _live(self) -> np.ndarray:
        if self._live_sorted is None:
            self._live_sorted = np.asarray(
                sorted(n for n, node in self.net.nodes.items() if node.alive),
                dtype=_U64,
            )
        return self._live_sorted

    def _desired_holders(self, item) -> List[int]:
        members = self._members(item.storage_domain)
        if members.size == 0:
            return []
        start = int(
            np.searchsorted(members, _U64(item.key_hash), side="right")
        ) - 1
        if start < 0:
            start = int(members.size) - 1
        count = min(self.replicas, int(members.size))
        return [int(members[(start - i) % members.size]) for i in range(count)]

    # ------------------------------------------------------------------- API

    def put(self, origin, key, value, storage_domain=None) -> List[int]:
        """Store a key-value pair; returns its holders (responsible first)."""
        from ..simulation.data import DataItem

        storage_domain = ROOT if storage_domain is None else storage_domain
        origin_path = self.net.hierarchy.path_of(origin)
        if not is_ancestor(storage_domain, origin_path):
            raise ValueError(
                f"storage domain {storage_domain!r} does not contain {origin}"
            )
        key_hash = self.net.space.hash_key(key)
        item = DataItem(key, key_hash, value, storage_domain)
        self.items[key_hash] = item
        holders = self._desired_holders(item)
        self.holders[key_hash] = holders
        self.net._count("store", max(1, len(holders)))
        _record("storage.puts", 1)
        return holders

    def get(self, origin, key):
        """Lookup through the live network; replicas mask dead primaries."""
        key_hash = self.net.space.hash_key(key)
        route = self.net.lookup(origin, key_hash)
        _record("storage.gets", 1)
        item = self.items.get(key_hash)
        if item is None:
            return None, route
        holders = set(self.holders.get(key_hash, []))
        if holders.intersection(route.path):
            return item.value, route
        return None, route

    def value_available(self, key) -> bool:
        """Whether at least one live holder still has a copy of ``key``."""
        key_hash = self.net.space.hash_key(key)
        return any(
            holder in self.net.nodes and self.net.nodes[holder].alive
            for holder in self.holders.get(key_hash, [])
        )

    def lost_keys(self) -> List[object]:
        """Keys whose every copy crashed before re-replication."""
        return [
            self.items[kh].key
            for kh, holders in self.holders.items()
            if not holders
        ]

    # ------------------------------------------------------------- listeners

    def node_joined(self, node_id: int) -> None:
        """The joiner takes over the keys in its new range (handoff)."""
        self._invalidate()
        self._rebalance()

    def node_leaving(self, node_id: int) -> None:
        """Graceful departure: hand keys to the nodes inheriting the range."""
        # The hook fires before the protocol forgets the leaver, so member
        # arrays cached during the handoff still list it: drop them again
        # afterwards rather than serve them to a later put or rebalance.
        self._invalidate()
        try:
            self._handoff(node_id)
        finally:
            self._invalidate()

    def node_crashed(self, node_id: int) -> None:
        """Silent failure: surviving copies keep the data alive; repair
        happens at the next stabilization round."""
        self._invalidate()

    def stabilized(self) -> None:
        """Stabilization hook: restore the replication degree everywhere."""
        self._invalidate()
        self._rebalance()

    # -------------------------------------------------------------- internals

    def _rebalance(self) -> None:
        if not self.items:
            return
        key_list = list(self.items)
        plan = repair_scan(
            key_list,
            [self.items[kh].storage_domain for kh in key_list],
            [self.holders.get(kh, []) for kh in key_list],
            self._members,
            self._live(),
            self.replicas,
        )
        self.net._count("replicate", plan.replicate_msgs)
        for row, key_hash in enumerate(key_list):
            self.holders[key_hash] = plan.holders_of(row)

    def _handoff(self, node_id: int) -> None:
        """Graceful departure: desired runs excluding the leaver, with one
        ``transfer`` per desired holder not already in the key's holder list
        (dead or not — matching the scalar layer's count)."""
        affected = [
            kh for kh, holders in self.holders.items() if node_id in holders
        ]
        if not affected:
            return
        leaver = _U64(node_id)
        transfer_msgs = 0
        new_rows: Dict[int, List[int]] = {}
        groups: Dict[DomainPath, List[int]] = {}
        for key_hash in affected:
            groups.setdefault(self.items[key_hash].storage_domain, []).append(key_hash)
        for domain, key_hashes in groups.items():
            full = self._members(domain)
            members = full[full != leaver]
            if members.size == 0:
                for key_hash in key_hashes:
                    new_rows[key_hash] = []
                continue
            keys = np.asarray(key_hashes, dtype=_U64)
            start = _predecessor_positions(members, keys)
            count = min(self.replicas, int(members.size))
            offsets = np.arange(count, dtype=np.int64)
            targets = members[(start[:, None] - offsets) % members.size].astype(np.int64)
            rows = targets.tolist()
            for i, key_hash in enumerate(key_hashes):
                old = self.holders[key_hash]
                desired = rows[i]
                transfer_msgs += sum(1 for t in desired if t not in old)
                new_rows[key_hash] = desired
        self.net._count("transfer", transfer_msgs)
        for key_hash, row in new_rows.items():
            self.holders[key_hash] = row
