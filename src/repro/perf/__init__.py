"""Fast-path layer: batch routing kernels, a parallel experiment executor
and an on-disk built-network cache.

Three cooperating pieces, each individually optional and all bit-identical
to the plain implementations they accelerate:

- :mod:`repro.perf.kernels` — compile a built network's link tables into a
  CSR-style numpy layout once, then route whole batches of (src, key)
  pairs frontier-at-a-time (one vectorized step per hop over every
  still-active route).
- :mod:`repro.perf.executor` — fan per-figure parameter grids out across a
  :class:`~concurrent.futures.ProcessPoolExecutor`; per-point seeded RNGs
  keep results identical to serial runs, and child metrics registries are
  merged back via the obs snapshot/merge API.
- :mod:`repro.perf.cache` — an on-disk cache of built link tables keyed by
  (family, size, levels, seed token, id-space bits, builder tag) so
  repeated experiment runs skip network construction.
- :mod:`repro.perf.build` — vectorized bulk link-table builders for every
  DHT family, dispatched via each network's ``use_numpy`` flag (and the
  process-wide :func:`~repro.perf.build.set_build_mode` override); the
  scalar constructions in :mod:`repro.dhts` remain the cross-checked
  reference.
- :mod:`repro.perf.arena` — zero-copy shared-memory arenas: a compiled
  network's CSR arrays (plus ring/xor routing tables, top-level-domain
  codes and the transit-stub latency table) laid out once in a single
  :class:`multiprocessing.shared_memory.SharedMemory` block that grid
  workers attach to read-only, so million-node experiment grids fit on
  one machine; see :meth:`CompiledNetwork.to_arena` /
  :meth:`CompiledNetwork.from_arena` and the streaming constructors in
  :mod:`repro.perf.build` (``stream_compiled_crescendo``) that emit CSR
  arrays directly without ever materializing Python node/link objects.
- :mod:`repro.perf.dynamic` — the fast dynamic-maintenance engine:
  array-backed membership state (:class:`~repro.perf.dynamic.NodeArena`),
  batched stabilization with quiescent-ring memoization, and bisect-based
  ring walks behind the exact protocol semantics of
  :class:`~repro.simulation.protocol.SimulatedCrescendo`; selected per
  process via :func:`~repro.perf.dynamic.set_engine_mode` or per instance
  via :func:`~repro.perf.dynamic.make_protocol`, and held to bit-for-bit
  equivalence by :func:`repro.verify.oracles.compare_protocols`.
- :mod:`repro.perf.storage` — the data-plane fast path: vectorized replica
  placement and pointer location (:func:`~repro.perf.storage.plan_puts`),
  batch put/get over the compiled ring tables with access-domain checks as
  integer prefix compares (:class:`~repro.perf.storage.CompiledStore`),
  vectorized churn repair scans (:func:`~repro.perf.storage.repair_scan`)
  and :class:`~repro.perf.storage.FastDataLayer`, a drop-in for the scalar
  :class:`~repro.simulation.data.DataLayer` under either dynamic engine;
  held to scalar equivalence by :func:`repro.verify.oracles.compare_storage`.

See ``docs/performance.md`` for the layout, invalidation rules and
benchmark methodology.
"""

from .arena import (
    Arena,
    ArenaManifest,
    NetworkView,
    attach_network,
    default_enabled,
    export_latency_matrix,
    export_network,
    live_arena_bytes,
    set_default_arena,
    top_domain_codes,
)
from .build import (
    BUILDER_VERSION,
    builder_tag,
    bulk_enabled,
    derive_generator,
    get_build_mode,
    set_build_mode,
    stream_compiled_crescendo,
    stream_crescendo_csr,
)
from .cache import (
    NetworkCache,
    active_cache,
    caching,
    default_cache_dir,
    disable,
    enable,
    install_network,
    network_payload,
)
from .dynamic import (
    ENGINE_MODES,
    FastSimulatedCrescendo,
    NodeArena,
    get_engine_mode,
    make_protocol,
    resolve_engine,
    set_engine_mode,
)
from .executor import (
    get_default_jobs,
    map_points,
    resolve_jobs,
    set_default_jobs,
)
from .kernels import (
    BatchResult,
    CompiledNetwork,
    batch_route,
    batch_route_ring,
    batch_route_xor,
    compile_network,
)
from .storage import (
    BatchSearchResult,
    CompiledStore,
    DomainIndex,
    FastDataLayer,
    PutPlan,
    RepairPlan,
    bulk_put,
    bulk_put_replicated,
    plan_puts,
    repair_scan,
    scalar_search_latency,
)

__all__ = [
    "Arena",
    "ArenaManifest",
    "BUILDER_VERSION",
    "BatchResult",
    "BatchSearchResult",
    "CompiledNetwork",
    "CompiledStore",
    "DomainIndex",
    "ENGINE_MODES",
    "FastDataLayer",
    "FastSimulatedCrescendo",
    "NetworkCache",
    "NetworkView",
    "NodeArena",
    "PutPlan",
    "RepairPlan",
    "active_cache",
    "attach_network",
    "batch_route",
    "batch_route_ring",
    "batch_route_xor",
    "builder_tag",
    "bulk_enabled",
    "bulk_put",
    "bulk_put_replicated",
    "caching",
    "compile_network",
    "default_cache_dir",
    "default_enabled",
    "derive_generator",
    "disable",
    "enable",
    "export_latency_matrix",
    "export_network",
    "get_build_mode",
    "get_default_jobs",
    "get_engine_mode",
    "install_network",
    "live_arena_bytes",
    "make_protocol",
    "map_points",
    "network_payload",
    "plan_puts",
    "repair_scan",
    "resolve_engine",
    "resolve_jobs",
    "scalar_search_latency",
    "set_build_mode",
    "set_default_arena",
    "set_default_jobs",
    "set_engine_mode",
    "stream_compiled_crescendo",
    "stream_crescendo_csr",
    "top_domain_codes",
]
