"""On-disk cache of built link tables.

Building a 32K-node Crescendo (let alone the four networks of a topology
setup) dwarfs the routing measurements taken on it, yet the construction is
a pure function of ``(family, size, levels, seed token, id-space bits,
builder tag)`` — exactly the cache key used here.  The builder tag
(:func:`repro.perf.build.builder_tag`) names the implementation that will
run — ``python`` (scalar reference) or ``numpy-v<N>`` (bulk builders at
their current version) — because the randomized families draw different
(equivalent, but not identical) link tables on each path: without the tag
a vectorized run could serve tables cached by the reference path and vice
versa.  A :class:`NetworkCache` stores, per key,
everything a constructed-but-unbuilt network needs to become identical to a
freshly built one: the link table, the Crescendo extras (``gap``,
``level_successors``) when present, and the builder RNG's post-build state
so every *subsequent* draw from the caller's RNG matches the uncached run
byte-for-byte.

Entries are pickle files named by the SHA-256 of the key's ``repr`` under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-canon/networks``); the key
string is stored inside each entry and verified on load, so hash collisions
and stale/corrupt files degrade to cache misses, never wrong networks.
Writes are atomic (``mkstemp`` + ``os.replace``), so parallel workers can
share one cache directory.  The experiments CLI enables the cache by
default; ``--no-cache`` opts out, and bumping :data:`CACHE_VERSION`
invalidates every existing entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from ..core.network import DHTNetwork
from ..obs import metrics as obs_metrics

__all__ = [
    "CACHE_VERSION",
    "NetworkCache",
    "active_cache",
    "caching",
    "default_cache_dir",
    "disable",
    "enable",
    "install_network",
    "network_payload",
]

#: Bump when the payload layout (or anything affecting built link tables)
#: changes; old entries then read as misses.  v2: keys grew the builder
#: tag and payloads the Kandy/Can-Can extras (contact_depth, edge_depth).
#: v3: compiled CSR arrays ride alongside as an ``.npz`` sidecar so warm
#: loads of large networks skip Python-object link-table reconstruction.
CACHE_VERSION = 3


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-canon/networks``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-canon" / "networks"


class NetworkCache:
    """A directory of pickled built-network payloads, keyed by tuples."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ keys

    @staticmethod
    def key_string(key: Tuple) -> str:
        """The canonical (version-prefixed) string form of a cache key."""
        return f"v{CACHE_VERSION}:{key!r}"

    def path_for(self, key: Tuple) -> Path:
        """The cache file a key maps to (SHA-256 of its key string)."""
        digest = hashlib.sha256(self.key_string(key).encode("utf-8")).hexdigest()
        return self.root / f"{digest}.pkl"

    def array_path_for(self, key: Tuple) -> Path:
        """The ``.npz`` sidecar holding a key's compiled CSR arrays."""
        return self.path_for(key).with_suffix(".npz")

    # ------------------------------------------------------------------- api

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` (miss).

        Unreadable, corrupt or colliding entries count as misses; the cache
        never raises on load.
        """
        path = self.path_for(key)
        payload: Optional[Dict[str, Any]] = None
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if (
                isinstance(entry, dict)
                and entry.get("key") == self.key_string(key)
                and entry.get("version") == CACHE_VERSION
            ):
                payload = entry["payload"]
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, KeyError):
            payload = None
        registry = obs_metrics.active_registry()
        if payload is None:
            self.misses += 1
            if registry is not None:
                registry.counter("perf.cache.misses").inc()
            return None
        self.hits += 1
        if registry is not None:
            registry.counter("perf.cache.hits").inc()
        return payload

    def put(self, key: Tuple, payload: Dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``; returns the file path."""
        path = self.path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "key": self.key_string(key),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter("perf.cache.stores").inc()
        return path

    # --------------------------------------------------------- array sidecar

    def get_arrays(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """The compiled-array sidecar for ``key``, or ``None`` (miss).

        Arrays load with ``allow_pickle=False`` and the embedded key string
        is verified, so — like :meth:`get` — corruption and collisions
        degrade to misses, never wrong arrays.
        """
        import numpy as np

        path = self.array_path_for(key)
        arrays: Optional[Dict[str, Any]] = None
        try:
            with np.load(path, allow_pickle=False) as npz:
                if str(npz["__key__"]) == self.key_string(key):
                    arrays = {
                        name: npz[name] for name in npz.files if name != "__key__"
                    }
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            arrays = None
        registry = obs_metrics.active_registry()
        if arrays is None:
            if registry is not None:
                registry.counter("perf.cache.array_misses").inc()
            return None
        if registry is not None:
            registry.counter("perf.cache.array_hits").inc()
        return arrays

    def put_arrays(self, key: Tuple, arrays: Dict[str, Any]) -> Path:
        """Atomically store compiled arrays as the ``.npz`` sidecar of ``key``."""
        import numpy as np

        path = self.array_path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, __key__=self.key_string(key), **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter("perf.cache.array_stores").inc()
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many files were removed."""
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.pkl", "*.npz"):
                for path in self.root.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counts accumulated by this cache instance."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


# ------------------------------------------------------- network (de)hydration


def network_payload(
    network: DHTNetwork, rng_state: Optional[Tuple] = None
) -> Dict[str, Any]:
    """Everything needed to reinstate ``network``'s built state later.

    Captures the link table plus, duck-typed, the Crescendo-family extras
    (``gap``, ``level_successors``).  Pass the builder RNG's
    ``getstate()`` (captured *after* the build) as ``rng_state`` when the
    caller keeps drawing from that RNG afterwards.
    """
    network.require_built()
    payload: Dict[str, Any] = {
        "node_ids": list(network.node_ids),
        "links": {node: list(t) for node, t in network.links.items()},
    }
    if rng_state is not None:
        payload["rng_state"] = rng_state
    gap = getattr(network, "gap", None)
    if gap is not None:
        payload["gap"] = dict(gap)
    level_successors = getattr(network, "level_successors", None)
    if level_successors is not None:
        payload["level_successors"] = {
            node: list(succ) for node, succ in level_successors.items()
        }
    for extra in ("contact_depth", "edge_depth"):
        value = getattr(network, extra, None)
        if value is not None:
            payload[extra] = {node: dict(depths) for node, depths in value.items()}
    built_with = getattr(network, "built_with", None)
    if built_with is not None:
        payload["built_with"] = built_with
    return payload


def install_network(network: DHTNetwork, payload: Dict[str, Any]) -> DHTNetwork:
    """Reinstate a cached built state onto a constructed (unbuilt) network.

    Validates that the payload covers exactly this network's node ids — a
    mismatched entry raises rather than silently producing a wrong network.
    """
    if set(payload["node_ids"]) != set(network.node_ids):
        raise ValueError("cached payload does not match this network's node ids")
    network.links = {node: list(t) for node, t in payload["links"].items()}
    if "gap" in payload and hasattr(network, "gap"):
        network.gap = dict(payload["gap"])
    if "level_successors" in payload and hasattr(network, "level_successors"):
        network.level_successors = {
            node: list(succ) for node, succ in payload["level_successors"].items()
        }
    for extra in ("contact_depth", "edge_depth"):
        if extra in payload and hasattr(network, extra):
            setattr(
                network,
                extra,
                {node: dict(depths) for node, depths in payload[extra].items()},
            )
    if "built_with" in payload:
        network.built_with = payload["built_with"]
    network._built = True
    return network


# ----------------------------------------------------------- active cache state

_active: Optional[NetworkCache] = None


def enable(cache: Optional[NetworkCache] = None) -> NetworkCache:
    """Install ``cache`` (a default-directory one if omitted) as active."""
    global _active
    _active = cache if cache is not None else NetworkCache()
    return _active


def disable() -> None:
    """Deactivate caching (builders construct from scratch again)."""
    global _active
    _active = None


def active_cache() -> Optional[NetworkCache]:
    """The currently active cache, or ``None``."""
    return _active


@contextmanager
def caching(cache: Optional[NetworkCache] = None) -> Iterator[NetworkCache]:
    """Activate a cache for the ``with`` body, restoring the previous one."""
    previous = _active
    cache = enable(cache)
    try:
        yield cache
    finally:
        if previous is None:
            disable()
        else:
            enable(previous)
