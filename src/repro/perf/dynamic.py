"""Fast path for dynamic maintenance: the churn counterpart of ``perf.build``.

The reference engine (:class:`repro.simulation.protocol.SimulatedCrescendo`)
answers every membership question by scanning Python dicts and re-sorting
the population, and every ring walk by scanning a contact *set* per hop.
This module keeps the protocol logic — every branch, every message — and
replaces only the primitives:

- :class:`NodeArena` — structure-of-arrays membership state: one sorted
  live-id array per ring (every hierarchy prefix, i.e. per level), kept in
  sync incrementally via the base class's membership hooks, plus
  insertion-order member tables mirroring the bootstrap directory.  Live
  views, ring-emptiness checks and nearest-peer queries become O(log n)
  array searches instead of O(n) scans.
- Batched stabilization: each :meth:`FastSimulatedCrescendo.stabilize`
  round starts with one vectorized searchsorted sweep per level over the
  arena's sorted arrays (``numpy.roll`` on each ring array), yielding the
  true live successor of every member at every level at once; the
  per-node repair consults this table instead of running a per-node
  directory scan.  The round still visits nodes and levels in the
  reference order — under damage, intra-round order is observable in the
  message accounting, and identical accounting is the contract.
- Greedy walks (:meth:`_find_predecessor`, :meth:`lookup`) run as binary
  searches over cached sorted contact arrays: the reference's argmax over
  ``(contact - cur) % size <= remaining`` is exactly the cyclic
  predecessor of the key among the contacts, found with one bisect and a
  short backward scan over dead entries.  Hop sequences — and therefore
  message counts — are identical by construction.
- Convergence checks compute the static oracle once per
  :meth:`stabilize_to_convergence` call (live membership cannot change
  during stabilization) and build it through the vectorized bulk
  constructor, which is link-for-link identical for Crescendo.
- Quiescent-ring memoization: a per-``(node, level)`` stabilization step
  that wrote nothing is a pure function of the node states it read.  The
  fast engine records that read set (every aliveness check and every
  contact list consulted, collected through the base class's
  :meth:`~repro.simulation.protocol.SimulatedCrescendo._observe_live`
  hook and the walk primitives) together with the per-kind message counts
  the step emitted.  As long as no node in the read set is touched,
  crashed or purged, re-executing the step would read identical state and
  therefore do exactly what it did before — so the engine replays the
  recorded counts and skips the walks.  Any write anywhere fires
  ``_touch`` on the written node, which eagerly invalidates exactly the
  memos that read it; ring-emptiness (the one membership read on the
  quiescent path) is re-validated in O(1) at replay time.  After churn
  quiesces, a stabilization round costs one dictionary probe per ring
  view instead of a finger rebuild — while still reporting the exact
  message counts the reference engine pays.

Equivalence is not assumed but enforced:
:func:`repro.verify.oracles.compare_protocols` replays identical schedules
through both engines and requires identical delivery outcomes, per-kind
message counts and final link tables; the churn fuzzer runs with either
engine via ``--engine``.

Engine selection mirrors :func:`repro.perf.build.set_build_mode`: a
process-wide mode (``auto`` — the default, resolving to ``fast`` —,
``fast`` or ``reference``) consulted by :func:`make_protocol`, plus the
``--engine`` flag on the experiments and verify CLIs.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.hierarchy import DomainPath
from ..core.idspace import IdSpace, successor_index
from ..core.routing import MAX_HOPS, Route
from ..simulation.events import FastSimulator, Simulator
from ..simulation.protocol import ProtocolNode, SimulatedCrescendo, _dedup

#: Recognized engine modes (``auto`` resolves to ``fast``).
ENGINE_MODES: Tuple[str, ...] = ("auto", "fast", "reference")

_engine_mode = "auto"


def set_engine_mode(mode: str) -> None:
    """Select the process-wide maintenance engine (see :data:`ENGINE_MODES`)."""
    global _engine_mode
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    _engine_mode = mode


def get_engine_mode() -> str:
    """The current process-wide engine mode."""
    return _engine_mode


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an explicit or process-wide mode to ``fast``/``reference``."""
    mode = engine if engine is not None else _engine_mode
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    return "fast" if mode in ("auto", "fast") else "reference"


def make_protocol(
    space: IdSpace, engine: Optional[str] = None, **kwargs
) -> SimulatedCrescendo:
    """A maintenance protocol instance for the resolved engine.

    ``engine`` overrides the process-wide mode for this instance; keyword
    arguments pass through to the protocol constructor.
    """
    if resolve_engine(engine) == "fast":
        return FastSimulatedCrescendo(space, **kwargs)
    return SimulatedCrescendo(space, **kwargs)


class NodeArena:
    """Structure-of-arrays membership index behind the fast engine.

    Per hierarchy prefix (every ring at every level, the root ring at key
    ``()``), a sorted array of the ring's *live* member ids — maintained
    incrementally on join/crash/forget instead of re-sorted per query —
    plus an insertion-order member table per prefix that mirrors
    ``Hierarchy.members`` (the bootstrap directory's answer must not
    depend on the engine, and that answer is insertion-ordered).
    """

    def __init__(self) -> None:
        #: prefix -> sorted live member ids (the per-level leaf-set arrays).
        self._rings: Dict[DomainPath, List[int]] = {}
        #: prefix -> insertion-ordered members (dict-as-ordered-set); holds
        #: crashed-but-unpurged nodes too, exactly like the hierarchy.
        self._order: Dict[DomainPath, Dict[int, None]] = {}
        self._paths: Dict[int, DomainPath] = {}
        self._live: Set[int] = set()

    def add(self, node_id: int, path: DomainPath) -> None:
        """Register a live node under every prefix of ``path``."""
        if node_id in self._paths:
            return
        self._paths[node_id] = path
        self._live.add(node_id)
        for depth in range(len(path) + 1):
            prefix = path[:depth]
            ring = self._rings.get(prefix)
            if ring is None:
                ring = self._rings[prefix] = []
                self._order[prefix] = {}
            insort(ring, node_id)
            self._order[prefix][node_id] = None

    def crash(self, node_id: int) -> None:
        """Drop a node from the live arrays (it stays in insertion order)."""
        if node_id not in self._live:
            return
        self._live.discard(node_id)
        path = self._paths[node_id]
        for depth in range(len(path) + 1):
            ring = self._rings[path[:depth]]
            del ring[bisect_left(ring, node_id)]

    def revive(self, node_id: int) -> None:
        """Re-insert a crashed-but-unforgotten node into the live arrays.

        The inverse of :meth:`crash`, used when a partition heals: the
        node's path registration survived the suspension, so the sorted
        ring arrays are rebuilt by insertion only.
        """
        if node_id in self._live or node_id not in self._paths:
            return
        self._live.add(node_id)
        path = self._paths[node_id]
        for depth in range(len(path) + 1):
            insort(self._rings[path[:depth]], node_id)

    def remove(self, node_id: int, path: DomainPath) -> None:
        """Forget a node entirely (idempotent after :meth:`crash`)."""
        self.crash(node_id)
        if self._paths.pop(node_id, None) is None:
            return
        for depth in range(len(path) + 1):
            self._order[path[:depth]].pop(node_id, None)

    def ring_members(self, prefix: DomainPath) -> List[int]:
        """Sorted live members of the ring at ``prefix`` (shared view)."""
        return self._rings.get(prefix, [])

    def ordered_members(self, prefix: DomainPath) -> Sequence[int]:
        """Members of ``prefix`` in insertion order (crashed included)."""
        return self._order.get(prefix, {}).keys()

    def successor_table(self) -> Dict[DomainPath, Dict[int, int]]:
        """Per level, every live member's true ring successor, at once.

        One vectorized sweep per ring — ``numpy.roll`` over the sorted
        member array — instead of a directory scan per node: this is the
        batched successor repair a stabilization round starts from.
        """
        out: Dict[DomainPath, Dict[int, int]] = {}
        for prefix, ring in self._rings.items():
            if len(ring) < 2:
                continue
            arr = np.asarray(ring)
            out[prefix] = dict(
                zip(arr.tolist(), np.roll(arr, -1).tolist())
            )
        return out


class FastSimulatedCrescendo(SimulatedCrescendo):
    """:class:`SimulatedCrescendo` on array-backed state — same protocol,
    same messages, faster primitives (see the module docstring).

    Uses a :class:`~repro.simulation.events.FastSimulator` (calendar-queue
    event core) unless an explicit simulator is passed.
    """

    engine = "fast"

    def __init__(self, space: IdSpace, sim: Optional[Simulator] = None, **kwargs):
        super().__init__(space, sim=sim if sim is not None else FastSimulator(), **kwargs)
        self.arena = NodeArena()
        #: node id -> depth -> sorted contact array (dropped on _touch).
        self._contact_cache: Dict[int, Dict[int, List[int]]] = {}
        self._round_successors: Optional[Dict[DomainPath, Dict[int, int]]] = None
        #: bumped on every state write (touch or membership change).
        self._epoch = 0
        #: bumped on membership changes only (keys the oracle cache).
        self._members_epoch = 0
        #: read-set collector, non-None only inside a tracked stabilize step.
        self._reads: Optional[Set[int]] = None
        #: (node, depth) -> (per-kind message counts, ring-had-live-peer).
        self._stab_memo: Dict[Tuple[int, int], Tuple[Dict[str, int], bool]] = {}
        #: read node -> memo keys that depended on it (invalidation index).
        self._stab_deps: Dict[int, Set[Tuple[int, int]]] = {}
        self._static_cache: Optional[Tuple[int, Dict[int, List[int]]]] = None
        self._oracle_cache: Optional[Tuple[int, Dict[int, List[int]]]] = None

    # ----------------------------------------------------- membership hooks

    def _membership_added(self, node: ProtocolNode) -> None:
        super()._membership_added(node)
        self.arena.add(node.node_id, node.path)
        self._epoch += 1
        self._members_epoch += 1
        # A fresh node was read by no prior stabilize step, so no memo can
        # depend on it; ring-emptiness flips are re-validated at replay.

    def _membership_crashed(self, node: ProtocolNode) -> None:
        super()._membership_crashed(node)
        self.arena.crash(node.node_id)
        self._epoch += 1
        self._members_epoch += 1
        self._invalidate(node.node_id)

    def _membership_revived(self, node: ProtocolNode) -> None:
        super()._membership_revived(node)
        self.arena.revive(node.node_id)
        self._epoch += 1
        self._members_epoch += 1
        # Same invalidation discipline as a crash, in reverse: any memoized
        # stabilize step that read this node (even as a dead contact) may
        # now behave differently, so its memo must go.
        self._invalidate(node.node_id)

    def _membership_removed(self, node_id: int, path: DomainPath) -> None:
        super()._membership_removed(node_id, path)
        self.arena.remove(node_id, path)
        self._epoch += 1
        self._members_epoch += 1
        self._invalidate(node_id)
        for depth in range(len(path) + 1):
            self._stab_memo.pop((node_id, depth), None)

    def _touch(self, node_id: int) -> None:
        self._contact_cache.pop(node_id, None)
        self._epoch += 1
        self._invalidate(node_id)

    def _invalidate(self, node_id: int) -> None:
        """Drop every memoized stabilize step that read ``node_id``."""
        keys = self._stab_deps.pop(node_id, None)
        if keys:
            memo = self._stab_memo
            for key in keys:
                memo.pop(key, None)

    def _observe_live(self, node_id: Optional[int]) -> bool:
        if node_id is None:
            return False
        reads = self._reads
        if reads is not None:
            reads.add(node_id)
        peer = self.nodes.get(node_id)
        return peer is not None and peer.alive

    # ------------------------------------------------------------ live views

    def live_view(self) -> Sequence[int]:
        """Sorted live node ids, served from the arena's root ring."""
        return self.arena.ring_members(())

    # ---------------------------------------------------- membership queries

    def _ring_has_live_peer(self, prefix: DomainPath, exclude: int) -> bool:
        ring = self.arena.ring_members(prefix)
        return len(ring) > 1 or (len(ring) == 1 and ring[0] != exclude)

    def _first_live_member(
        self, prefix: DomainPath, exclude: Optional[int] = None
    ) -> Optional[int]:
        # Same insertion-order semantics as the base, but iterating the
        # arena's ordered table lazily instead of copying the hierarchy's
        # member list per call.
        nodes = self.nodes
        for n in self.arena.ordered_members(prefix):
            if n != exclude and nodes[n].alive:
                return n
        return None

    def _nearest_live_peer(self, prefix: DomainPath, node_id: int) -> int:
        table = self._round_successors
        if table is not None:
            succ = table.get(prefix, {}).get(node_id)
            if succ is not None:
                return succ
        ring = self.arena.ring_members(prefix)
        idx = successor_index(ring, self.space.add(node_id, 1))
        if ring[idx] == node_id:
            idx = (idx + 1) % len(ring)
        return ring[idx]

    def _ordered_leafset(self, node_id: int, entries: List[int]) -> List[int]:
        # Same result as the base; the sort key inlines the modular
        # arithmetic instead of going through the IdSpace property.
        cleaned = _dedup(entries, node_id)
        size = self.space.size
        cleaned.sort(key=lambda x: (x - node_id) % size)
        return cleaned[: self.leaf_set_size]

    # ------------------------------------------------------------ navigation

    def _sorted_contacts(self, node_id: int, depth: int) -> List[int]:
        per_node = self._contact_cache.get(node_id)
        if per_node is None:
            per_node = self._contact_cache[node_id] = {}
        out = per_node.get(depth)
        if out is None:
            out = per_node[depth] = sorted(
                SimulatedCrescendo._ring_contacts(self, self.nodes[node_id], depth)
            )
        return out

    def _ring_contacts(self, node: ProtocolNode, depth: int) -> Set[int]:
        return set(self._sorted_contacts(node.node_id, depth))

    def _finger_hints(
        self, node: ProtocolNode, pred_id: int, depth: int
    ) -> List[int]:
        # Same sorted result as the base's set construction, assembled
        # from the cached sorted contact array with two bisects.
        hints = list(self._sorted_contacts(pred_id, depth))
        i = bisect_left(hints, node.node_id)
        if i < len(hints) and hints[i] == node.node_id:
            hints.pop(i)
        j = bisect_left(hints, pred_id)
        if j >= len(hints) or hints[j] != pred_id:
            hints.insert(j, pred_id)
        return hints

    def _best_hop(
        self,
        contacts: List[int],
        cur_id: int,
        key: int,
        remaining: int,
        exclude: Optional[int],
    ) -> Optional[int]:
        """The reference walk's argmax as a binary search.

        The contact maximizing ``(c - cur) % size`` subject to that
        distance being in ``(0, remaining]`` is the cyclic predecessor of
        ``key`` among the contacts; dead or excluded entries are skipped
        by stepping further backward, which visits candidates in strictly
        decreasing distance until the arc ``(cur, key]`` is exhausted.
        """
        if not contacts:
            return None
        nodes = self.nodes
        size = self.space.size
        reads = self._reads
        # bisect_right - 1 is predecessor_index at C speed: -1 (all
        # contacts above the key) is the cyclic wrap to the last entry,
        # which Python's negative indexing already performs.
        idx = bisect_right(contacts, key) - 1
        for back in range(len(contacts)):
            cand = contacts[idx - back]
            if not 0 < (cand - cur_id) % size <= remaining:
                break
            if cand == exclude:
                continue
            if reads is not None:
                reads.add(cand)
            peer = nodes.get(cand)
            if peer is None or not peer.alive:
                continue
            return cand
        return None

    def _find_predecessor(
        self,
        prefix: DomainPath,
        key: int,
        start: int,
        kind: str,
        exclude: Optional[int] = None,
    ) -> int:
        depth = len(prefix)
        cur_id = start
        size = self.space.size
        reads = self._reads
        for _ in range(MAX_HOPS):
            if reads is not None:
                reads.add(cur_id)
            best = self._best_hop(
                self._sorted_contacts(cur_id, depth),
                cur_id,
                key,
                (key - cur_id) % size,
                exclude,
            )
            if best is None:
                return cur_id
            self._count(kind)
            cur_id = best
        raise RuntimeError("ring walk exceeded hop bound")

    def _find_successor_from(
        self,
        prefix: DomainPath,
        target: int,
        hint: int,
        kind: str,
        exclude: Optional[int] = None,
    ) -> int:
        # Same as the base, with the zero-distance test inlined (ids are
        # validated into [0, size), so ring_distance == 0 iff equality).
        pred = self._find_predecessor(prefix, target, hint, kind, exclude)
        if pred == target:
            return pred
        succ = self.nodes[pred].rings[len(prefix)].successor
        return succ if succ is not None else pred

    def _gap(self, node: ProtocolNode, depth: int) -> int:
        if depth >= node.leaf_depth:
            return self.space.size
        lower = node.rings[depth + 1].successor
        if lower is None or lower == node.node_id:
            return self.space.size
        return (lower - node.node_id) % self.space.size

    def _build_fingers(
        self, node: ProtocolNode, depth: int, pred_id: int, kind: str
    ) -> None:
        # Line-for-line the base implementation (same walks, same message
        # accounting — compare_protocols enforces it) with the modular
        # arithmetic and the hint bisection inlined; this is the hottest
        # maintenance routine once quiescent rings replay from the memo.
        self._count("fetch_hints")
        prefix = node.path[:depth]
        gap = self._gap(node, depth)
        node_id = node.node_id
        size = self.space.size
        fingers: Set[int] = set()
        hints = self._finger_hints(node, pred_id, depth)
        last_succ: Optional[int] = None
        for k in range(self.space.bits):
            step = 1 << k
            if step >= gap:
                break
            if last_succ is not None and (last_succ - node_id) % size >= step:
                continue
            target = (node_id + step) % size
            # hints[bisect_right - 1] is the cyclic predecessor of the
            # target among the hints (negative indexing handles the wrap).
            start = hints[bisect_right(hints, target) - 1]
            succ = self._find_successor_from(prefix, target, start, kind)
            if succ == node_id:
                continue
            dist = (succ - node_id) % size
            if step <= dist < gap:
                fingers.add(succ)
                last_succ = succ
                if succ not in hints:
                    insort(hints, succ)
        if fingers != node.rings[depth].fingers:
            node.rings[depth].fingers = fingers
            self._touch(node_id)

    # ---------------------------------------------------------- maintenance

    def stabilize(self) -> int:
        """Run one stabilization round with batched successor repair."""
        # Batched successor repair: one vectorized sweep per level up
        # front; the per-node round then reads repairs out of the table.
        self._round_successors = self.arena.successor_table()
        try:
            return super().stabilize()
        finally:
            self._round_successors = None

    def _stabilize_ring(self, node: ProtocolNode, depth: int) -> None:
        # Quiescent-ring fast path (see module docstring): replay the
        # recorded message counts of a pure execution whose entire read
        # set is unchanged, instead of re-walking the ring.
        key = (node.node_id, depth)
        memo = self._stab_memo.get(key)
        if memo is not None:
            counts, had_peer = memo
            if (
                self._ring_has_live_peer(node.path[:depth], node.node_id)
                == had_peer
            ):
                stats = self.msgs.stats
                for kind, n in counts.items():
                    stats.record_many(kind, n)
                return
            del self._stab_memo[key]
        stats = self.msgs.stats
        epoch = self._epoch
        before = dict(stats.counts)
        reads = self._reads = {node.node_id}
        try:
            super()._stabilize_ring(node, depth)
        finally:
            self._reads = None
        if self._epoch != epoch:
            return  # the step wrote state: not replayable as recorded
        delta = {
            kind: n - before.get(kind, 0)
            for kind, n in stats.counts.items()
            if n != before.get(kind, 0)
        }
        self._stab_memo[key] = (
            delta,
            self._ring_has_live_peer(node.path[:depth], node.node_id),
        )
        deps = self._stab_deps
        for read in reads:
            bucket = deps.get(read)
            if bucket is None:
                bucket = deps[read] = set()
            bucket.add(key)

    def stabilize_to_convergence(self, max_rounds: int = 20) -> int:
        """Stabilize until the link tables match the static oracle."""
        # Stabilization never changes the live membership (it only purges
        # already-dead state), so the static oracle is loop-invariant:
        # compute it once instead of once per round.
        oracle = self.oracle_links()
        for round_number in range(1, max_rounds + 1):
            self.stabilize()
            if self.static_links() == oracle:
                return round_number
        raise RuntimeError(f"not converged after {max_rounds} stabilize rounds")

    def static_links(self) -> Dict[int, List[int]]:
        """Protocol-built link tables, cached until the next state write."""
        # The link tables are a pure function of the protocol state, so
        # the snapshot stays valid until the next write (epoch bump).
        cached = self._static_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        out = super().static_links()
        self._static_cache = (self._epoch, out)
        return out

    def oracle_links(self) -> Dict[int, List[int]]:
        """Static oracle construction, cached until membership changes."""
        from ..dhts.crescendo import CrescendoNetwork
        from ..core.hierarchy import Hierarchy

        # The oracle depends on the live membership only — not on link
        # state — so it survives any number of stabilization rounds.
        cached = self._oracle_cache
        if cached is not None and cached[0] == self._members_epoch:
            return cached[1]
        hierarchy = Hierarchy()
        for node_id in self.live_view():
            hierarchy.place(node_id, self.nodes[node_id].path)
        # The bulk builder is link-for-link identical for Crescendo (the
        # deterministic family), so the fast engine may use it.
        oracle = CrescendoNetwork(self.space, hierarchy, use_numpy=True).build()
        out = {n: list(links) for n, links in oracle.links.items()}
        self._oracle_cache = (self._members_epoch, out)
        return out

    # ---------------------------------------------------------------- lookup

    def lookup(self, src: int, key: int) -> Route:
        """Route ``key`` from ``src`` using the bisect walk primitives."""
        cur_id = src
        path = [src]
        size = self.space.size
        try:
            for _ in range(MAX_HOPS):
                remaining = (key - cur_id) % size
                if remaining == 0:
                    return Route(path, True, key)
                best = self._best_hop(
                    self._sorted_contacts(cur_id, 0), cur_id, key, remaining, None
                )
                if best is None:
                    return Route(path, self._responsible_live(cur_id, key), key)
                self._count("lookup")
                path.append(best)
                cur_id = best
            raise RuntimeError("lookup exceeded hop bound")
        finally:
            self.msgs.stats.flush()
