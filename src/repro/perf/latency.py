"""Vectorized node-to-node latency over the transit-stub matrix.

The scalar latency oracle is
:meth:`repro.topology.transit_stub.TransitStubTopology.node_latency`:
``2 * HOST_STUB_MS + matrix[router(a), router(b)]`` per hop, one Python
call per hop.  A :class:`LatencyTable` freezes the attachment into numpy
form — a sorted node-id array plus an aligned ``int32`` router-index array
over the topology's ``float32`` all-pairs matrix — so the batch routing
kernels (:mod:`repro.perf.kernels`) and the measurement harness can
accumulate per-hop latency with two gathers per frontier instead of a
Python call per hop.

Bit-for-bit contract: every per-hop value is computed as
``float64(2 * host_ms) + float64(matrix[ra, rb])`` — exactly the widening
the scalar oracle performs — and every per-route total is accumulated as a
strict left fold in hop order, so batch totals equal
``Route.latency(topology.node_latency)`` to the last bit (asserted by
:func:`repro.verify.oracles.compare_routing` and the latency baseline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LatencyTable"]


class LatencyTable:
    """Frozen node→router attachment over an all-pairs router latency matrix.

    ``node_ids`` is sorted ascending; ``routers[i]`` is the router index of
    ``node_ids[i]`` into ``matrix`` (``float32``, milliseconds).  Each hop
    between distinct attached nodes costs ``2 * host_ms`` access latency
    plus the router shortest path; a self-hop costs 0.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        routers: Sequence[int],
        matrix: np.ndarray,
        host_ms: float = 1.0,
    ) -> None:
        ids = np.asarray(node_ids, dtype=np.uint64)
        if ids.size and np.any(ids[1:] <= ids[:-1]):
            order = np.argsort(ids, kind="stable")
            ids = ids[order]
            routers = np.asarray(routers, dtype=np.int64)[order]
        self.node_ids = ids
        self.routers = np.asarray(routers, dtype=np.int32)
        if self.routers.shape != self.node_ids.shape:
            raise ValueError(
                f"{self.node_ids.size} node ids vs {self.routers.size} routers"
            )
        self.matrix = matrix
        self.host_ms = float(host_ms)
        #: The per-hop access-link term, widened once (``2 * HOST_STUB_MS``).
        self.hop2_ms = np.float64(2.0 * self.host_ms)
        # aligned_routers cache: id(ids array) -> (the array itself, routers).
        # Holding the array keeps its id from being recycled.
        self._align_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    @classmethod
    def from_topology(
        cls, topology, node_ids: Optional[Sequence[int]] = None
    ) -> "LatencyTable":
        """Freeze a :class:`TransitStubTopology`'s current attachment.

        ``node_ids`` defaults to every attached node; a subset is fine.
        """
        if node_ids is None:
            node_ids = sorted(topology._attachment)
        routers = [topology.router_of(n) for n in node_ids]
        from ..topology.transit_stub import HOST_STUB_MS

        return cls(node_ids, routers, topology._latency, host_ms=HOST_STUB_MS)

    @property
    def size(self) -> int:
        return int(self.node_ids.size)

    @property
    def nbytes(self) -> int:
        """Bytes held by the table's arrays (ids + routers + matrix).

        This is what the shared-memory path saves per extra worker: an
        arena-exported table (:func:`repro.perf.arena.export_latency_matrix`
        or the ``lat_*`` fields of an exported network) shares all three
        arrays, so attaching costs none of these bytes again.
        """
        return int(
            self.node_ids.nbytes + self.routers.nbytes + self.matrix.nbytes
        )

    # ------------------------------------------------------------- lookups

    def positions(self, values: np.ndarray) -> np.ndarray:
        """Index of each value in ``node_ids`` (clear error on strangers)."""
        pos = np.searchsorted(self.node_ids, values)
        pos = np.minimum(pos, max(self.node_ids.size - 1, 0))
        bad = (
            self.node_ids[pos] != values
            if self.node_ids.size
            else np.ones(values.shape, dtype=bool)
        )
        if np.any(bad):
            missing = int(np.asarray(values)[bad][0])
            raise KeyError(
                f"node {missing} is not in this latency table "
                f"(attach it to the topology before routing)"
            )
        return pos.astype(np.int64)

    def aligned_routers(self, ids: np.ndarray) -> np.ndarray:
        """Router indices aligned with an arbitrary sorted id array.

        This is what the batch kernels call once per routing batch with
        their compiled ``ids`` array: the result is position-aligned, so
        the per-hop gather is ``routers[position]`` with no id lookups.
        Cached per distinct array object.
        """
        key = id(ids)
        cached = self._align_cache.get(key)
        if cached is not None and cached[0] is ids:
            return cached[1]
        aligned = self.routers[self.positions(ids)]
        self._align_cache[key] = (ids, aligned)
        return aligned

    # ------------------------------------------------------------ latencies

    def node_latency(self, a: int, b: int) -> float:
        """Scalar end-to-end latency (same semantics as the topology's)."""
        if a == b:
            return 0.0
        pos = self.positions(np.asarray([a, b], dtype=np.uint64))
        ra, rb = self.routers[pos[0]], self.routers[pos[1]]
        return float(self.hop2_ms + np.float64(self.matrix[ra, rb]))

    #: A table is itself usable wherever a ``(a, b) -> ms`` callable is.
    __call__ = node_latency

    def hop_ms(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """Vectorized per-pair latency (``float64`` ms; 0 where ``a == b``)."""
        a = np.asarray(a_ids, dtype=np.uint64)
        b = np.asarray(b_ids, dtype=np.uint64)
        ra = self.routers[self.positions(a)]
        rb = self.routers[self.positions(b)]
        out = self.hop2_ms + self.matrix[ra, rb].astype(np.float64)
        out[a == b] = 0.0
        return out

    def path_ms(self, path: Sequence[int]) -> float:
        """Latency of one hop path, bit-identical to the scalar fold.

        One vectorized gather for the hop values, then a left fold in hop
        order (Python ``sum`` over float64 values) — the exact addition
        sequence of :meth:`repro.core.routing.Route.latency`.
        """
        if len(path) < 2:
            return 0.0
        nodes = np.asarray(path, dtype=np.uint64)
        vals = self.hop_ms(nodes[:-1], nodes[1:])
        return sum(vals.tolist())

    def paths_ms(self, paths: Sequence[Sequence[int]]) -> List[float]:
        """Per-path latencies (one gather per path, scalar-fold totals)."""
        return [self.path_ms(path) for path in paths]
