"""Zero-copy shared-memory arenas for compiled networks.

A grid run with ``--jobs N`` used to hand every worker its own copy of each
built network (rebuilt from the cache or inherited copy-on-write and then
touched all over by compilation).  At paper-and-beyond populations the
duplicated CSR arrays — not CPU — are what stops the grid from scaling.
An :class:`Arena` instead lays every array a worker needs into a single
``multiprocessing.shared_memory`` block described by a small picklable
:class:`ArenaManifest`; workers attach read-only and route through the
batch kernels of :mod:`repro.perf.kernels` unchanged, so a million-node
network costs its arena bytes *once* per machine regardless of ``--jobs``.

Layout.  :func:`export_network` packs a
:class:`~repro.perf.kernels.CompiledNetwork` — ids, CSR ``indptr`` /
``neighbors`` / ``nbr_pos`` plus the metric-specific search structure (the
ring distance matrix for ring-metric networks, the augmented key arrays
for XOR-metric ones) — and optionally a
:class:`~repro.perf.latency.LatencyTable` (position-aligned router indices
plus the float32 all-pairs matrix, either inline or referencing a separate
matrix arena shared across grid points) and a per-node top-level-domain
code array (so workers can compute ``route.crossings`` without a
:class:`~repro.core.hierarchy.Hierarchy`).  Index dtypes are whatever the
compiled network minimized them to (int32 below 2**31 nodes/edges).

Lifecycle.  The creating process owns the segment: ``close``/``unlink``
happen in :meth:`Arena.dispose` (idempotent), in a ``weakref.finalize``
when the owner is garbage collected, and — because the finalizer is
pid-guarded — *never* in a forked worker that merely inherited the object.
Workers attach by name (cached per process, unregistered from the
``resource_tracker`` so the parent's explicit cleanup is the single owner
of the name); forked children of the creator skip the attach entirely and
reuse the inherited mapping.  ``unlink`` runs before ``close`` so the name
disappears even while numpy views are still alive (the memory itself is
reclaimed when the last mapping dies), which is what the leak tests
assert: after a grid run — including one where a worker raised mid-grid —
attaching any of the run's names fails.

Observability: the ``arena.bytes`` gauge tracks the bytes of live arenas
owned by this process; ``arena.creates``/``arena.attaches`` count
lifecycle events; an exported latency matrix refreshes the
``topology.latency_matrix_bytes`` gauge.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = [
    "Arena",
    "ArenaManifest",
    "NetworkView",
    "attach",
    "attach_network",
    "current_manifest",
    "default_enabled",
    "export_latency_matrix",
    "export_network",
    "live_arena_bytes",
    "publish",
    "set_default_arena",
    "top_domain_codes",
    "unpublish",
]

#: Byte alignment of every array within a segment (cache-line friendly).
_ALIGN = 64


@dataclass(frozen=True)
class ArenaManifest:
    """Typed description of one shared-memory segment (small, picklable).

    ``fields`` maps each array to ``(name, dtype string, shape, byte
    offset)`` within the segment; ``meta`` carries small scalars (metric,
    bits, latency host_ms, per-point extras such as a captured RNG state).
    """

    name: str
    nbytes: int
    fields: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    meta: Dict[str, Any] = field(default_factory=dict)


# ------------------------------------------------------------ process state

#: Live owner arenas by segment name (weakrefs: must not keep them alive).
_OWNED: Dict[str, "weakref.ref[Arena]"] = {}
#: Attached segments by name (this process is not the owner).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
#: Memoized network views by segment name.
_VIEWS: Dict[str, "NetworkView"] = {}
#: Bytes of live arenas owned by this process (the ``arena.bytes`` gauge).
_live_bytes = 0

#: Manifests published for the current grid (inherited by forked workers).
_published: Optional[Mapping[Any, ArenaManifest]] = None

_default_arena = False


def set_default_arena(enabled: bool) -> None:
    """Process-wide default for arena-backed grids (the CLI ``--arena``)."""
    global _default_arena
    _default_arena = bool(enabled)


def default_enabled() -> bool:
    """Whether arena-backed grids are the process default."""
    return _default_arena


def live_arena_bytes() -> int:
    """Total bytes of shared segments this process currently owns."""
    return _live_bytes


def _set_gauge() -> None:
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.gauge("arena.bytes").set(float(_live_bytes))


def _count(name: str) -> None:
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter(name).inc()


# ------------------------------------------------------------- publication


def publish(manifests: Mapping[Any, ArenaManifest]) -> object:
    """Install grid manifests for workers; returns a token for unpublish.

    Called by :func:`repro.perf.executor.map_points` *before* forking, so
    workers inherit the mapping and resolve their point's manifest with
    :func:`current_manifest` — no network ever crosses the pipe.
    """
    global _published
    token = _published
    _published = dict(manifests)
    return token


def unpublish(token: object) -> None:
    """Restore the previously published manifests (or none)."""
    global _published
    _published = token


def current_manifest(key: Any) -> ArenaManifest:
    """The published manifest for a grid key (clear error when absent)."""
    if _published is None:
        raise LookupError("no arena manifests are published in this process")
    try:
        return _published[key]
    except KeyError:
        raise LookupError(f"no arena manifest published for grid key {key!r}")


# ------------------------------------------------------------------- arenas


def _layout(
    arrays: Mapping[str, np.ndarray]
) -> Tuple[Tuple[Tuple[str, str, Tuple[int, ...], int], ...], int]:
    fields = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        fields.append((name, arr.dtype.str, tuple(arr.shape), offset))
        offset += arr.nbytes
    return tuple(fields), max(offset, 1)


def _map_fields(
    buf, fields: Tuple[Tuple[str, str, Tuple[int, ...], int], ...], writable: bool
) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for name, dtype, shape, offset in fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        view.flags.writeable = writable
        out[name] = view
    return out


def _purge(name: str) -> None:
    _OWNED.pop(name, None)
    _VIEWS.pop(name, None)
    shm = _ATTACHED.pop(name, None)
    if shm is not None:
        try:
            shm.close()
        except BufferError:  # numpy views still alive; mapping dies with them
            pass


def _cleanup(shm: shared_memory.SharedMemory, owner_pid: int, nbytes: int, name: str) -> None:
    """Owner-side teardown: unlink the name, then close if possible.

    Runs from :meth:`Arena.dispose`, the GC finalizer, or interpreter
    shutdown — but only in the creating process: forked workers inherit
    the object (and this finalizer) and must never unlink the parent's
    segment, so any other pid returns immediately.  ``unlink`` precedes
    ``close`` because closing fails with :class:`BufferError` while numpy
    views are exported; the name must disappear regardless.
    """
    if os.getpid() != owner_pid:
        return
    global _live_bytes
    _purge(name)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        pass
    _live_bytes -= nbytes
    _set_gauge()


class Arena:
    """One owned shared-memory segment holding named numpy arrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: ArenaManifest,
        owner_pid: int,
    ) -> None:
        self.shm = shm
        self.manifest = manifest
        self.owner_pid = owner_pid
        self._finalizer = weakref.finalize(
            self, _cleanup, shm, owner_pid, manifest.nbytes, manifest.name
        )

    @classmethod
    def create(
        cls,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Dict[str, Any]] = None,
        label: str = "arena",
    ) -> "Arena":
        """Copy ``arrays`` into a fresh named segment; returns its owner."""
        global _live_bytes
        fields, nbytes = _layout(arrays)
        name = f"repro-{label}-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        manifest = ArenaManifest(
            name=shm.name, nbytes=nbytes, fields=fields, meta=dict(meta or {})
        )
        views = _map_fields(shm.buf, fields, writable=True)
        for field_name, arr in arrays.items():
            np.copyto(views[field_name], np.ascontiguousarray(arr), casting="no")
            views[field_name].flags.writeable = False
        arena = cls(shm, manifest, os.getpid())
        _OWNED[shm.name] = weakref.ref(arena)
        _live_bytes += nbytes
        _set_gauge()
        _count("arena.creates")
        return arena

    @property
    def nbytes(self) -> int:
        return self.manifest.nbytes

    @property
    def disposed(self) -> bool:
        return not self._finalizer.alive

    def arrays(self) -> Dict[str, np.ndarray]:
        """Read-only views of every field over the owned buffer."""
        if self.disposed:
            raise ValueError(f"arena {self.manifest.name} is disposed")
        return _map_fields(self.shm.buf, self.manifest.fields, writable=False)

    def dispose(self) -> None:
        """Unlink the segment (idempotent; also the GC/exit behavior)."""
        self._finalizer()

    def __enter__(self) -> "Arena":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach by name, leaving the owner as the name's sole unlinker.

    Python < 3.13 registers *attachers* with the ``resource_tracker`` too,
    which would have the tracker try (and warn about) a second unlink at
    shutdown; unregistering right after attach restores single ownership.
    """
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)  # py3.13+
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return shm


def attach(manifest: ArenaManifest) -> Dict[str, np.ndarray]:
    """Read-only array views of a segment described by ``manifest``.

    The owner (or a forked child of it) reuses the existing mapping; other
    processes attach by name, cached per process.
    """
    ref = _OWNED.get(manifest.name)
    owner = ref() if ref is not None else None
    if owner is not None and not owner.disposed:
        return _map_fields(owner.shm.buf, manifest.fields, writable=False)
    shm = _ATTACHED.get(manifest.name)
    if shm is None:
        shm = _attach_segment(manifest.name)
        _ATTACHED[manifest.name] = shm
        _count("arena.attaches")
    return _map_fields(shm.buf, manifest.fields, writable=False)


# -------------------------------------------------------- network packaging

#: CompiledNetwork fields shared by both metrics.
_CSR_FIELDS = ("ids", "indptr", "neighbors", "nbr_pos")


def top_domain_codes(hierarchy, ids: np.ndarray) -> np.ndarray:
    """Per-position top-level-domain codes (-1 for root-placed nodes).

    Two nodes share a code iff their ``path_of(...)[:1]`` prefixes are
    equal, which is exactly what
    :meth:`~repro.core.routing.Route.domain_crossings` compares at level 1
    — so workers can count crossings from this array alone.
    """
    table: Dict[str, int] = {}
    codes = np.empty(len(ids), dtype=np.int32)
    for i, node in enumerate(np.asarray(ids).tolist()):
        path = hierarchy.path_of(node)
        codes[i] = table.setdefault(path[0], len(table)) if path else -1
    return codes


def export_latency_matrix(table, label: str = "latmat") -> Arena:
    """Share a latency table's all-pairs router matrix as its own arena.

    The matrix is identical across every grid point of a run, so exporting
    it once and referencing it from each per-network manifest (the
    ``matrix_arena`` argument of :func:`export_network`) keeps its bytes
    single-copy no matter how many networks ride on it.
    """
    arena = Arena.create({"matrix": table.matrix}, meta={"kind": "latency-matrix"}, label=label)
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.gauge("topology.latency_matrix_bytes").set(float(table.matrix.nbytes))
    return arena


def export_network(
    compiled,
    latency=None,
    matrix_arena: Optional[Arena] = None,
    top_domain: Optional[np.ndarray] = None,
    extras: Optional[Dict[str, Any]] = None,
    label: str = "net",
) -> Arena:
    """Pack a compiled network (and friends) into one owned arena.

    ``latency`` (a :class:`~repro.perf.latency.LatencyTable`) adds the
    position-aligned router indices; its matrix goes inline unless
    ``matrix_arena`` (from :func:`export_latency_matrix`) supplies a
    shared segment to reference instead.  ``top_domain`` adds the per-node
    code array from :func:`top_domain_codes`; ``extras`` lands in
    ``manifest.meta["extras"]`` (small picklable values only — e.g. a
    captured ``rng.getstate()``).
    """
    arrays: Dict[str, np.ndarray] = {name: getattr(compiled, name) for name in _CSR_FIELDS}
    meta: Dict[str, Any] = {
        "kind": "network",
        "metric": compiled.metric,
        "bits": compiled.bits,
        "n": compiled.n,
    }
    if compiled.metric == "ring":
        dist2d, posflat, ids_small = compiled._ring_matrix()
        arrays["ring_dist2d"] = dist2d
        arrays["ring_posflat"] = posflat
        arrays["ring_ids_small"] = ids_small
        meta["ring_width"] = int(dist2d.shape[1])
    else:
        arrays["aug"] = compiled.aug
        arrays["cand_ids"] = compiled.cand_ids
        arrays["cand_aug"] = compiled.cand_aug
    if top_domain is not None:
        arrays["top_domain"] = np.asarray(top_domain, dtype=np.int32)
    if latency is not None:
        arrays["lat_routers"] = latency.aligned_routers(compiled.ids)
        meta["latency"] = {"host_ms": latency.host_ms}
        if matrix_arena is not None:
            meta["latency"]["matrix_manifest"] = matrix_arena.manifest
        else:
            arrays["lat_matrix"] = latency.matrix
    if extras:
        meta["extras"] = dict(extras)
    return Arena.create(arrays, meta=meta, label=label)


@dataclass
class NetworkView:
    """A worker's zero-copy handle on an exported network."""

    compiled: Any  # CompiledNetwork over shared views
    latency: Optional[Any]  # LatencyTable over shared views, when exported
    top_domain: Optional[np.ndarray]
    meta: Dict[str, Any]


def attach_network(manifest: ArenaManifest) -> NetworkView:
    """Rehydrate a :class:`NetworkView` from an exported network's manifest.

    Views are memoized per segment name, so a worker that processes
    several grid points against one network attaches (and rebuilds the
    :class:`~repro.perf.kernels.CompiledNetwork` wrapper) once.
    """
    cached = _VIEWS.get(manifest.name)
    if cached is not None:
        return cached
    from .kernels import CompiledNetwork
    from .latency import LatencyTable

    arrays = attach(manifest)
    meta = manifest.meta
    ring_tables = None
    aug = cand_ids = cand_aug = None
    if "ring_dist2d" in arrays:
        ring_tables = (
            arrays["ring_dist2d"],
            arrays["ring_posflat"],
            arrays["ring_ids_small"],
        )
    if "aug" in arrays:
        aug, cand_ids, cand_aug = arrays["aug"], arrays["cand_ids"], arrays["cand_aug"]
    compiled = CompiledNetwork.from_arrays(
        metric=meta["metric"],
        bits=meta["bits"],
        ids=arrays["ids"],
        indptr=arrays["indptr"],
        neighbors=arrays["neighbors"],
        nbr_pos=arrays["nbr_pos"],
        aug=aug,
        cand_ids=cand_ids,
        cand_aug=cand_aug,
        ring_tables=ring_tables,
    )
    latency = None
    lat_meta = meta.get("latency")
    if lat_meta is not None:
        matrix_manifest = lat_meta.get("matrix_manifest")
        matrix = (
            attach(matrix_manifest)["matrix"]
            if matrix_manifest is not None
            else arrays["lat_matrix"]
        )
        latency = LatencyTable(
            compiled.ids, arrays["lat_routers"], matrix, host_ms=lat_meta["host_ms"]
        )
        # Pre-seed the per-batch alignment cache: routers are stored
        # position-aligned with the compiled ids already.
        latency._align_cache[id(compiled.ids)] = (compiled.ids, arrays["lat_routers"])
    view = NetworkView(
        compiled=compiled,
        latency=latency,
        top_domain=arrays.get("top_domain"),
        meta=meta,
    )
    _VIEWS[manifest.name] = view
    return view
