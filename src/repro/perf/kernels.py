"""Vectorized batch routing kernels over a CSR link-table layout.

:func:`compile_network` flattens a built :class:`~repro.core.network.DHTNetwork`
into numpy arrays — sorted node ids, a flat neighbor array, per-node offsets
into it (CSR style), and the index of every neighbor back into the id array
— plus two per-metric search structures that turn the greedy step of each
scalar engine into a handful of vector ops over the whole active batch:

- ring metric: a per-node matrix of clockwise neighbor distances, sorted
  ascending and right-aligned with zero padding (column 0 is a permanent
  zero pointing back at the node).  The non-overshooting clockwise
  candidate of :func:`repro.core.routing._best_ring_step` is simply the
  rightmost column ``<= remaining``, found with one ``argmax`` per hop;
  "no valid step" falls out as a zero-distance self-step, so the loop has
  no wrap, empty-list or validity fixups at all.
- XOR metric: one *augmented* key array that is globally strictly
  increasing, built as ``(node_index << (bits + 1)) | (neighbor + 1)``
  with two sentinel entries per node (a low key mapping to the node's
  *last* neighbor, a high key to its *first*).  One ``np.searchsorted``
  then yields the successor/predecessor pair bracketing the destination —
  the two candidates of :func:`repro.core.routing._best_xor_step` — with
  the wrapped cases correct by construction.

Both hot paths cost a few vector ops per hop over only the still-active
routes, which is what makes the kernels an order of magnitude faster than
the scalar engines (see ``BENCH_routing.json``).

Routing proceeds frontier-at-a-time: each iteration advances every
still-active route by one hop, and finished routes are compacted out.
Under an ``alive`` filter the binary-search shortcut no longer applies (the
scalar engines scan), so the kernels expand the active frontier's neighbor
lists flat and reduce per segment with ``np.maximum.reduceat`` /
``np.minimum.reduceat`` — still one vectorized pass per hop.

Every branch replicates the corresponding scalar branch exactly, so batch
results are hop-for-hop identical to :func:`~repro.core.routing.route_ring`
and :func:`~repro.core.routing.route_xor` (property-tested across all ten
DHT families in ``tests/test_perf_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.network import DHTNetwork
from ..core.routing import MAX_HOPS, Route, _sorted_live
from ..obs import metrics as obs_metrics
from ..obs.profile import PROFILER

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from .latency import LatencyTable

__all__ = [
    "BatchResult",
    "CompiledNetwork",
    "InFlightFrontier",
    "batch_route",
    "batch_route_ring",
    "batch_route_xor",
    "compile_network",
]

_U64 = np.uint64
_ZERO = np.uint64(0)
_ONE = np.uint64(1)
#: Sentinel larger than any XOR distance (id spaces are capped below 64 bits
#: by the compile guard, so real distances never reach it).
_FAR = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class BatchResult:
    """Outcome of one batch routing call, aligned index-for-index.

    ``terminals`` holds the node each route stopped at; ``success`` mirrors
    the scalar engines' success flag (so *delivery* of a lookup for key ``k``
    is ``success & (terminals == k)``, same as the sampling harness checks).
    ``paths`` is only populated when requested — hop counting alone never
    materializes paths.  ``latency_ms`` is populated when the route call
    was given a :class:`~repro.perf.latency.LatencyTable`: per-route
    overlay latency in ms, accumulated per hop in hop order (float64 left
    fold), bit-identical to the scalar
    :meth:`~repro.core.routing.Route.latency` total — without ever
    materializing paths.
    """

    sources: np.ndarray
    dest_keys: np.ndarray
    hops: np.ndarray
    terminals: np.ndarray
    success: np.ndarray
    paths: Optional[List[List[int]]] = None
    latency_ms: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return int(self.sources.size)

    @property
    def delivered(self) -> int:
        """Routes that succeeded *and* terminated on their destination key."""
        return int(np.count_nonzero(self.success & (self.terminals == self.dest_keys)))

    def routes(self) -> Iterator[Route]:
        """Reconstruct scalar :class:`Route` objects (requires ``paths=True``)."""
        if self.paths is None:
            raise ValueError("paths were not collected; route with paths=True")
        for path, ok, dest in zip(self.paths, self.success, self.dest_keys):
            yield Route(path, bool(ok), int(dest))


@dataclass
class InFlightFrontier:
    """Resumable in-flight lookup state for frontier-at-a-time serving.

    One row per lookup; the serving runtime (and any other caller that
    needs to interleave policy between hops) advances all not-yet-done
    rows exactly one greedy hop per :meth:`CompiledNetwork.step_frontier`
    call.  Stepping a frontier to quiescence produces hops, terminals,
    success flags and per-route latency identical to a single
    :meth:`CompiledNetwork.route` call over the same pairs — the batch
    loops and this struct share the per-hop primitives, only the loop
    ownership differs.

    ``cur`` holds node *ids* (not compiled positions), so the state
    survives recompilation of the network view between steps: under churn
    a caller can rebuild the CSR snapshot each tick and keep stepping the
    same frontier.
    """

    cur: np.ndarray  # uint64 current node id per lookup
    dest: np.ndarray  # uint64 destination key per lookup
    hops: np.ndarray  # int64 hops taken so far
    done: np.ndarray  # bool: a terminal decision was reached
    success: np.ndarray  # bool: the scalar engines' verdict (valid where done)
    latency_ms: np.ndarray  # float64 strict left fold of per-hop ms

    @property
    def size(self) -> int:
        return int(self.cur.size)

    @property
    def active(self) -> int:
        return int(np.count_nonzero(~self.done))


class CompiledNetwork:
    """A built network's link tables in CSR-style numpy form (read-only)."""

    def __init__(self, network: DHTNetwork) -> None:
        network.require_built()
        bits = network.space.bits
        ids = network.node_ids  # sorted ascending by construction
        n = len(ids)
        if n == 0:
            raise ValueError("cannot compile an empty network")
        if bits + 1 + max(n - 1, 1).bit_length() > 64:
            raise ValueError(
                f"augmented keys need {bits} + 1 id bits + "
                f"{max(n - 1, 1).bit_length()} index bits > 64"
            )
        self.network = network
        self.metric = network.metric
        self.bits = bits
        self.n = n
        self.ids = np.asarray(ids, dtype=_U64)
        counts = np.fromiter(
            (len(network.links[node]) for node in ids), dtype=np.int64, count=n
        )
        # Index arrays drop to int32 whenever the population and edge count
        # fit — half the memory traffic in the hot loops, half the arena
        # bytes — with int64 kept as the >= 2**31 escape hatch.
        idx_dt = np.int32 if n < 2**31 and int(counts.sum()) < 2**31 else np.int64
        self.indptr = np.zeros(n + 1, dtype=idx_dt)
        np.cumsum(counts, out=self.indptr[1:])
        flat: List[int] = []
        for node in ids:
            flat.extend(network.links[node])
        self.neighbors = np.asarray(flat, dtype=_U64)
        # One extra key bit so per-node sentinels can sort strictly below
        # (key 0 -> last neighbor) and above (key mask+2 -> first neighbor)
        # every real entry (neighbor + 1).
        self.shift = np.uint64(bits + 1)
        self.mask = np.uint64((1 << bits) - 1)
        if self.neighbors.size:
            pos = np.searchsorted(self.ids, self.neighbors)
            pos = np.minimum(pos, n - 1)
            if np.any(self.ids[pos] != self.neighbors):
                raise ValueError("link table references ids outside the network")
            self.nbr_pos = pos.astype(idx_dt)
        else:
            self.nbr_pos = np.zeros(0, dtype=idx_dt)
        self._aug_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._ring_tables: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def _build_augmented(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build the sentinel-padded augmented search arrays (lazy).

        Per node, in key order: a low sentinel mapping to the node's last
        neighbor (the wrapped clockwise / predecessor candidate), one entry
        per neighbor at key ``neighbor + 1``, and a high sentinel mapping to
        its first neighbor (the wrapped successor candidate).  ``aug`` is
        globally strictly increasing; ``cand_ids``/``cand_aug`` give each
        entry's candidate neighbor id and that candidate's own augmented
        prefix (``position << shift``), which is exactly the state the
        routing loops carry forward.  Nodes without neighbors get sentinels
        pointing at themselves — distance zero, never a valid step.

        Built on first use of :attr:`aug`/:attr:`cand_ids`/:attr:`cand_aug`
        (the XOR fast path), so ring-metric networks never pay the
        ``E + 2n`` allocations at all.
        """
        counts = np.diff(self.indptr).astype(np.int64)
        n, E = self.n, int(self.neighbors.size)
        idx = np.arange(n, dtype=_U64)
        prefixes = idx << self.shift
        aug = np.empty(E + 2 * n, dtype=_U64)
        cand_ids = np.empty(E + 2 * n, dtype=_U64)
        cand_pos = np.empty(E + 2 * n, dtype=np.int64)
        offsets = 2 * np.arange(n, dtype=np.int64)
        lead = self.indptr[:-1] + offsets
        trail = self.indptr[1:] + offsets + 1
        aug[lead] = prefixes
        aug[trail] = prefixes | np.uint64(int(self.mask) + 2)
        has = counts > 0
        first = np.where(has, self.indptr[:-1], 0)
        last = np.where(has, self.indptr[1:] - 1, 0)
        if E:
            seg = np.repeat(idx, counts)
            real = np.arange(E, dtype=np.int64) + 2 * np.repeat(
                np.arange(n, dtype=np.int64), counts
            ) + 1
            aug[real] = (seg << self.shift) | (self.neighbors + _ONE)
            cand_ids[real] = self.neighbors
            cand_pos[real] = self.nbr_pos
            cand_ids[lead] = np.where(has, self.neighbors[last], self.ids)
            cand_pos[lead] = np.where(has, self.nbr_pos[last], np.arange(n))
            cand_ids[trail] = np.where(has, self.neighbors[first], self.ids)
            cand_pos[trail] = np.where(has, self.nbr_pos[first], np.arange(n))
        else:
            cand_ids[lead] = cand_ids[trail] = self.ids
            cand_pos[lead] = cand_pos[trail] = np.arange(n)
        cand_aug = cand_pos.astype(_U64) << self.shift
        return aug, cand_ids, cand_aug

    @property
    def aug(self) -> np.ndarray:
        """Globally increasing augmented key array (built on first use)."""
        if self._aug_cache is None:
            self._aug_cache = self._build_augmented()
        return self._aug_cache[0]

    @property
    def cand_ids(self) -> np.ndarray:
        """Candidate neighbor id per augmented entry (built on first use)."""
        if self._aug_cache is None:
            self._aug_cache = self._build_augmented()
        return self._aug_cache[1]

    @property
    def cand_aug(self) -> np.ndarray:
        """Candidate augmented prefix per entry (built on first use)."""
        if self._aug_cache is None:
            self._aug_cache = self._build_augmented()
        return self._aug_cache[2]

    def _ring_matrix(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-node clockwise distances as a padded sorted matrix (lazy).

        Row ``i`` holds node ``i``'s neighbor distances sorted *descending*
        and left-aligned; the trailing padding slots (at least one per row)
        are zero, with their position entries pointing at the node itself.
        The greedy ring step then needs no validity or wrap handling at
        all: the first column ``<= remaining`` — one ``argmax`` per hop,
        guaranteed to exist by the trailing zero — is the best
        non-overshooting neighbor, and when no neighbor qualifies it is a
        zero-distance self-step, which doubles as the finished/stuck
        signal.

        Returns ``(dist2d, posflat, ids_small)`` where the distance dtype
        is ``uint32`` when the id space fits (half the memory traffic of
        the hot loop) and ``uint64`` otherwise, and ``posflat`` is the
        row-major flattened position matrix — ``int32`` below 2**31 nodes
        (the largest ring table by far; position values always fit), with
        the hot-loop position buffers following its dtype.
        """
        if self._ring_tables is not None:
            return self._ring_tables
        n, E = self.n, int(self.neighbors.size)
        dt = np.uint32 if self.bits <= 32 else _U64
        pos_dt = np.int32 if n < 2**31 else np.intp
        counts = np.diff(self.indptr).astype(np.int64)
        width = int(counts.max()) + 1 if E else 1
        dist2d = np.zeros((n, width), dtype=dt)
        pos2d = np.repeat(np.arange(n, dtype=pos_dt)[:, None], width, axis=1)
        if E:
            seg = np.repeat(np.arange(n, dtype=_U64), counts)
            dists = (self.neighbors - self.ids[seg.astype(np.int64)]) & self.mask
            order = np.argsort((seg << self.shift) | dists, kind="stable")
            # The sorted layout keeps CSR segment boundaries, so target
            # slots enumerate each segment right-to-left from its last
            # column; only the values are permuted by ``order``.
            rows = seg.astype(np.int64)
            rank = np.arange(E, dtype=np.int64) - np.repeat(self.indptr[:-1], counts)
            cols = np.repeat(counts, counts) - 1 - rank
            dist2d[rows, cols] = dists[order].astype(dt)
            pos2d[rows, cols] = self.nbr_pos[order]
        ids_small = self.ids.astype(dt)
        self._ring_tables = (dist2d, pos2d.ravel(), ids_small)
        return self._ring_tables

    # ------------------------------------------------------ arenas / arrays

    @classmethod
    def from_arrays(
        cls,
        *,
        metric: str,
        bits: int,
        ids: np.ndarray,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        nbr_pos: np.ndarray,
        network: Optional[DHTNetwork] = None,
        aug: Optional[np.ndarray] = None,
        cand_ids: Optional[np.ndarray] = None,
        cand_aug: Optional[np.ndarray] = None,
        ring_tables: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> "CompiledNetwork":
        """Wrap pre-built CSR arrays without touching a Python link table.

        This is how shared-memory attachment (:mod:`repro.perf.arena`), the
        ``.npz`` cache sidecar and the streaming builder produce a usable
        compiled network: the arrays are adopted as-is (zero-copy — they
        may be read-only views over a shared segment), the metric search
        structures are taken when given and built lazily otherwise, and
        ``network`` stays ``None`` unless the caller has one.
        """
        self = cls.__new__(cls)
        self.network = network
        self.metric = metric
        self.bits = int(bits)
        self.n = int(ids.shape[0])
        if self.n == 0:
            raise ValueError("cannot compile an empty network")
        self.ids = ids
        self.indptr = indptr
        self.neighbors = neighbors
        self.nbr_pos = nbr_pos
        self.shift = np.uint64(self.bits + 1)
        self.mask = np.uint64((1 << self.bits) - 1)
        self._aug_cache = (
            (aug, cand_ids, cand_aug) if aug is not None else None
        )
        self._ring_tables = tuple(ring_tables) if ring_tables is not None else None
        return self

    def to_arena(
        self,
        latency: Optional["LatencyTable"] = None,
        matrix_arena=None,
        top_domain: Optional[np.ndarray] = None,
        extras=None,
        label: str = "net",
    ):
        """Export this compiled network into one shared-memory arena.

        Returns the owning :class:`repro.perf.arena.Arena`; its picklable
        ``manifest`` is what grid workers rehydrate with :meth:`from_arena`.
        See :func:`repro.perf.arena.export_network` for the options.
        """
        from . import arena as perf_arena

        return perf_arena.export_network(
            self,
            latency=latency,
            matrix_arena=matrix_arena,
            top_domain=top_domain,
            extras=extras,
            label=label,
        )

    @classmethod
    def from_arena(cls, manifest) -> "CompiledNetwork":
        """Attach (zero-copy, read-only) to an exported network by manifest."""
        from . import arena as perf_arena

        return perf_arena.attach_network(manifest).compiled

    # ------------------------------------------------------------- plumbing

    def _positions(self, values: np.ndarray) -> np.ndarray:
        """Index of each value in ``ids`` (raises on unknown node ids)."""
        pos = np.searchsorted(self.ids, values)
        pos = np.minimum(pos, self.n - 1)
        bad = self.ids[pos] != values
        if np.any(bad):
            raise KeyError(f"node {int(values[bad][0])} not in network")
        return pos.astype(np.int64)

    def _alive_array(self, alive: Optional[Set[int]]) -> Optional[np.ndarray]:
        if alive is None:
            return None
        return np.asarray(_sorted_live(alive), dtype=_U64)

    def _flat_frontier(
        self, c: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat-expand the neighbor lists of the frontier nodes ``c``.

        Returns ``(nz, seg_starts, flat, cnz)`` where ``nz`` indexes the
        frontier rows that have neighbors at all, ``flat`` indexes
        ``self.neighbors`` for every candidate, and ``seg_starts`` marks the
        per-row segment boundaries within ``flat`` (for ``reduceat``).
        """
        start = self.indptr[c]
        counts = self.indptr[c + 1] - start
        nz = np.nonzero(counts > 0)[0]
        cnz = counts[nz]
        seg_starts = np.zeros(nz.size, dtype=np.int64)
        if nz.size > 1:
            np.cumsum(cnz[:-1], out=seg_starts[1:])
        total = int(cnz.sum())
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(seg_starts, cnz)
            + np.repeat(start[nz], cnz)
        )
        return nz, seg_starts, flat, cnz

    def _latency_state(
        self, latency: Optional["LatencyTable"]
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.float64]]:
        """``(router-per-position, matrix, 2*host_ms)`` for per-hop gathers.

        ``aligned_routers`` maps every compiled position straight to its
        router index, so each hop's latency is two int gathers plus one
        float gather — no per-hop id lookups, no Python-level calls.
        """
        if latency is None:
            return None
        return (
            latency.aligned_routers(self.ids),
            latency.matrix,
            latency.hop2_ms,
        )

    # ------------------------------------------------------- terminal checks

    def _responsible(
        self, cur_ids: np.ndarray, keys: np.ndarray, alive_arr: Optional[np.ndarray]
    ) -> np.ndarray:
        """Vectorized ``_is_responsible``: cyclic predecessor-or-equal match."""
        ref = self.ids if alive_arr is None else alive_arr
        if ref.size == 0:
            return np.zeros(cur_ids.shape, dtype=bool)
        pos = np.searchsorted(ref, keys, side="right").astype(np.int64) - 1
        pos = np.where(pos < 0, ref.size - 1, pos)
        return ref[pos] == cur_ids

    def _xor_closest(
        self, cur_ids: np.ndarray, keys: np.ndarray, alive_arr: Optional[np.ndarray]
    ) -> np.ndarray:
        """Vectorized ``_is_xor_closest``: nearest is adjacent to the key."""
        ref = self.ids if alive_arr is None else alive_arr
        if ref.size == 0:
            return np.zeros(cur_ids.shape, dtype=bool)
        pos = np.searchsorted(ref, keys, side="left").astype(np.int64)
        succ = ref[pos % ref.size]
        pred = ref[(pos - 1) % ref.size]
        best = np.minimum(succ ^ keys, pred ^ keys)
        return (cur_ids ^ keys) == best

    # ------------------------------------------------------------ ring steps

    def _ring_step_alive(
        self,
        c: np.ndarray,
        cur_ids: np.ndarray,
        remaining: np.ndarray,
        alive_arr: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Filtered ring step: max live non-overshooting progress (scan)."""
        nxt = np.zeros(c.shape, dtype=np.int64)
        ok = np.zeros(c.shape, dtype=bool)
        nz, seg_starts, flat, cnz = self._flat_frontier(c)
        if nz.size == 0:
            return nxt, ok
        cand = self.neighbors[flat]
        dist = (cand - np.repeat(cur_ids[nz], cnz)) & self.mask
        valid = (
            _in_sorted(alive_arr, cand)
            & (dist > _ZERO)
            & (dist <= np.repeat(remaining[nz], cnz))
        )
        score = np.where(valid, dist, _ZERO)
        best = np.maximum.reduceat(score, seg_starts)
        prog = best > _ZERO
        if np.any(prog):
            # Ring distances from one node are distinct, so each progressing
            # segment has exactly one candidate matching its maximum.
            hit = (score == np.repeat(best, cnz)) & np.repeat(prog, cnz)
            rows = nz[np.repeat(np.arange(nz.size), cnz)[hit]]
            nxt[rows] = self.nbr_pos[flat[hit]]
            ok[rows] = True
        return nxt, ok

    # ------------------------------------------------------------- xor steps

    def _xor_step_alive(
        self, c: np.ndarray, d: np.ndarray, cur_dist: np.ndarray, alive_arr: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Filtered XOR step: min live XOR distance if strictly closer."""
        nxt = np.zeros(c.shape, dtype=np.int64)
        ok = np.zeros(c.shape, dtype=bool)
        nz, seg_starts, flat, cnz = self._flat_frontier(c)
        if nz.size == 0:
            return nxt, ok
        cand = self.neighbors[flat]
        dist = cand ^ np.repeat(d[nz], cnz)
        valid = _in_sorted(alive_arr, cand) & (dist < np.repeat(cur_dist[nz], cnz))
        score = np.where(valid, dist, _FAR)
        best = np.minimum.reduceat(score, seg_starts)
        prog = best != _FAR
        if np.any(prog):
            hit = (score == np.repeat(best, cnz)) & np.repeat(prog, cnz)
            rows = nz[np.repeat(np.arange(nz.size), cnz)[hit]]
            nxt[rows] = self.nbr_pos[flat[hit]]
            ok[rows] = True
        return nxt, ok

    # --------------------------------------------------------------- routing

    def route_ring(
        self,
        sources: Sequence[int],
        dest_keys: Sequence[int],
        alive: Optional[Set[int]] = None,
        paths: bool = False,
        latency: Optional["LatencyTable"] = None,
    ) -> BatchResult:
        """Batch greedy clockwise routing, identical to ``route_ring``."""
        src, dest = _as_batch(sources, dest_keys)
        lat_state = self._latency_state(latency)
        if alive is None:
            return self._route_ring_fast(src, dest, paths, lat_state)
        return self._route_ring_alive(
            src, dest, self._alive_array(alive), paths, lat_state
        )

    def _route_ring_fast(
        self,
        src: np.ndarray,
        dest: np.ndarray,
        paths: bool,
        lat_state=None,
    ) -> BatchResult:
        """No-filter ring loop over the padded distance matrix.

        Per hop: gather the active rows of :meth:`_ring_matrix` (distances
        descending), find the first column ``<= remaining`` with one
        ``argmax``, and step to its position.  A self-step (chosen distance
        zero) means finished — at the key or stuck — and is *free*, so the
        loop never compacts per iteration: the frontier keeps its size,
        every per-hop op writes into a preallocated buffer, hop counts are
        just ``hops += moved`` and the loop ends when nothing moved.  Each
        time under half of the routes still move, the survivors are
        compacted (the straggler tail otherwise dominates: max hops runs
        well past the mean).  Success and terminals are
        resolved in one vectorized pass afterwards; only routes stuck short
        of their key (key lookups, never node-to-node traffic) pay a
        responsible-node search then.
        """
        m = src.size
        path_lists = [[int(s)] for s in src] if paths else None
        lat = np.zeros(m, dtype=np.float64) if lat_state is not None else None
        if lat_state is not None:
            lr, lmat, lhop2 = lat_state
        dist2d, posflat, ids_small = self._ring_matrix()
        dt = dist2d.dtype.type
        width = dist2d.shape[1]
        # mask only when the id space doesn't fill the dtype (wrap is free).
        small_mask = None if int(self.mask) == np.iinfo(dt).max else dt(self.mask)
        # Position buffers follow posflat's (possibly int32) dtype: ``take``
        # with ``out=`` requires an exact dtype match, and the smaller
        # buffers halve the gather traffic of the hot loop.
        cur = self._positions(src).astype(posflat.dtype)
        dsm = dest.astype(dt)
        hops = np.zeros(m, dtype=np.int64)
        curid = np.empty(m, dtype=dt)
        rem = np.empty(m, dtype=dt)
        rem2 = rem[:, None]
        rows = np.empty((m, width), dtype=dt)
        le = np.empty((m, width), dtype=bool)
        idx = np.empty(m, dtype=np.intp)
        nxt = np.empty(m, dtype=posflat.dtype)
        moved = np.empty(m, dtype=bool)
        sel: Optional[np.ndarray] = None  # original index of each survivor
        full_cur = full_hops = full_dsm = None
        for _ in range(MAX_HOPS + 1):
            ids_small.take(cur, out=curid)
            np.subtract(dsm, curid, out=rem)
            if small_mask is not None:
                np.bitwise_and(rem, small_mask, out=rem)
            dist2d.take(cur, axis=0, out=rows)
            np.less_equal(rows, rem2, out=le)
            p = le.argmax(axis=1)
            # dtype= forces the flat index math into intp even when ``cur``
            # is int32 (row * width can overflow int32 on huge tables).
            np.multiply(cur, width, out=idx, dtype=np.intp)
            np.add(idx, p, out=idx)
            posflat.take(idx, out=nxt)
            np.not_equal(nxt, cur, out=moved)
            cnt = np.count_nonzero(moved)
            if not cnt:
                break
            np.add(hops, moved, out=hops)
            cur, nxt = nxt, cur
            if lat is not None:
                # After the swap ``nxt`` holds the previous positions.
                # Accumulating into the full-length ``lat`` per hop (rather
                # than folding at compaction) keeps each route's additions
                # a strict left fold in hop order — bit-identical to the
                # scalar per-hop sum.
                hrows = np.flatnonzero(moved)
                orig = hrows if sel is None else sel[hrows]
                lat[orig] += lhop2 + lmat[
                    lr[nxt[hrows]], lr[cur[hrows]]
                ].astype(np.float64)
            if path_lists is not None:
                for ri in np.flatnonzero(moved).tolist():
                    oi = ri if sel is None else int(sel[ri])
                    path_lists[oi].append(int(self.ids[cur[ri]]))
            if cnt * 2 < cur.size:
                # Tail compaction.  Fresh small arrays for cur/nxt — the
                # old ping-pong buffers still back ``full_cur``, so slicing
                # them would corrupt finished routes' positions.
                survivors = np.flatnonzero(moved)
                if sel is None:
                    full_cur, full_hops, full_dsm = cur, hops, dsm
                    sel = survivors
                else:
                    full_hops[sel] += hops
                    full_cur[sel] = cur
                    sel = sel[survivors]
                k = survivors.size
                cur = cur[survivors]
                dsm = dsm[survivors]
                hops = np.zeros(k, dtype=np.int64)
                curid, rem = curid[:k], rem[:k]
                rem2 = rem[:, None]
                rows, le, idx = rows[:k], le[:k], idx[:k]
                nxt = np.empty(k, dtype=posflat.dtype)
                moved = moved[:k]
        else:
            raise RuntimeError(
                f"routing exceeded {MAX_HOPS} hops: likely a broken network"
            )
        if sel is not None:
            full_hops[sel] += hops
            full_cur[sel] = cur
            cur, hops, dsm = full_cur, full_hops, full_dsm
        terminal = self.ids[cur]
        final_rem = dsm - ids_small.take(cur)
        if small_mask is not None:
            final_rem &= small_mask
        success = final_rem == dt(0)
        stuck = np.flatnonzero(~success)
        if stuck.size:
            rp = (
                np.searchsorted(self.ids, dest[stuck], side="right")
                .astype(np.int64) - 1
            )
            resp = np.where(rp < 0, self.n - 1, rp)
            success[stuck] = cur[stuck] == resp
        return self._result(src, dest, hops, terminal, success, path_lists, lat)

    def _route_ring_alive(
        self,
        src: np.ndarray,
        dest: np.ndarray,
        alive_arr: np.ndarray,
        paths: bool,
        lat_state=None,
    ) -> BatchResult:
        """Filtered ring loop: per-hop segment scan over the frontier."""
        m = src.size
        cur = self._positions(src)
        hops = np.zeros(m, dtype=np.int64)
        success = np.zeros(m, dtype=bool)
        terminal = cur.copy()
        path_lists = [[int(s)] for s in src] if paths else None
        lat = np.zeros(m, dtype=np.float64) if lat_state is not None else None
        if lat_state is not None:
            lr, lmat, lhop2 = lat_state
        active = np.arange(m, dtype=np.int64)
        for _ in range(MAX_HOPS + 1):
            if active.size == 0:
                break
            c = cur[active]
            d = dest[active]
            cur_ids = self.ids[c]
            remaining = (d - cur_ids) & self.mask
            at_dest = remaining == _ZERO
            if np.any(at_dest):
                fin = active[at_dest]
                success[fin] = True
                terminal[fin] = cur[fin]
                active = active[~at_dest]
                c, cur_ids, remaining = c[~at_dest], cur_ids[~at_dest], remaining[~at_dest]
            if active.size == 0:
                break
            nxt, has_step = self._ring_step_alive(c, cur_ids, remaining, alive_arr)
            stuck = active[~has_step]
            if stuck.size:
                success[stuck] = self._responsible(
                    self.ids[cur[stuck]], dest[stuck], alive_arr
                )
                terminal[stuck] = cur[stuck]
            adv = active[has_step]
            if adv.size:
                new_pos = nxt[has_step]
                if lat is not None:
                    lat[adv] += lhop2 + lmat[
                        lr[cur[adv]], lr[new_pos]
                    ].astype(np.float64)
                cur[adv] = new_pos
                hops[adv] += 1
                if path_lists is not None:
                    for ri, nid in zip(adv.tolist(), self.ids[new_pos].tolist()):
                        path_lists[ri].append(nid)
            active = adv
        if active.size:
            raise RuntimeError(
                f"routing exceeded {MAX_HOPS} hops: likely a broken network"
            )
        return self._result(
            src, dest, hops, self.ids[terminal], success, path_lists, lat
        )

    def route_xor(
        self,
        sources: Sequence[int],
        dest_keys: Sequence[int],
        alive: Optional[Set[int]] = None,
        paths: bool = False,
        latency: Optional["LatencyTable"] = None,
    ) -> BatchResult:
        """Batch greedy XOR routing, identical to ``route_xor``."""
        src, dest = _as_batch(sources, dest_keys)
        lat_state = self._latency_state(latency)
        if alive is None:
            return self._route_xor_fast(src, dest, paths, lat_state)
        return self._route_xor_alive(
            src, dest, self._alive_array(alive), paths, lat_state
        )

    def _route_xor_fast(
        self,
        src: np.ndarray,
        dest: np.ndarray,
        paths: bool,
        lat_state=None,
    ) -> BatchResult:
        """No-filter XOR loop: the bracketing pair via one searchsorted.

        ``searchsorted(aug, caug | (d + 1), "left")`` is the first neighbor
        ``>= d`` (or the high sentinel, i.e. the wrapped successor) and the
        entry before it is the predecessor (or the low sentinel, the wrapped
        one) — the exact two candidates the scalar scan reduces to.  The
        predecessor wins only when strictly closer than both the successor
        and the current node, mirroring the scalar scan order.

        Like the ring loop, the hot loop reuses preallocated per-hop
        workspace (``searchsorted`` itself allocates its index result;
        every other op writes into a standing buffer) and keeps finished
        routes in the frontier instead of boolean-filtering eight arrays
        every iteration: a finished route recomputes the same candidate
        pair, fails ``ok`` again, and is masked out of the in-place
        updates.  The straggler tail is compacted away whenever under half
        the batch is still moving, and success resolution (the stuck-route
        closest-node check) runs once over the whole batch at the end
        instead of a per-bit trie descent on every iteration that finishes
        any route.
        """
        m = src.size
        hops = np.zeros(m, dtype=np.int64)
        terminal = src.copy()
        path_lists = [[int(s)] for s in src] if paths else None
        lat = np.zeros(m, dtype=np.float64) if lat_state is not None else None
        if lat_state is not None:
            lr, lmat, lhop2 = lat_state
        caug = self._positions(src).astype(_U64) << self.shift
        cur_dist = src ^ dest
        d = dest
        dq = dest + _ONE
        act = np.ones(m, dtype=bool)
        q = np.empty(m, dtype=_U64)
        c1 = np.empty(m, dtype=_U64)
        c2 = np.empty(m, dtype=_U64)
        d1 = np.empty(m, dtype=_U64)
        d2 = np.empty(m, dtype=_U64)
        pm = np.empty(m, dtype=np.intp)
        pick2 = np.empty(m, dtype=bool)
        ok = np.empty(m, dtype=bool)
        fin = np.empty(m, dtype=bool)
        sel: Optional[np.ndarray] = None  # original index of each survivor
        full_hops = None
        for _ in range(MAX_HOPS + 1):
            np.bitwise_or(caug, dq, out=q)
            p1 = np.searchsorted(self.aug, q, side="left")
            np.subtract(p1, 1, out=pm)
            self.cand_ids.take(p1, out=c1)
            self.cand_ids.take(pm, out=c2)
            np.bitwise_xor(c1, d, out=d1)
            np.bitwise_xor(c2, d, out=d2)
            np.minimum(d1, cur_dist, out=q)
            np.less(d2, q, out=pick2)
            np.less(d1, cur_dist, out=ok)  # a route at its key has cur_dist 0
            np.logical_or(ok, pick2, out=ok)
            np.logical_not(ok, out=fin)
            np.logical_and(fin, act, out=fin)  # newly finished this hop
            if fin.any():
                rows = np.flatnonzero(fin)
                orig = rows if sel is None else sel[rows]
                terminal[orig] = self.ids[
                    (caug[rows] >> self.shift).astype(np.int64)
                ]
                np.logical_and(act, ok, out=act)
            nact = np.count_nonzero(act)
            if nact == 0:
                break
            # Step every still-active route in place; finished rows are
            # masked out of the writes and idle as free no-steps.
            np.copyto(d1, d2, where=pick2)
            np.copyto(cur_dist, d1, where=act)
            np.subtract(p1, pick2, out=p1)  # index of the chosen candidate
            self.cand_aug.take(p1, out=q)
            if lat is not None:
                # ``caug`` still holds the pre-step positions, ``q`` the
                # chosen candidates'; accumulate before the in-place step,
                # in hop order, into the full-length accumulator.
                rows = np.flatnonzero(act)
                orig = rows if sel is None else sel[rows]
                prevp = (caug[rows] >> self.shift).astype(np.int64)
                newp = (q[rows] >> self.shift).astype(np.int64)
                lat[orig] += lhop2 + lmat[lr[prevp], lr[newp]].astype(
                    np.float64
                )
            np.copyto(caug, q, where=act)
            np.add(hops, act, out=hops)
            if path_lists is not None:
                np.copyto(c1, c2, where=pick2)
                step_ids = c1.tolist()
                for ri in np.flatnonzero(act).tolist():
                    oi = ri if sel is None else int(sel[ri])
                    path_lists[oi].append(int(step_ids[ri]))
            if nact * 2 < act.size:
                # Tail compaction, folding local hop counts into the full
                # array exactly as the ring loop does.
                survivors = np.flatnonzero(act)
                if sel is None:
                    full_hops = hops
                    sel = survivors
                else:
                    full_hops[sel] += hops
                    sel = sel[survivors]
                k = survivors.size
                caug = caug[survivors]
                cur_dist = cur_dist[survivors]
                d = d[survivors]
                dq = dq[survivors]
                hops = np.zeros(k, dtype=np.int64)
                act = np.ones(k, dtype=bool)
                q, c1, c2, d1, d2 = q[:k], c1[:k], c2[:k], d1[:k], d2[:k]
                pm, pick2, ok, fin = pm[:k], pick2[:k], ok[:k], fin[:k]
        else:
            raise RuntimeError(
                f"routing exceeded {MAX_HOPS} hops: likely a broken network"
            )
        if sel is not None:
            full_hops[sel] += hops
            hops = full_hops
        success = (terminal ^ dest) == _ZERO
        stuck = np.flatnonzero(~success)
        if stuck.size:
            success[stuck] = self._xor_closest(terminal[stuck], dest[stuck], None)
        return self._result(src, dest, hops, terminal, success, path_lists, lat)

    def _route_xor_alive(
        self,
        src: np.ndarray,
        dest: np.ndarray,
        alive_arr: np.ndarray,
        paths: bool,
        lat_state=None,
    ) -> BatchResult:
        """Filtered XOR loop: per-hop segment scan over the frontier."""
        m = src.size
        cur = self._positions(src)
        hops = np.zeros(m, dtype=np.int64)
        success = np.zeros(m, dtype=bool)
        terminal = cur.copy()
        path_lists = [[int(s)] for s in src] if paths else None
        lat = np.zeros(m, dtype=np.float64) if lat_state is not None else None
        if lat_state is not None:
            lr, lmat, lhop2 = lat_state
        active = np.arange(m, dtype=np.int64)
        for _ in range(MAX_HOPS + 1):
            if active.size == 0:
                break
            c = cur[active]
            d = dest[active]
            cur_dist = self.ids[c] ^ d
            at_dest = cur_dist == _ZERO
            if np.any(at_dest):
                fin = active[at_dest]
                success[fin] = True
                terminal[fin] = cur[fin]
                active = active[~at_dest]
                c, d, cur_dist = c[~at_dest], d[~at_dest], cur_dist[~at_dest]
            if active.size == 0:
                break
            nxt, has_step = self._xor_step_alive(c, d, cur_dist, alive_arr)
            stuck = active[~has_step]
            if stuck.size:
                success[stuck] = self._xor_closest(
                    self.ids[cur[stuck]], dest[stuck], alive_arr
                )
                terminal[stuck] = cur[stuck]
            adv = active[has_step]
            if adv.size:
                new_pos = nxt[has_step]
                if lat is not None:
                    lat[adv] += lhop2 + lmat[
                        lr[cur[adv]], lr[new_pos]
                    ].astype(np.float64)
                cur[adv] = new_pos
                hops[adv] += 1
                if path_lists is not None:
                    for ri, nid in zip(adv.tolist(), self.ids[new_pos].tolist()):
                        path_lists[ri].append(nid)
            active = adv
        if active.size:
            raise RuntimeError(
                f"routing exceeded {MAX_HOPS} hops: likely a broken network"
            )
        return self._result(
            src, dest, hops, self.ids[terminal], success, path_lists, lat
        )

    def route(
        self,
        sources: Sequence[int],
        dest_keys: Sequence[int],
        alive: Optional[Set[int]] = None,
        paths: bool = False,
        latency: Optional["LatencyTable"] = None,
    ) -> BatchResult:
        """Route with the engine matching the network's declared metric."""
        if self.metric == "ring":
            return self.route_ring(
                sources, dest_keys, alive=alive, paths=paths, latency=latency
            )
        if self.metric == "xor":
            return self.route_xor(
                sources, dest_keys, alive=alive, paths=paths, latency=latency
            )
        raise ValueError(f"unknown metric {self.metric!r}")

    # ------------------------------------------------- frontier stepping

    def begin_frontier(
        self, sources: Sequence[int], dest_keys: Sequence[int]
    ) -> InFlightFrontier:
        """Fresh in-flight state for ``(source, key)`` pairs (no hops yet)."""
        src, dest = _as_batch(sources, dest_keys)
        m = src.size
        return InFlightFrontier(
            cur=src.copy(),
            dest=dest,
            hops=np.zeros(m, dtype=np.int64),
            done=np.zeros(m, dtype=bool),
            success=np.zeros(m, dtype=bool),
            latency_ms=np.zeros(m, dtype=np.float64),
        )

    def frontier_step(
        self,
        cur_ids: np.ndarray,
        dest: np.ndarray,
        alive_arr: Optional[np.ndarray] = None,
        lat_state=None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Advance every lookup exactly one greedy hop (pure, resumable).

        The single-step entry point behind the serving runtime: one call
        is one frontier tick.  Branch-for-branch it replicates one
        iteration of the batch routing loops — same candidate selection,
        same terminal resolution — so repeatedly stepping until nothing
        moves yields outcomes identical to :meth:`route`.

        Returns ``(next_ids, moved, success, hop_ms)`` aligned with the
        inputs.  Where ``moved`` is False the lookup terminated this step
        and ``success`` holds the scalar engines' verdict (at its key, or
        the responsible/closest check for stuck routes); ``next_ids``
        equals ``cur_ids`` there.  ``hop_ms`` is per-hop overlay latency
        (zero on unmoved rows) when ``lat_state`` is given, else ``None``.
        """
        if self.metric == "ring":
            remaining = (dest - cur_ids) & self.mask
            at_dest = remaining == _ZERO
            if alive_arr is None:
                dist2d, posflat, ids_small = self._ring_matrix()
                dt = dist2d.dtype.type
                width = dist2d.shape[1]
                c = self._positions(cur_ids)
                rows = dist2d[c]
                le = rows <= remaining.astype(dt)[:, None]
                p = le.argmax(axis=1)
                idx = c * np.intp(width) + p
                nxtp = posflat[idx].astype(np.int64)
                moved = nxtp != c
            else:
                c = self._positions(cur_ids)
                nxt, ok = self._ring_step_alive(c, cur_ids, remaining, alive_arr)
                nxtp = np.where(ok, nxt, c)
                moved = ok
            stuck = ~moved & ~at_dest
            success = at_dest.copy()
            if np.any(stuck):
                success[stuck] = self._responsible(
                    cur_ids[stuck], dest[stuck], alive_arr
                )
        elif self.metric == "xor":
            cur_dist = cur_ids ^ dest
            at_dest = cur_dist == _ZERO
            c = self._positions(cur_ids)
            if alive_arr is None:
                caug = c.astype(_U64) << self.shift
                p1 = np.searchsorted(self.aug, caug | (dest + _ONE), side="left")
                c1 = self.cand_ids[p1]
                c2 = self.cand_ids[p1 - 1]
                d1 = c1 ^ dest
                d2 = c2 ^ dest
                pick2 = d2 < np.minimum(d1, cur_dist)
                moved = (d1 < cur_dist) | pick2
                chosen = np.subtract(p1, pick2)
                nxtp = np.where(
                    moved, (self.cand_aug[chosen] >> self.shift).astype(np.int64), c
                )
            else:
                nxt, ok = self._xor_step_alive(c, dest, cur_dist, alive_arr)
                nxtp = np.where(ok, nxt, c)
                moved = ok
            stuck = ~moved & ~at_dest
            success = at_dest.copy()
            if np.any(stuck):
                success[stuck] = self._xor_closest(
                    cur_ids[stuck], dest[stuck], alive_arr
                )
        else:
            raise ValueError(f"unknown metric {self.metric!r}")
        next_ids = np.where(moved, self.ids[nxtp], cur_ids)
        hop_ms: Optional[np.ndarray] = None
        if lat_state is not None:
            lr, lmat, lhop2 = lat_state
            hop_ms = np.zeros(cur_ids.shape, dtype=np.float64)
            mv = np.flatnonzero(moved)
            if mv.size:
                hop_ms[mv] = lhop2 + lmat[
                    lr[c[mv]], lr[nxtp[mv]]
                ].astype(np.float64)
        return next_ids, moved, success, hop_ms

    def step_frontier(
        self,
        state: InFlightFrontier,
        alive: Optional[np.ndarray] = None,
        latency: Optional["LatencyTable"] = None,
    ) -> int:
        """One hop for every not-done row of ``state``; returns moved count.

        ``alive`` is a *sorted uint64 id array* (use :meth:`_alive_array`
        or a live view) — the serving runtime holds one per view epoch, so
        this entry point skips the per-call set conversion of
        :meth:`route`.  Latency accumulates into ``state.latency_ms`` one
        addition per hop, preserving the scalar left-fold contract.
        """
        act = np.flatnonzero(~state.done)
        if act.size == 0:
            return 0
        lat_state = self._latency_state(latency)
        next_ids, moved, success, hop_ms = self.frontier_step(
            state.cur[act], state.dest[act], alive, lat_state
        )
        state.cur[act] = next_ids
        mv = act[moved]
        state.hops[mv] += 1
        if hop_ms is not None and mv.size:
            state.latency_ms[mv] += hop_ms[moved]
        fin = act[~moved]
        if fin.size:
            state.done[fin] = True
            state.success[fin] = success[~moved]
        return int(mv.size)

    def _result(
        self,
        src: np.ndarray,
        dest: np.ndarray,
        hops: np.ndarray,
        terminal: np.ndarray,
        success: np.ndarray,
        path_lists: Optional[List[List[int]]],
        latency_ms: Optional[np.ndarray] = None,
    ) -> BatchResult:
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter("perf.batch.routes").inc(int(src.size))
            registry.counter("perf.batch.hops").inc(int(hops.sum()))
        return BatchResult(
            sources=src,
            dest_keys=dest,
            hops=hops,
            terminals=terminal,
            success=success,
            paths=path_lists,
            latency_ms=latency_ms,
        )


def _as_batch(sources: Sequence[int], dest_keys: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    if not hasattr(sources, "__len__"):
        sources = list(sources)
    if not hasattr(dest_keys, "__len__"):
        dest_keys = list(dest_keys)
    src = np.asarray(sources, dtype=_U64)
    dest = np.asarray(dest_keys, dtype=_U64)
    if src.shape != dest.shape:
        raise ValueError(f"{src.size} sources vs {dest.size} destination keys")
    return src, dest


def _in_sorted(sorted_arr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted array via binary search."""
    if sorted_arr.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_arr, values), sorted_arr.size - 1)
    return sorted_arr[pos] == values


def compile_network(network: DHTNetwork, cached: bool = True) -> CompiledNetwork:
    """Compile (and by default memoize on the network) the CSR layout.

    Link tables are static after :meth:`~repro.core.network.DHTNetwork.build`,
    so the compiled form is cached on the network object; pass
    ``cached=False`` after mutating ``links`` by hand.  Compilation time
    accrues to the ``compile`` phase of :data:`repro.obs.profile.PROFILER`.
    """
    if cached:
        compiled = network.__dict__.get("_perf_compiled")
        if compiled is not None:
            return compiled
    with PROFILER.phase("compile"):
        compiled = CompiledNetwork(network)
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("perf.batch.compiles").inc()
    if cached:
        network.__dict__["_perf_compiled"] = compiled
    return compiled


def batch_route_ring(
    network: DHTNetwork,
    pairs: Sequence[Tuple[int, int]],
    alive: Optional[Set[int]] = None,
    paths: bool = False,
    latency: Optional["LatencyTable"] = None,
) -> BatchResult:
    """Batch :func:`~repro.core.routing.route_ring` over (src, key) pairs."""
    srcs = [p[0] for p in pairs]
    dests = [p[1] for p in pairs]
    return compile_network(network).route_ring(
        srcs, dests, alive=alive, paths=paths, latency=latency
    )


def batch_route_xor(
    network: DHTNetwork,
    pairs: Sequence[Tuple[int, int]],
    alive: Optional[Set[int]] = None,
    paths: bool = False,
    latency: Optional["LatencyTable"] = None,
) -> BatchResult:
    """Batch :func:`~repro.core.routing.route_xor` over (src, key) pairs."""
    srcs = [p[0] for p in pairs]
    dests = [p[1] for p in pairs]
    return compile_network(network).route_xor(
        srcs, dests, alive=alive, paths=paths, latency=latency
    )


def batch_route(
    network: DHTNetwork,
    pairs: Sequence[Tuple[int, int]],
    alive: Optional[Set[int]] = None,
    paths: bool = False,
    latency: Optional["LatencyTable"] = None,
) -> BatchResult:
    """Batch :func:`~repro.core.routing.route`: engine picked by metric."""
    srcs = [p[0] for p in pairs]
    dests = [p[1] for p in pairs]
    return compile_network(network).route(
        srcs, dests, alive=alive, paths=paths, latency=latency
    )
