"""Parallel experiment executor: fan parameter grids across processes.

The per-figure experiment modules express their parameter grids as lists of
points and a module-level ``_grid_point`` function; :func:`map_points` maps
the function over the points either serially (the default) or across a
``ProcessPoolExecutor``.  Results are returned in submission order and each
point derives its own RNG from :func:`repro.experiments.common.seeded_rng`
tokens, so parallel output is **bit-identical** to serial output
(property-tested in ``tests/test_perf_executor.py``).

Observability composes: each worker collects into a fresh
:class:`~repro.obs.metrics.MetricsRegistry` and returns its snapshot plus
its phase-timer totals; the parent folds both back into its own active
registry (via :meth:`MetricsRegistry.absorb`) and
:data:`~repro.obs.profile.PROFILER` in submission order, so the merged
metrics equal a serial run's.  Route *tracing* records per-route payloads
that cannot be merged order-faithfully, so an active tracer forces a serial
fallback (with a warning).

The CLI exposes this as ``--jobs N`` (0 = all cores) by setting the
process-wide default; library callers can pass ``jobs=`` explicitly.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.profile import PROFILER
from . import arena as perf_arena

__all__ = ["get_default_jobs", "map_points", "resolve_jobs", "set_default_jobs"]

logger = logging.getLogger("repro.perf.executor")

_default_jobs = 1


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (0 = all cores)."""
    global _default_jobs
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    _default_jobs = jobs


def get_default_jobs() -> int:
    """The process-wide default worker count as set (0 = all cores)."""
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Concrete worker count for a call: explicit arg, else the default."""
    jobs = _default_jobs if jobs is None else jobs
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _run_point(fn: Callable[[Any], Any], point: Any) -> Tuple[Any, str, dict]:
    """Worker-side wrapper: isolate obs state, return result + obs payloads."""
    # Workers must not fan out further, trace into the parent's inherited
    # tracer, or double-count inherited phase totals.
    set_default_jobs(1)
    obs_trace.deactivate()
    PROFILER.reset()
    with obs_metrics.collecting() as registry:
        result = fn(point)
    return result, registry.snapshot().to_json(indent=0), PROFILER.as_dict()


def map_points(
    fn: Callable[[Any], Any],
    points: Iterable[Any],
    jobs: Optional[int] = None,
    arenas: Optional[Mapping[Any, "perf_arena.ArenaManifest"]] = None,
) -> List[Any]:
    """``[fn(p) for p in points]``, optionally across worker processes.

    With ``jobs`` (or the process default) > 1, points are distributed over
    a fork-based ``ProcessPoolExecutor`` and results are gathered in
    submission order; worker metrics snapshots and phase timings are folded
    back into the parent's.  Falls back to serial when forking is
    unavailable, fewer than two points exist, or a tracer is active.

    ``arenas`` maps grid keys to :class:`~repro.perf.arena.ArenaManifest`
    objects the caller exported beforehand; they are published for the
    duration of the call, so ``fn`` resolves its point's manifest with
    :func:`repro.perf.arena.current_manifest` — in the parent for the
    serial paths, inherited through ``fork`` in the workers.  Nothing but
    the point tuples themselves ever crosses the pipe, and the caller
    keeps ownership (and disposal responsibility) of the segments.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    token = perf_arena.publish(arenas) if arenas is not None else None
    try:
        if jobs <= 1 or len(points) <= 1:
            return [fn(point) for point in points]
        if obs_trace.active_tracer() is not None:
            logger.warning(
                "route tracing is active; running %d points serially "
                "(per-route trace order is not mergeable across processes)",
                len(points),
            )
            return [fn(point) for point in points]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            logger.warning("fork start method unavailable; running serially")
            return [fn(point) for point in points]
        registry = obs_metrics.active_registry()
        workers = min(jobs, len(points))
        logger.info("mapping %d points across %d workers", len(points), workers)
        results: List[Any] = []
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = [pool.submit(_run_point, fn, point) for point in points]
            for future in futures:  # submission order == grid order
                result, snapshot_json, phases = future.result()
                results.append(result)
                if registry is not None:
                    registry.absorb(
                        obs_metrics.MetricsSnapshot.from_json(snapshot_json)
                    )
                PROFILER.absorb(phases)
        return results
    finally:
        if arenas is not None:
            perf_arena.unpublish(token)
