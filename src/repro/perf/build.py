"""Vectorized bulk builders for every DHT family's link-table construction.

The scalar constructions in :mod:`repro.dhts` are the semantic reference:
one node at a time, one draw / binary search at a time.  At the paper's
32K-65K node scales that makes *building* the networks — not routing them —
the dominant cost of every experiment grid.  This module rebuilds each
family's link table in array form:

- Symphony/Cacophony: harmonic inverse-CDF draws in ``(nodes x count)``
  batches with distinct-rejection redraw rounds and one ``searchsorted``
  successor snap per batch (:func:`bulk_harmonic_draws`).
- Kademlia/Kandy: per-bit bucket boundaries for *all* nodes with two
  ``searchsorted`` sweeps, plus a vectorized binary-trie descent for the
  deterministic XOR-closest contact (:func:`_xor_closest_in_ranges`).
- CAN/Can-Can: a neighbor of leaf ``x`` at flipped bit ``p`` is exactly a
  leaf whose interval overlaps ``x``'s sibling interval at depth ``p`` — a
  contiguous range of the padded-id order, so adjacency needs no pairwise
  prefix comparisons at all.
- ND-Chord/ND-Crescendo: annulus member ranges via cyclic successor
  searches, with the ``count == 0`` full-ring/empty disambiguation of
  :func:`repro.dhts.ndchord.annulus_choice` applied vectorially.
- mixed/naive: Chord-style finger matrices per domain (as
  ``crescendo._build_domain_numpy`` already does).

Randomized families draw from a numpy ``Generator`` derived from the
caller's ``random.Random`` (:func:`derive_generator`): vectorization
reorders RNG consumption, so streams cannot match the reference draw for
draw — the bulk output is *distributionally* identical (tested) while the
deterministic families are *exactly* identical (also tested).

Dispatch convention: every network constructor takes ``use_numpy=True``
and its ``build()`` consults :func:`bulk_enabled`, which honours the
process-wide override of :func:`set_build_mode` (the experiments CLI
``--build`` flag).  :func:`builder_tag` names the implementation that will
run for a given configuration; it is a mandatory component of network
cache keys so a vectorized build never serves tables cached by the
reference path or vice versa (see :mod:`repro.perf.cache`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace
from ..dhts.symphony import _MAX_DRAWS, _note_short_draws

__all__ = [
    "BUILDER_VERSION",
    "BULK_THRESHOLD",
    "builder_tag",
    "bulk_enabled",
    "bulk_harmonic_draws",
    "cacophony_link_sets",
    "can_link_sets",
    "cancan_link_sets",
    "derive_generator",
    "get_build_mode",
    "kademlia_link_sets",
    "kandy_link_sets",
    "lan_crescendo_link_sets",
    "naive_link_sets",
    "ndchord_link_sets",
    "ndcrescendo_link_sets",
    "set_build_mode",
    "symphony_link_sets",
]

#: Bump whenever any bulk builder's output could change; part of every
#: network cache key via :func:`builder_tag`.
BUILDER_VERSION = 1

#: Node-count threshold below which the scalar reference is at least as
#: fast as setting up arrays (mirrors the original chord/crescendo cutoff).
BULK_THRESHOLD = 64

_MODES = ("auto", "numpy", "python")
_mode = "auto"


def set_build_mode(mode: str) -> None:
    """Process-wide builder override: ``auto`` (per-network ``use_numpy``
    and size threshold), ``numpy`` (force bulk) or ``python`` (force the
    scalar reference).  Wired to the experiments CLI ``--build`` flag."""
    global _mode
    if mode not in _MODES:
        raise ValueError(f"unknown build mode {mode!r}; pick one of {_MODES}")
    _mode = mode


def get_build_mode() -> str:
    """The current process-wide build mode."""
    return _mode


def bulk_enabled(use_numpy: bool, size: int) -> bool:
    """Whether a build of ``size`` nodes should take the bulk path."""
    if _mode == "python":
        return False
    if _mode == "numpy":
        return True
    return bool(use_numpy) and size > BULK_THRESHOLD


def builder_tag(use_numpy: bool = True, size: Optional[int] = None) -> str:
    """Cache-key component naming the builder implementation that will run.

    ``python`` is the scalar reference; ``numpy-v<N>`` identifies the bulk
    builders at :data:`BUILDER_VERSION`.  With ``size`` omitted the tag
    assumes a network above :data:`BULK_THRESHOLD`.
    """
    if size is None:
        size = BULK_THRESHOLD + 1
    return f"numpy-v{BUILDER_VERSION}" if bulk_enabled(use_numpy, size) else "python"


def derive_generator(rng) -> np.random.Generator:
    """A numpy ``Generator`` seeded deterministically from ``rng``.

    Bulk builders consume randomness in a different order than the scalar
    reference, so the streams cannot match draw for draw; what matters is
    that the derived generator is a pure function of the caller's RNG state
    (reproducible) and that deriving it *advances* ``rng``, so downstream
    draws differ from a run that never built this network — mirroring the
    reference's consumption.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng.getrandbits(128))


def _as_array(members: Sequence[int]) -> np.ndarray:
    return np.asarray(members, dtype=np.uint64)


def _depth_of(hierarchy: Hierarchy, node_ids: Sequence[int]) -> Dict[int, int]:
    return {node: len(hierarchy.path_of(node)) for node in node_ids}


def _domains_deepest_first(hierarchy: Hierarchy):
    return sorted(hierarchy.domains(), key=lambda d: -d.depth)


# ------------------------------------------------------- Symphony / Cacophony


def bulk_harmonic_draws(
    arr: np.ndarray, count: int, space: IdSpace, gen: np.random.Generator
) -> List[Set[int]]:
    """Per-member sets of up to ``count`` distinct harmonic long links.

    Vectorized :func:`repro.dhts.symphony.draw_long_links` over one ring:
    inverse-CDF distances for a whole batch at once, one ``searchsorted``
    successor snap per round, then distinct-rejection — only rows still
    short of ``count`` distinct non-self links redraw, each within the same
    ``count * _MAX_DRAWS`` attempt budget as the scalar loop.  Rows whose
    budget runs out emit the ``build.symphony.short_draws`` counter.
    """
    n = int(arr.size)
    sets: List[Set[int]] = [set() for _ in range(n)]
    if n < 2 or count <= 0:
        return sets
    size = np.uint64(space.size)
    scale = float(space.size)
    budget = count * _MAX_DRAWS
    rows = np.arange(n)
    spent = 0
    while rows.size and spent < budget:
        cols = min(count, budget - spent)
        u = gen.random((rows.size, cols))
        dist = (np.power(float(n), u - 1.0) * scale).astype(np.uint64)
        np.maximum(dist, np.uint64(1), out=dist)
        targets = (arr[rows][:, None] + dist) % size
        idx = np.searchsorted(arr, targets)
        idx[idx == n] = 0
        snapped = arr[idx].tolist()
        own = arr[rows].tolist()
        short = []
        for row, me, values in zip(rows.tolist(), own, snapped):
            links = sets[row]
            if not links and len(values) == count:
                # Fast path: a full round of all-distinct non-self draws is
                # the whole answer (order among iid draws is irrelevant).
                distinct = set(values)
                distinct.discard(me)
                if len(distinct) == count:
                    sets[row] = distinct
                    continue
            for value in values:
                if value != me and len(links) < count:
                    links.add(value)
            if len(links) < count:
                short.append(row)
        spent += cols
        rows = np.asarray(short, dtype=np.int64)
    if rows.size:
        missing = sum(count - len(sets[row]) for row in rows.tolist())
        if missing > 0:
            _note_short_draws(missing)
    return sets


def symphony_link_sets(
    node_ids: Sequence[int], count: int, space: IdSpace, rng
) -> Dict[int, Set[int]]:
    """Bulk Symphony: harmonic long links plus the successor short link."""
    arr = _as_array(node_ids)
    sets = bulk_harmonic_draws(arr, count, space, derive_generator(rng))
    n = len(node_ids)
    out: Dict[int, Set[int]] = {}
    for pos, node in enumerate(node_ids):
        links = sets[pos]
        links.add(node_ids[(pos + 1) % n])
        out[node] = links
    return out


def cacophony_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy, rng
) -> Tuple[Dict[int, Set[int]], Dict[int, int]]:
    """Bulk Cacophony: per-domain harmonic draws, gap-filtered at merges."""
    gen = derive_generator(rng)
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    gap = {node: space.size for node in node_ids}
    depth_of = _depth_of(hierarchy, node_ids)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if not members:
            continue
        population = len(members)
        count = max(1, int(math.log2(population))) if population > 1 else 0
        arr = _as_array(members)
        drawn = bulk_harmonic_draws(arr, count, space, gen)
        for pos, node in enumerate(members):
            links = drawn[pos]
            if depth_of[node] == domain.depth:
                out[node].update(links)
            else:
                g = gap[node]
                out[node].update(
                    link for link in links if space.ring_distance(node, link) < g
                )
            successor = members[(pos + 1) % population]
            if successor != node:
                out[node].add(successor)
                gap[node] = space.ring_distance(node, successor)
            else:
                gap[node] = space.size
    return out, gap


# ----------------------------------------------------------- Kademlia / Kandy


def _xor_closest_in_ranges(
    arr: np.ndarray,
    x: np.ndarray,
    lo: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    k: int,
) -> np.ndarray:
    """Position in ``arr`` of the XOR-closest member to each ``x`` in
    ``arr[i:j)``.

    Every range must be non-empty and lie inside bucket ``k`` of its ``x``
    (members agree with ``x`` above bit ``k``, starting at ``lo``), so the
    closest member falls out of a binary-trie descent: at each lower bit
    prefer the half that matches ``x``'s bit when it is non-empty.
    """
    ii = i.astype(np.int64)
    jj = j.astype(np.int64)
    pref = lo.astype(np.uint64)
    for b in range(k - 1, -1, -1):
        live = (jj - ii) > 1
        if not live.any():
            break
        bb = np.uint64(1 << b)
        # All of arr[ii:jj) lies in [pref, pref + 2^(b+1)), so the global
        # insertion point of the half boundary lands inside [ii, jj].
        mid = np.searchsorted(arr, pref | bb).astype(np.int64)
        want_hi = (x & bb) != np.uint64(0)
        go_hi = np.where(want_hi, mid < jj, ~(mid > ii)) & live
        ii = np.where(go_hi, mid, ii)
        jj = np.where(live & ~go_hi, mid, jj)
        pref = np.where(go_hi, pref | bb, pref)
    return ii


def _sample_offsets(
    gen: np.random.Generator, spans: np.ndarray, count: int
) -> List[Set[int]]:
    """Per-row sets of ``count`` distinct offsets in ``[0, spans[row])``.

    Callers guarantee ``spans > count``; rows with duplicate draws simply
    redraw (rejection sampling, identical in distribution to
    ``rng.sample``).
    """
    sets: List[Set[int]] = [set() for _ in range(spans.size)]
    rows = np.arange(spans.size)
    while rows.size:
        draw = gen.integers(0, spans[rows][:, None], size=(rows.size, count))
        short = []
        for row, values in zip(rows.tolist(), draw.tolist()):
            chosen = sets[row]
            for value in values:
                if len(chosen) < count:
                    chosen.add(value)
            if len(chosen) < count:
                short.append(row)
        rows = np.asarray(short, dtype=np.int64)
    return sets


def _bucket_contacts(
    arr: np.ndarray,
    members: Sequence[int],
    act: np.ndarray,
    lo: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    k: int,
    gen: Optional[np.random.Generator],
    bucket_size: int,
    out: Dict[int, Set[int]],
    record,
) -> None:
    """Resolve bucket-``k`` contacts for the rows ``act`` of one ring.

    ``record(node)`` is invoked once per resolved row (Kandy/Can-Can depth
    bookkeeping); contacts land directly in ``out``.
    """
    if gen is None:
        pos = _xor_closest_in_ranges(arr, arr[act], lo[act], i[act], j[act], k)
        for row, p in zip(act.tolist(), pos.tolist()):
            node = members[row]
            out[node].add(members[p])
            record(node)
        return
    spans = j[act] - i[act]
    if bucket_size == 1:
        offs = gen.integers(0, spans)
        picks = i[act] + offs
        for row, p in zip(act.tolist(), picks.tolist()):
            node = members[row]
            out[node].add(members[p])
            record(node)
        return
    full = spans <= bucket_size
    full_rows = act[full]
    if full_rows.size:
        for row, a, b in zip(
            full_rows.tolist(), i[full_rows].tolist(), j[full_rows].tolist()
        ):
            node = members[row]
            out[node].update(members[a:b])
            record(node)
    samp_rows = act[~full]
    if samp_rows.size:
        chosen = _sample_offsets(gen, spans[~full], bucket_size)
        for row, a, offsets in zip(samp_rows.tolist(), i[samp_rows].tolist(), chosen):
            node = members[row]
            out[node].update(members[a + o] for o in offsets)
            record(node)


def _bucket_ranges(
    arr: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(lo, i, j)`` of bucket ``k`` for every member of a sorted ring."""
    kk = np.uint64(k)
    bit = np.uint64(1 << k)
    lo = ((arr ^ bit) >> kk) << kk
    i = np.searchsorted(arr, lo, side="left")
    j = np.searchsorted(arr, lo + bit, side="left")
    return lo, i, j


def kademlia_link_sets(
    node_ids: Sequence[int],
    space: IdSpace,
    rng=None,
    bucket_size: int = 1,
) -> Dict[int, Set[int]]:
    """Bulk Kademlia: per-bit bucket ranges for all nodes at once.

    Supports the deterministic flavour (``rng=None``) for ``bucket_size=1``
    (the XOR-closest contact via trie descent) and the randomized flavour
    for any bucket size; callers fall back to the reference for the
    deterministic multi-contact case.
    """
    if rng is None and bucket_size != 1:
        raise ValueError("bulk deterministic Kademlia supports bucket_size=1 only")
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    if len(node_ids) < 2:
        return out
    arr = _as_array(node_ids)
    gen = derive_generator(rng) if rng is not None else None
    for k in range(space.bits):
        lo, i, j = _bucket_ranges(arr, k)
        act = np.flatnonzero(j > i)
        if act.size:
            _bucket_contacts(
                arr, node_ids, act, lo, i, j, k, gen, bucket_size, out,
                lambda node: None,
            )
    return out


def kandy_link_sets(
    node_ids: Sequence[int],
    space: IdSpace,
    hierarchy: Hierarchy,
    rng=None,
    bucket_size: int = 1,
) -> Tuple[Dict[int, Set[int]], Dict[int, Dict[int, int]]]:
    """Bulk Kandy: per-domain bucket sweeps, deepest domain first.

    Processing domains deepest-first and marking each (node, bucket) pair
    resolved on its first non-empty hit reproduces the reference's "lowest
    enclosing domain with a non-empty bucket" rule without walking ancestor
    chains per node.
    """
    if rng is None and bucket_size != 1:
        raise ValueError("bulk deterministic Kandy supports bucket_size=1 only")
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    contact_depth: Dict[int, Dict[int, int]] = {node: {} for node in node_ids}
    n = len(node_ids)
    if n < 2:
        return out, contact_depth
    garr = _as_array(node_ids)
    gen = derive_generator(rng) if rng is not None else None
    resolved = np.zeros((n, space.bits), dtype=bool)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if len(members) < 2:
            continue
        arr = _as_array(members)
        gpos = np.searchsorted(garr, arr)
        depth = len(domain.path)
        for k in range(space.bits):
            lo, i, j = _bucket_ranges(arr, k)
            act = np.flatnonzero((j > i) & ~resolved[gpos, k])
            if act.size == 0:
                continue
            resolved[gpos[act], k] = True

            def record(node, _k=k, _depth=depth):
                contact_depth[node][_k] = _depth

            _bucket_contacts(
                arr, members, act, lo, i, j, k, gen, bucket_size, out, record
            )
    return out, contact_depth


# ---------------------------------------------------------------- CAN family


def _ranges_concat(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[r], ends[r])`` for every row."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum - counts, counts)
        + np.repeat(starts, counts)
    )


def can_link_sets(
    node_ids: Sequence[int], lengths: Sequence[int], bits: int
) -> Dict[int, Set[int]]:
    """Bulk CAN adjacency over sorted padded prefixes.

    For leaf ``x`` of prefix length ``L``, the neighbors differing at bit
    ``p < L`` are exactly the leaves whose interval overlaps ``x``'s sibling
    interval at depth ``p`` — a contiguous run of the padded order: every
    leaf *starting* inside it, plus possibly the one leaf covering its low
    end from below.  Each undirected edge is discovered from both sides
    (the differing bit is within both prefixes), so one directed insert per
    discovery yields the full symmetric table.
    """
    arr = _as_array(node_ids)
    lens = np.asarray(lengths, dtype=np.uint64)
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    n = arr.size
    if n < 2:
        return out
    one = np.uint64(1)
    width = one << (np.uint64(bits) - lens)
    ends = arr + width
    for p in range(int(lens.max())):
        act = np.flatnonzero(lens > p)
        if act.size == 0:
            break
        flip = one << np.uint64(bits - 1 - p)
        lo = arr[act] ^ flip
        hi = lo + width[act]
        first = np.searchsorted(arr, lo, side="right").astype(np.int64) - 1
        last = np.searchsorted(arr, hi, side="left").astype(np.int64)
        # arr[first] starts at or below lo; include it only if it actually
        # reaches lo (always true when the leaves partition the space).
        covers = (first >= 0) & (ends[np.maximum(first, 0)] > lo)
        first = first + 1 - covers
        counts = last - first
        valid = counts > 0
        srcs = np.repeat(act[valid], counts[valid])
        cands = _ranges_concat(first[valid], last[valid])
        for s, c in zip(srcs.tolist(), cands.tolist()):
            out[node_ids[s]].add(node_ids[c])
    return out


def cancan_link_sets(
    node_ids: Sequence[int],
    lengths: Sequence[int],
    space: IdSpace,
    hierarchy: Hierarchy,
    rng=None,
) -> Tuple[Dict[int, Set[int]], Dict[int, Dict[int, int]]]:
    """Bulk Can-Can: lowest-domain hypercube edge per identifier bit.

    Same interval characterization as :func:`can_link_sets`, restricted to
    each domain's member list: candidates at bit ``p`` are the members
    starting inside the sibling interval, or the single member covering it
    from below (its dyadic interval then contains the whole sibling
    interval, so no other member can overlap).  Deterministic choice is the
    first candidate in member order, exactly as the reference's
    ``options[0]``.
    """
    bits = space.bits
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    edge_depth: Dict[int, Dict[int, int]] = {node: {} for node in node_ids}
    n = len(node_ids)
    if n < 2:
        return out, edge_depth
    garr = _as_array(node_ids)
    glen = dict(zip(node_ids, lengths))
    maxlen = int(max(lengths))
    gen = derive_generator(rng) if rng is not None else None
    one = np.uint64(1)
    resolved = np.zeros((n, maxlen), dtype=bool)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if len(members) < 2:
            continue
        arr = _as_array(members)
        lens = np.asarray([glen[m] for m in members], dtype=np.uint64)
        ends = arr + (one << (np.uint64(bits) - lens))
        gpos = np.searchsorted(garr, arr)
        depth = len(domain.path)
        for p in range(int(lens.max())):
            rows = np.flatnonzero((lens > p) & ~resolved[gpos, p])
            if rows.size == 0:
                continue
            flip = one << np.uint64(bits - 1 - p)
            lo = arr[rows] ^ flip
            hi = lo + (one << (np.uint64(bits) - lens[rows]))
            lb = np.searchsorted(arr, lo, side="left").astype(np.int64)
            ub = np.searchsorted(arr, hi, side="left").astype(np.int64)
            pred = lb - 1
            covers = (lb > 0) & (ends[np.maximum(pred, 0)] > lo)
            sel = np.flatnonzero(covers | (ub > lb))
            if sel.size == 0:
                continue
            if gen is None:
                pick = np.where(covers[sel], pred[sel], lb[sel])
            else:
                spans = np.where(covers[sel], 1, ub[sel] - lb[sel])
                pick = np.where(
                    covers[sel], pred[sel], lb[sel] + gen.integers(0, spans)
                )
            resolved[gpos[rows[sel]], p] = True
            for r, c in zip(rows[sel].tolist(), pick.tolist()):
                node = members[r]
                out[node].add(members[c])
                edge_depth[node][p] = depth
    return out, edge_depth


# ------------------------------------------------------- ND-Chord / Crescendo


def _annulus_counts(
    arr: np.ndarray,
    rows: np.ndarray,
    lo: int,
    hi: np.ndarray,
    size: np.uint64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cyclic member ranges ``(start, count)`` of per-row annuli ``[lo, hi)``.

    Mirrors :func:`repro.dhts.ndchord.annulus_choice`: ``count == 0`` is
    disambiguated by testing whether the first candidate actually lies in
    the annulus (then every member does).
    """
    n = int(arr.size)
    base = arr[rows]
    start = np.searchsorted(arr, (base + np.uint64(lo)) % size)
    start[start == n] = 0
    end = np.searchsorted(arr, (base + hi) % size)
    end[end == n] = 0
    count = (end - start) % n
    zero = np.flatnonzero(count == 0)
    if zero.size:
        dist = (arr[start[zero]] - base[zero]) % size
        count[zero] = np.where((dist >= np.uint64(lo)) & (dist < hi[zero]), n, 0)
    return start, count


def ndchord_link_sets(
    node_ids: Sequence[int], space: IdSpace, rng
) -> Dict[int, Set[int]]:
    """Bulk nondeterministic Chord: one random link per distance octave."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    n = len(node_ids)
    if n == 0:
        return out
    arr = _as_array(node_ids)
    gen = derive_generator(rng)
    size = np.uint64(space.size)
    if n >= 2:
        rows = np.arange(n)
        for k in range(space.bits):
            lo = 1 << k
            hi = min(1 << (k + 1), space.size)
            if hi <= lo:
                continue
            hi_arr = np.full(n, np.uint64(hi))
            start, count = _annulus_counts(arr, rows, lo, hi_arr, size)
            act = np.flatnonzero(count > 0)
            if act.size == 0:
                continue
            pick = (start[act] + gen.integers(0, count[act])) % n
            good = arr[pick] != arr[act]
            for row, p in zip(act[good].tolist(), pick[good].tolist()):
                out[node_ids[row]].add(node_ids[p])
    for pos, node in enumerate(node_ids):
        successor = node_ids[(pos + 1) % n]
        if successor != node:
            out[node].add(successor)
    return out


def ndcrescendo_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy, rng
) -> Tuple[Dict[int, Set[int]], Dict[int, int]]:
    """Bulk nondeterministic Crescendo: gap-clipped octaves per domain."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    gap = {node: space.size for node in node_ids}
    depth_of = _depth_of(hierarchy, node_ids)
    gen = derive_generator(rng)
    size = np.uint64(space.size)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if not members:
            continue
        population = len(members)
        arr = _as_array(members)
        if population >= 2:
            gaps = np.asarray([gap[m] for m in members], dtype=np.uint64)
            leaf = np.asarray(
                [depth_of[m] == domain.depth for m in members], dtype=bool
            )
            for k in range(space.bits):
                lo = 1 << k
                if lo >= space.size:
                    break
                hi = np.uint64(min(1 << (k + 1), space.size))
                hi_eff = np.where(leaf, hi, np.minimum(hi, gaps))
                rows = np.flatnonzero(
                    (leaf | (np.uint64(lo) < gaps)) & (hi_eff > np.uint64(lo))
                )
                if rows.size == 0:
                    continue
                start, count = _annulus_counts(arr, rows, lo, hi_eff[rows], size)
                have = np.flatnonzero(count > 0)
                if have.size == 0:
                    continue
                pick = (start[have] + gen.integers(0, count[have])) % population
                chosen_rows = rows[have]
                good = arr[pick] != arr[chosen_rows]
                for r, p in zip(chosen_rows[good].tolist(), pick[good].tolist()):
                    out[members[r]].add(members[p])
        for pos, node in enumerate(members):
            successor = members[(pos + 1) % population]
            if successor != node:
                new_gap = space.ring_distance(node, successor)
                if depth_of[node] == domain.depth or new_gap < gap[node]:
                    out[node].add(successor)
                gap[node] = new_gap
            else:
                gap[node] = space.size
    return out, gap


# ------------------------------------------------------------- mixed / naive


def _finger_matrix(
    arr: np.ndarray, base: np.ndarray, space: IdSpace
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(succ, dist, ks)`` Chord finger snaps of ``base`` over ring ``arr``."""
    size = np.uint64(space.size)
    ks = np.uint64(1) << np.arange(space.bits, dtype=np.uint64)
    targets = (base[:, None] + ks[None, :]) % size
    idx = np.searchsorted(arr, targets)
    idx[idx == arr.size] = 0
    succ = arr[idx]
    dist = (succ - base[:, None]) % size
    return succ, dist, ks


def lan_crescendo_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy
) -> Tuple[Dict[int, Set[int]], Dict[int, int]]:
    """Bulk mixed-level network: complete-graph LANs, Crescendo merges."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    gap = {node: space.size for node in node_ids}
    depth_of = _depth_of(hierarchy, node_ids)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if not members:
            continue
        population = len(members)
        leaf_nodes = [m for m in members if depth_of[m] == domain.depth]
        merge_nodes = [m for m in members if depth_of[m] > domain.depth]
        for node in leaf_nodes:
            out[node].update(members)  # self-link dropped by _finalize_links
        if merge_nodes and population >= 2:
            arr = _as_array(members)
            base = _as_array(merge_nodes)
            gaps = np.asarray([gap[m] for m in merge_nodes], dtype=np.uint64)
            succ, dist, ks = _finger_matrix(arr, base, space)
            keep = (dist != 0) & (dist < gaps[:, None]) & (ks[None, :] < gaps[:, None])
            for row, node in enumerate(merge_nodes):
                out[node].update(succ[row][keep[row]].tolist())
        for pos, node in enumerate(members):
            successor = members[(pos + 1) % population]
            gap[node] = (
                space.ring_distance(node, successor)
                if successor != node
                else space.size
            )
    return out, gap


def naive_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy
) -> Dict[int, Set[int]]:
    """Bulk naive hierarchical Chord: full fingers in every ancestor ring."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    for domain in hierarchy.domains():
        members = hierarchy.sorted_members(domain.path)
        if len(members) < 2:
            continue
        arr = _as_array(members)
        succ, _, _ = _finger_matrix(arr, arr, space)
        for node, row in zip(members, succ.tolist()):
            out[node].update(row)  # self-links dropped by _finalize_links
    return out
