"""Vectorized bulk builders for every DHT family's link-table construction.

The scalar constructions in :mod:`repro.dhts` are the semantic reference:
one node at a time, one draw / binary search at a time.  At the paper's
32K-65K node scales that makes *building* the networks — not routing them —
the dominant cost of every experiment grid.  This module rebuilds each
family's link table in array form:

- Symphony/Cacophony: harmonic inverse-CDF draws in ``(nodes x count)``
  batches with distinct-rejection redraw rounds and one ``searchsorted``
  successor snap per batch (:func:`bulk_harmonic_draws`).
- Kademlia/Kandy: per-bit bucket boundaries for *all* nodes with two
  ``searchsorted`` sweeps, plus a vectorized binary-trie descent for the
  deterministic XOR-closest contact (:func:`_xor_closest_in_ranges`).
- CAN/Can-Can: a neighbor of leaf ``x`` at flipped bit ``p`` is exactly a
  leaf whose interval overlaps ``x``'s sibling interval at depth ``p`` — a
  contiguous range of the padded-id order, so adjacency needs no pairwise
  prefix comparisons at all.
- ND-Chord/ND-Crescendo: annulus member ranges via cyclic successor
  searches, with the ``count == 0`` full-ring/empty disambiguation of
  :func:`repro.dhts.ndchord.annulus_choice` applied vectorially.
- mixed/naive: Chord-style finger matrices per domain (as
  ``crescendo._build_domain_numpy`` already does).

Randomized families draw from a numpy ``Generator`` derived from the
caller's ``random.Random`` (:func:`derive_generator`): vectorization
reorders RNG consumption, so streams cannot match the reference draw for
draw — the bulk output is *distributionally* identical (tested) while the
deterministic families are *exactly* identical (also tested).

Dispatch convention: every network constructor takes ``use_numpy=True``
and its ``build()`` consults :func:`bulk_enabled`, which honours the
process-wide override of :func:`set_build_mode` (the experiments CLI
``--build`` flag).  :func:`builder_tag` names the implementation that will
run for a given configuration; it is a mandatory component of network
cache keys so a vectorized build never serves tables cached by the
reference path or vice versa (see :mod:`repro.perf.cache`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace
from ..dhts.symphony import _MAX_DRAWS, _note_short_draws

__all__ = [
    "BUILDER_VERSION",
    "BULK_THRESHOLD",
    "builder_tag",
    "bulk_enabled",
    "bulk_harmonic_draws",
    "cacophony_link_sets",
    "can_link_sets",
    "cancan_link_sets",
    "derive_generator",
    "get_build_mode",
    "hierarchy_codes",
    "kademlia_link_sets",
    "kandy_link_sets",
    "lan_crescendo_link_sets",
    "naive_link_sets",
    "ndchord_link_sets",
    "ndcrescendo_link_sets",
    "set_build_mode",
    "stream_compiled_crescendo",
    "stream_crescendo_csr",
    "stream_crescendo_ids",
    "stream_hierarchy_codes",
    "symphony_link_sets",
]

#: Bump whenever any bulk builder's output could change; part of every
#: network cache key via :func:`builder_tag`.
BUILDER_VERSION = 1

#: Node-count threshold below which the scalar reference is at least as
#: fast as setting up arrays (mirrors the original chord/crescendo cutoff).
BULK_THRESHOLD = 64

_MODES = ("auto", "numpy", "python")
_mode = "auto"


def set_build_mode(mode: str) -> None:
    """Process-wide builder override: ``auto`` (per-network ``use_numpy``
    and size threshold), ``numpy`` (force bulk) or ``python`` (force the
    scalar reference).  Wired to the experiments CLI ``--build`` flag."""
    global _mode
    if mode not in _MODES:
        raise ValueError(f"unknown build mode {mode!r}; pick one of {_MODES}")
    _mode = mode


def get_build_mode() -> str:
    """The current process-wide build mode."""
    return _mode


def bulk_enabled(use_numpy: bool, size: int) -> bool:
    """Whether a build of ``size`` nodes should take the bulk path."""
    if _mode == "python":
        return False
    if _mode == "numpy":
        return True
    return bool(use_numpy) and size > BULK_THRESHOLD


def builder_tag(use_numpy: bool = True, size: Optional[int] = None) -> str:
    """Cache-key component naming the builder implementation that will run.

    ``python`` is the scalar reference; ``numpy-v<N>`` identifies the bulk
    builders at :data:`BUILDER_VERSION`.  With ``size`` omitted the tag
    assumes a network above :data:`BULK_THRESHOLD`.
    """
    if size is None:
        size = BULK_THRESHOLD + 1
    return f"numpy-v{BUILDER_VERSION}" if bulk_enabled(use_numpy, size) else "python"


def derive_generator(rng) -> np.random.Generator:
    """A numpy ``Generator`` seeded deterministically from ``rng``.

    Bulk builders consume randomness in a different order than the scalar
    reference, so the streams cannot match draw for draw; what matters is
    that the derived generator is a pure function of the caller's RNG state
    (reproducible) and that deriving it *advances* ``rng``, so downstream
    draws differ from a run that never built this network — mirroring the
    reference's consumption.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng.getrandbits(128))


def _as_array(members: Sequence[int]) -> np.ndarray:
    return np.asarray(members, dtype=np.uint64)


def _depth_of(hierarchy: Hierarchy, node_ids: Sequence[int]) -> Dict[int, int]:
    return {node: len(hierarchy.path_of(node)) for node in node_ids}


def _domains_deepest_first(hierarchy: Hierarchy):
    return sorted(hierarchy.domains(), key=lambda d: -d.depth)


# ------------------------------------------------------- Symphony / Cacophony


def bulk_harmonic_draws(
    arr: np.ndarray, count: int, space: IdSpace, gen: np.random.Generator
) -> List[Set[int]]:
    """Per-member sets of up to ``count`` distinct harmonic long links.

    Vectorized :func:`repro.dhts.symphony.draw_long_links` over one ring:
    inverse-CDF distances for a whole batch at once, one ``searchsorted``
    successor snap per round, then distinct-rejection — only rows still
    short of ``count`` distinct non-self links redraw, each within the same
    ``count * _MAX_DRAWS`` attempt budget as the scalar loop.  Rows whose
    budget runs out emit the ``build.symphony.short_draws`` counter.
    """
    n = int(arr.size)
    sets: List[Set[int]] = [set() for _ in range(n)]
    if n < 2 or count <= 0:
        return sets
    size = np.uint64(space.size)
    scale = float(space.size)
    budget = count * _MAX_DRAWS
    rows = np.arange(n)
    spent = 0
    while rows.size and spent < budget:
        cols = min(count, budget - spent)
        u = gen.random((rows.size, cols))
        dist = (np.power(float(n), u - 1.0) * scale).astype(np.uint64)
        np.maximum(dist, np.uint64(1), out=dist)
        targets = (arr[rows][:, None] + dist) % size
        idx = np.searchsorted(arr, targets)
        idx[idx == n] = 0
        snapped = arr[idx].tolist()
        own = arr[rows].tolist()
        short = []
        for row, me, values in zip(rows.tolist(), own, snapped):
            links = sets[row]
            if not links and len(values) == count:
                # Fast path: a full round of all-distinct non-self draws is
                # the whole answer (order among iid draws is irrelevant).
                distinct = set(values)
                distinct.discard(me)
                if len(distinct) == count:
                    sets[row] = distinct
                    continue
            for value in values:
                if value != me and len(links) < count:
                    links.add(value)
            if len(links) < count:
                short.append(row)
        spent += cols
        rows = np.asarray(short, dtype=np.int64)
    if rows.size:
        missing = sum(count - len(sets[row]) for row in rows.tolist())
        if missing > 0:
            _note_short_draws(missing)
    return sets


def symphony_link_sets(
    node_ids: Sequence[int], count: int, space: IdSpace, rng
) -> Dict[int, Set[int]]:
    """Bulk Symphony: harmonic long links plus the successor short link."""
    arr = _as_array(node_ids)
    sets = bulk_harmonic_draws(arr, count, space, derive_generator(rng))
    n = len(node_ids)
    out: Dict[int, Set[int]] = {}
    for pos, node in enumerate(node_ids):
        links = sets[pos]
        links.add(node_ids[(pos + 1) % n])
        out[node] = links
    return out


def cacophony_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy, rng
) -> Tuple[Dict[int, Set[int]], Dict[int, int]]:
    """Bulk Cacophony: per-domain harmonic draws, gap-filtered at merges."""
    gen = derive_generator(rng)
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    gap = {node: space.size for node in node_ids}
    depth_of = _depth_of(hierarchy, node_ids)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if not members:
            continue
        population = len(members)
        count = max(1, int(math.log2(population))) if population > 1 else 0
        arr = _as_array(members)
        drawn = bulk_harmonic_draws(arr, count, space, gen)
        for pos, node in enumerate(members):
            links = drawn[pos]
            if depth_of[node] == domain.depth:
                out[node].update(links)
            else:
                g = gap[node]
                out[node].update(
                    link for link in links if space.ring_distance(node, link) < g
                )
            successor = members[(pos + 1) % population]
            if successor != node:
                out[node].add(successor)
                gap[node] = space.ring_distance(node, successor)
            else:
                gap[node] = space.size
    return out, gap


# ----------------------------------------------------------- Kademlia / Kandy


def _xor_closest_in_ranges(
    arr: np.ndarray,
    x: np.ndarray,
    lo: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    k: int,
) -> np.ndarray:
    """Position in ``arr`` of the XOR-closest member to each ``x`` in
    ``arr[i:j)``.

    Every range must be non-empty and lie inside bucket ``k`` of its ``x``
    (members agree with ``x`` above bit ``k``, starting at ``lo``), so the
    closest member falls out of a binary-trie descent: at each lower bit
    prefer the half that matches ``x``'s bit when it is non-empty.
    """
    ii = i.astype(np.int64)
    jj = j.astype(np.int64)
    pref = lo.astype(np.uint64)
    for b in range(k - 1, -1, -1):
        live = (jj - ii) > 1
        if not live.any():
            break
        bb = np.uint64(1 << b)
        # All of arr[ii:jj) lies in [pref, pref + 2^(b+1)), so the global
        # insertion point of the half boundary lands inside [ii, jj].
        mid = np.searchsorted(arr, pref | bb).astype(np.int64)
        want_hi = (x & bb) != np.uint64(0)
        go_hi = np.where(want_hi, mid < jj, ~(mid > ii)) & live
        ii = np.where(go_hi, mid, ii)
        jj = np.where(live & ~go_hi, mid, jj)
        pref = np.where(go_hi, pref | bb, pref)
    return ii


def _sample_offsets(
    gen: np.random.Generator, spans: np.ndarray, count: int
) -> List[Set[int]]:
    """Per-row sets of ``count`` distinct offsets in ``[0, spans[row])``.

    Callers guarantee ``spans > count``; rows with duplicate draws simply
    redraw (rejection sampling, identical in distribution to
    ``rng.sample``).
    """
    sets: List[Set[int]] = [set() for _ in range(spans.size)]
    rows = np.arange(spans.size)
    while rows.size:
        draw = gen.integers(0, spans[rows][:, None], size=(rows.size, count))
        short = []
        for row, values in zip(rows.tolist(), draw.tolist()):
            chosen = sets[row]
            for value in values:
                if len(chosen) < count:
                    chosen.add(value)
            if len(chosen) < count:
                short.append(row)
        rows = np.asarray(short, dtype=np.int64)
    return sets


def _bucket_contacts(
    arr: np.ndarray,
    members: Sequence[int],
    act: np.ndarray,
    lo: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    k: int,
    gen: Optional[np.random.Generator],
    bucket_size: int,
    out: Dict[int, Set[int]],
    record,
) -> None:
    """Resolve bucket-``k`` contacts for the rows ``act`` of one ring.

    ``record(node)`` is invoked once per resolved row (Kandy/Can-Can depth
    bookkeeping); contacts land directly in ``out``.
    """
    if gen is None:
        pos = _xor_closest_in_ranges(arr, arr[act], lo[act], i[act], j[act], k)
        for row, p in zip(act.tolist(), pos.tolist()):
            node = members[row]
            out[node].add(members[p])
            record(node)
        return
    spans = j[act] - i[act]
    if bucket_size == 1:
        offs = gen.integers(0, spans)
        picks = i[act] + offs
        for row, p in zip(act.tolist(), picks.tolist()):
            node = members[row]
            out[node].add(members[p])
            record(node)
        return
    full = spans <= bucket_size
    full_rows = act[full]
    if full_rows.size:
        for row, a, b in zip(
            full_rows.tolist(), i[full_rows].tolist(), j[full_rows].tolist()
        ):
            node = members[row]
            out[node].update(members[a:b])
            record(node)
    samp_rows = act[~full]
    if samp_rows.size:
        chosen = _sample_offsets(gen, spans[~full], bucket_size)
        for row, a, offsets in zip(samp_rows.tolist(), i[samp_rows].tolist(), chosen):
            node = members[row]
            out[node].update(members[a + o] for o in offsets)
            record(node)


def _bucket_ranges(
    arr: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(lo, i, j)`` of bucket ``k`` for every member of a sorted ring."""
    kk = np.uint64(k)
    bit = np.uint64(1 << k)
    lo = ((arr ^ bit) >> kk) << kk
    i = np.searchsorted(arr, lo, side="left")
    j = np.searchsorted(arr, lo + bit, side="left")
    return lo, i, j


def kademlia_link_sets(
    node_ids: Sequence[int],
    space: IdSpace,
    rng=None,
    bucket_size: int = 1,
) -> Dict[int, Set[int]]:
    """Bulk Kademlia: per-bit bucket ranges for all nodes at once.

    Supports the deterministic flavour (``rng=None``) for ``bucket_size=1``
    (the XOR-closest contact via trie descent) and the randomized flavour
    for any bucket size; callers fall back to the reference for the
    deterministic multi-contact case.
    """
    if rng is None and bucket_size != 1:
        raise ValueError("bulk deterministic Kademlia supports bucket_size=1 only")
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    if len(node_ids) < 2:
        return out
    arr = _as_array(node_ids)
    gen = derive_generator(rng) if rng is not None else None
    for k in range(space.bits):
        lo, i, j = _bucket_ranges(arr, k)
        act = np.flatnonzero(j > i)
        if act.size:
            _bucket_contacts(
                arr, node_ids, act, lo, i, j, k, gen, bucket_size, out,
                lambda node: None,
            )
    return out


def kandy_link_sets(
    node_ids: Sequence[int],
    space: IdSpace,
    hierarchy: Hierarchy,
    rng=None,
    bucket_size: int = 1,
) -> Tuple[Dict[int, Set[int]], Dict[int, Dict[int, int]]]:
    """Bulk Kandy: per-domain bucket sweeps, deepest domain first.

    Processing domains deepest-first and marking each (node, bucket) pair
    resolved on its first non-empty hit reproduces the reference's "lowest
    enclosing domain with a non-empty bucket" rule without walking ancestor
    chains per node.
    """
    if rng is None and bucket_size != 1:
        raise ValueError("bulk deterministic Kandy supports bucket_size=1 only")
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    contact_depth: Dict[int, Dict[int, int]] = {node: {} for node in node_ids}
    n = len(node_ids)
    if n < 2:
        return out, contact_depth
    garr = _as_array(node_ids)
    gen = derive_generator(rng) if rng is not None else None
    resolved = np.zeros((n, space.bits), dtype=bool)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if len(members) < 2:
            continue
        arr = _as_array(members)
        gpos = np.searchsorted(garr, arr)
        depth = len(domain.path)
        for k in range(space.bits):
            lo, i, j = _bucket_ranges(arr, k)
            act = np.flatnonzero((j > i) & ~resolved[gpos, k])
            if act.size == 0:
                continue
            resolved[gpos[act], k] = True

            def record(node, _k=k, _depth=depth):
                contact_depth[node][_k] = _depth

            _bucket_contacts(
                arr, members, act, lo, i, j, k, gen, bucket_size, out, record
            )
    return out, contact_depth


# ---------------------------------------------------------------- CAN family


def _ranges_concat(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[r], ends[r])`` for every row."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum - counts, counts)
        + np.repeat(starts, counts)
    )


def can_link_sets(
    node_ids: Sequence[int], lengths: Sequence[int], bits: int
) -> Dict[int, Set[int]]:
    """Bulk CAN adjacency over sorted padded prefixes.

    For leaf ``x`` of prefix length ``L``, the neighbors differing at bit
    ``p < L`` are exactly the leaves whose interval overlaps ``x``'s sibling
    interval at depth ``p`` — a contiguous run of the padded order: every
    leaf *starting* inside it, plus possibly the one leaf covering its low
    end from below.  Each undirected edge is discovered from both sides
    (the differing bit is within both prefixes), so one directed insert per
    discovery yields the full symmetric table.
    """
    arr = _as_array(node_ids)
    lens = np.asarray(lengths, dtype=np.uint64)
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    n = arr.size
    if n < 2:
        return out
    one = np.uint64(1)
    width = one << (np.uint64(bits) - lens)
    ends = arr + width
    for p in range(int(lens.max())):
        act = np.flatnonzero(lens > p)
        if act.size == 0:
            break
        flip = one << np.uint64(bits - 1 - p)
        lo = arr[act] ^ flip
        hi = lo + width[act]
        first = np.searchsorted(arr, lo, side="right").astype(np.int64) - 1
        last = np.searchsorted(arr, hi, side="left").astype(np.int64)
        # arr[first] starts at or below lo; include it only if it actually
        # reaches lo (always true when the leaves partition the space).
        covers = (first >= 0) & (ends[np.maximum(first, 0)] > lo)
        first = first + 1 - covers
        counts = last - first
        valid = counts > 0
        srcs = np.repeat(act[valid], counts[valid])
        cands = _ranges_concat(first[valid], last[valid])
        for s, c in zip(srcs.tolist(), cands.tolist()):
            out[node_ids[s]].add(node_ids[c])
    return out


def cancan_link_sets(
    node_ids: Sequence[int],
    lengths: Sequence[int],
    space: IdSpace,
    hierarchy: Hierarchy,
    rng=None,
) -> Tuple[Dict[int, Set[int]], Dict[int, Dict[int, int]]]:
    """Bulk Can-Can: lowest-domain hypercube edge per identifier bit.

    Same interval characterization as :func:`can_link_sets`, restricted to
    each domain's member list: candidates at bit ``p`` are the members
    starting inside the sibling interval, or the single member covering it
    from below (its dyadic interval then contains the whole sibling
    interval, so no other member can overlap).  Deterministic choice is the
    first candidate in member order, exactly as the reference's
    ``options[0]``.
    """
    bits = space.bits
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    edge_depth: Dict[int, Dict[int, int]] = {node: {} for node in node_ids}
    n = len(node_ids)
    if n < 2:
        return out, edge_depth
    garr = _as_array(node_ids)
    glen = dict(zip(node_ids, lengths))
    maxlen = int(max(lengths))
    gen = derive_generator(rng) if rng is not None else None
    one = np.uint64(1)
    resolved = np.zeros((n, maxlen), dtype=bool)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if len(members) < 2:
            continue
        arr = _as_array(members)
        lens = np.asarray([glen[m] for m in members], dtype=np.uint64)
        ends = arr + (one << (np.uint64(bits) - lens))
        gpos = np.searchsorted(garr, arr)
        depth = len(domain.path)
        for p in range(int(lens.max())):
            rows = np.flatnonzero((lens > p) & ~resolved[gpos, p])
            if rows.size == 0:
                continue
            flip = one << np.uint64(bits - 1 - p)
            lo = arr[rows] ^ flip
            hi = lo + (one << (np.uint64(bits) - lens[rows]))
            lb = np.searchsorted(arr, lo, side="left").astype(np.int64)
            ub = np.searchsorted(arr, hi, side="left").astype(np.int64)
            pred = lb - 1
            covers = (lb > 0) & (ends[np.maximum(pred, 0)] > lo)
            sel = np.flatnonzero(covers | (ub > lb))
            if sel.size == 0:
                continue
            if gen is None:
                pick = np.where(covers[sel], pred[sel], lb[sel])
            else:
                spans = np.where(covers[sel], 1, ub[sel] - lb[sel])
                pick = np.where(
                    covers[sel], pred[sel], lb[sel] + gen.integers(0, spans)
                )
            resolved[gpos[rows[sel]], p] = True
            for r, c in zip(rows[sel].tolist(), pick.tolist()):
                node = members[r]
                out[node].add(members[c])
                edge_depth[node][p] = depth
    return out, edge_depth


# ------------------------------------------------------- ND-Chord / Crescendo


def _annulus_counts(
    arr: np.ndarray,
    rows: np.ndarray,
    lo: int,
    hi: np.ndarray,
    size: np.uint64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cyclic member ranges ``(start, count)`` of per-row annuli ``[lo, hi)``.

    Mirrors :func:`repro.dhts.ndchord.annulus_choice`: ``count == 0`` is
    disambiguated by testing whether the first candidate actually lies in
    the annulus (then every member does).
    """
    n = int(arr.size)
    base = arr[rows]
    start = np.searchsorted(arr, (base + np.uint64(lo)) % size)
    start[start == n] = 0
    end = np.searchsorted(arr, (base + hi) % size)
    end[end == n] = 0
    count = (end - start) % n
    zero = np.flatnonzero(count == 0)
    if zero.size:
        dist = (arr[start[zero]] - base[zero]) % size
        count[zero] = np.where((dist >= np.uint64(lo)) & (dist < hi[zero]), n, 0)
    return start, count


def ndchord_link_sets(
    node_ids: Sequence[int], space: IdSpace, rng
) -> Dict[int, Set[int]]:
    """Bulk nondeterministic Chord: one random link per distance octave."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    n = len(node_ids)
    if n == 0:
        return out
    arr = _as_array(node_ids)
    gen = derive_generator(rng)
    size = np.uint64(space.size)
    if n >= 2:
        rows = np.arange(n)
        for k in range(space.bits):
            lo = 1 << k
            hi = min(1 << (k + 1), space.size)
            if hi <= lo:
                continue
            hi_arr = np.full(n, np.uint64(hi))
            start, count = _annulus_counts(arr, rows, lo, hi_arr, size)
            act = np.flatnonzero(count > 0)
            if act.size == 0:
                continue
            pick = (start[act] + gen.integers(0, count[act])) % n
            good = arr[pick] != arr[act]
            for row, p in zip(act[good].tolist(), pick[good].tolist()):
                out[node_ids[row]].add(node_ids[p])
    for pos, node in enumerate(node_ids):
        successor = node_ids[(pos + 1) % n]
        if successor != node:
            out[node].add(successor)
    return out


def ndcrescendo_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy, rng
) -> Tuple[Dict[int, Set[int]], Dict[int, int]]:
    """Bulk nondeterministic Crescendo: gap-clipped octaves per domain."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    gap = {node: space.size for node in node_ids}
    depth_of = _depth_of(hierarchy, node_ids)
    gen = derive_generator(rng)
    size = np.uint64(space.size)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if not members:
            continue
        population = len(members)
        arr = _as_array(members)
        if population >= 2:
            gaps = np.asarray([gap[m] for m in members], dtype=np.uint64)
            leaf = np.asarray(
                [depth_of[m] == domain.depth for m in members], dtype=bool
            )
            for k in range(space.bits):
                lo = 1 << k
                if lo >= space.size:
                    break
                hi = np.uint64(min(1 << (k + 1), space.size))
                hi_eff = np.where(leaf, hi, np.minimum(hi, gaps))
                rows = np.flatnonzero(
                    (leaf | (np.uint64(lo) < gaps)) & (hi_eff > np.uint64(lo))
                )
                if rows.size == 0:
                    continue
                start, count = _annulus_counts(arr, rows, lo, hi_eff[rows], size)
                have = np.flatnonzero(count > 0)
                if have.size == 0:
                    continue
                pick = (start[have] + gen.integers(0, count[have])) % population
                chosen_rows = rows[have]
                good = arr[pick] != arr[chosen_rows]
                for r, p in zip(chosen_rows[good].tolist(), pick[good].tolist()):
                    out[members[r]].add(members[p])
        for pos, node in enumerate(members):
            successor = members[(pos + 1) % population]
            if successor != node:
                new_gap = space.ring_distance(node, successor)
                if depth_of[node] == domain.depth or new_gap < gap[node]:
                    out[node].add(successor)
                gap[node] = new_gap
            else:
                gap[node] = space.size
    return out, gap


# ------------------------------------------------------------- mixed / naive


def _finger_matrix(
    arr: np.ndarray, base: np.ndarray, space: IdSpace
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(succ, dist, ks)`` Chord finger snaps of ``base`` over ring ``arr``."""
    size = np.uint64(space.size)
    ks = np.uint64(1) << np.arange(space.bits, dtype=np.uint64)
    targets = (base[:, None] + ks[None, :]) % size
    idx = np.searchsorted(arr, targets)
    idx[idx == arr.size] = 0
    succ = arr[idx]
    dist = (succ - base[:, None]) % size
    return succ, dist, ks


def lan_crescendo_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy
) -> Tuple[Dict[int, Set[int]], Dict[int, int]]:
    """Bulk mixed-level network: complete-graph LANs, Crescendo merges."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    gap = {node: space.size for node in node_ids}
    depth_of = _depth_of(hierarchy, node_ids)
    for domain in _domains_deepest_first(hierarchy):
        members = hierarchy.sorted_members(domain.path)
        if not members:
            continue
        population = len(members)
        leaf_nodes = [m for m in members if depth_of[m] == domain.depth]
        merge_nodes = [m for m in members if depth_of[m] > domain.depth]
        for node in leaf_nodes:
            out[node].update(members)  # self-link dropped by _finalize_links
        if merge_nodes and population >= 2:
            arr = _as_array(members)
            base = _as_array(merge_nodes)
            gaps = np.asarray([gap[m] for m in merge_nodes], dtype=np.uint64)
            succ, dist, ks = _finger_matrix(arr, base, space)
            keep = (dist != 0) & (dist < gaps[:, None]) & (ks[None, :] < gaps[:, None])
            for row, node in enumerate(merge_nodes):
                out[node].update(succ[row][keep[row]].tolist())
        for pos, node in enumerate(members):
            successor = members[(pos + 1) % population]
            gap[node] = (
                space.ring_distance(node, successor)
                if successor != node
                else space.size
            )
    return out, gap


def naive_link_sets(
    node_ids: Sequence[int], space: IdSpace, hierarchy: Hierarchy
) -> Dict[int, Set[int]]:
    """Bulk naive hierarchical Chord: full fingers in every ancestor ring."""
    out: Dict[int, Set[int]] = {node: set() for node in node_ids}
    for domain in hierarchy.domains():
        members = hierarchy.sorted_members(domain.path)
        if len(members) < 2:
            continue
        arr = _as_array(members)
        succ, _, _ = _finger_matrix(arr, arr, space)
        for node, row in zip(members, succ.tolist()):
            out[node].update(row)  # self-links dropped by _finalize_links
    return out


# ----------------------------------------------------- streaming construction


def hierarchy_codes(hierarchy: Hierarchy, node_ids: Sequence[int]) -> np.ndarray:
    """Per-node integer domain labels, one column per hierarchy level.

    Converts a uniform-depth :class:`Hierarchy` (every node's path has the
    same length, as :func:`repro.core.hierarchy.build_uniform_hierarchy`
    produces) into the dense ``(n, depth)`` code matrix the streaming
    builder consumes: column ``j`` maps level-``j`` labels to consecutive
    integers via a per-level vocabulary, so equal code prefixes correspond
    exactly to equal domain-path prefixes.
    """
    paths = [hierarchy.path_of(node) for node in node_ids]
    depth = len(paths[0]) if paths else 0
    if any(len(p) != depth for p in paths):
        raise ValueError("streaming builder requires a uniform-depth hierarchy")
    codes = np.zeros((len(paths), depth), dtype=np.int32)
    for j in range(depth):
        vocab: Dict[str, int] = {}
        col = codes[:, j]
        for i, path in enumerate(paths):
            col[i] = vocab.setdefault(path[j], len(vocab))
    return codes


def stream_crescendo_ids(
    n: int, rng, bits: int = 32
) -> np.ndarray:
    """``n`` distinct sorted uint64 ids drawn without Python-object nodes.

    The rejection top-up mirrors :meth:`IdSpace.random_ids`' distinctness
    guarantee (not its draw sequence — streaming uses a numpy generator
    derived from ``rng``), then a no-replacement choice removes the
    low-id bias a plain truncation of ``unique`` would introduce.
    """
    gen = derive_generator(rng)
    size = 1 << bits
    if n > size:
        raise ValueError(f"cannot draw {n} distinct ids from a {bits}-bit space")
    draw = int(n + max(16, n // 8))
    uniq = np.unique(gen.integers(0, size, size=draw, dtype=np.uint64))
    while uniq.size < n:
        extra = gen.integers(0, size, size=draw, dtype=np.uint64)
        uniq = np.unique(np.concatenate([uniq, extra]))
    if uniq.size > n:
        uniq = np.sort(gen.choice(uniq, size=n, replace=False))
    return uniq


def stream_hierarchy_codes(
    n: int,
    levels: int,
    gen: np.random.Generator,
    fanout: int = 10,
    zipf_exponent: float = 1.25,
) -> np.ndarray:
    """Vectorized twin of ``build_uniform_hierarchy``'s label draws.

    Each of the ``levels - 1`` columns draws from the same Zipf weight
    vector the scalar placement uses
    (:func:`repro.core.hierarchy.zipf_weights`), via one inverse-CDF
    ``searchsorted`` per level instead of ``n * levels`` scalar scans.
    """
    from ..core.hierarchy import zipf_weights

    depth = max(0, levels - 1)
    codes = np.zeros((n, depth), dtype=np.int32)
    if depth:
        cdf = np.cumsum(np.asarray(zipf_weights(fanout, zipf_exponent)))
        for j in range(depth):
            u = gen.random(n)
            codes[:, j] = np.searchsorted(cdf, u, side="right").astype(np.int32)
        np.minimum(codes, fanout - 1, out=codes)  # guard cdf rounding at 1.0
    return codes


def stream_crescendo_csr(
    ids: np.ndarray, codes: np.ndarray, space: IdSpace
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Crescendo link tables straight to CSR — no per-node Python objects.

    Replays the exact deepest-first Canon construction of
    :meth:`repro.dhts.crescendo.CrescendoNetwork.build` over array form:
    at the leaf depth every domain ring takes full Chord fingers over its
    members; at every shallower depth the per-node merge rule keeps a
    union finger iff its clockwise distance beats the node's own-ring gap
    (conditions (a)+(b), with gaps updated from each depth's rings).  For
    the uniform-depth hierarchies the code matrix encodes, the resulting
    ``(indptr, neighbors, nbr_pos)`` is **identical** to compiling the
    bulk-built network — same per-node sorted neighbor lists — which is
    what lets a 2**20-node grid point skip ~10 GB of Python link tables.

    Work per depth is one composite-key sort plus ``bits`` searchsorted
    sweeps (merge depths stop at the largest relevant finger), so peak
    memory is a handful of length-``n``/``E`` arrays.
    """
    ids = np.ascontiguousarray(ids, dtype=np.uint64)
    n = int(ids.size)
    if n == 0:
        raise ValueError("cannot stream an empty network")
    if np.any(ids[1:] <= ids[:-1]):
        raise ValueError("ids must be sorted and distinct")
    depth = int(codes.shape[1]) if codes.ndim == 2 else 0
    bits = space.bits
    mask = np.uint64((1 << bits) - 1)
    full = np.uint64(space.size)
    gap = np.full(n, full, dtype=np.uint64)
    srcs: List[np.ndarray] = []
    dsts: List[np.ndarray] = []

    for d in range(depth, -1, -1):
        # Composite sort key: depth-d domain prefix above the id bits, so
        # each domain is a contiguous run with ids ascending inside it.
        if d:
            radices = codes[:, :d].max(axis=0).astype(np.uint64) + np.uint64(1)
            key = np.zeros(n, dtype=np.uint64)
            for j in range(d):
                key = key * radices[j] + codes[:, j].astype(np.uint64)
            key_span = int(np.prod(radices))
            if key_span.bit_length() + bits > 64:
                raise ValueError(
                    f"domain keys need {key_span.bit_length()} bits over a "
                    f"{bits}-bit id space; composite keys exceed 64 bits"
                )
            comp = (key << np.uint64(bits)) | ids
            order = np.argsort(comp, kind="stable")
            comp = comp[order]
        else:
            key = None
            order = np.arange(n, dtype=np.int64)
            comp = ids
        sid = ids[order]
        # Per-position segment bounds [lo, hi) of each node's domain run.
        if key is not None:
            ksorted = key[order]
            bound = np.flatnonzero(ksorted[1:] != ksorted[:-1]) + 1
            starts = np.concatenate([[0], bound])
            ends = np.concatenate([bound, [n]])
            seg_of = np.searchsorted(starts, np.arange(n), side="right") - 1
            lo = starts[seg_of]
            hi = ends[seg_of]
        else:
            lo = np.zeros(n, dtype=np.int64)
            hi = np.full(n, n, dtype=np.int64)
        leaf = d == depth
        if leaf:
            kmax = bits
            active = np.arange(n, dtype=np.int64)
        else:
            gs = gap[order]
            # Condition (a) caps useful fingers at 2**k < gap.
            max_gap = int(gs.max())
            kmax = min(bits, max(max_gap - 1, 1).bit_length())
            active = np.flatnonzero(gs > np.uint64(1))
        prefix = comp & ~mask
        for k in range(kmax):
            if not leaf:
                act = active[gap[order[active]] > np.uint64(1 << k)]
                if act.size == 0:
                    break
            else:
                act = active
            target = (sid[act] + np.uint64(1 << k)) & mask
            idx = np.searchsorted(comp, prefix[act] | target, side="left")
            wrap = idx == hi[act]
            idx[wrap] = lo[act][wrap]
            dist = (sid[idx] - sid[act]) & mask
            keep = dist != np.uint64(0)
            if not leaf:
                keep &= dist < gap[order[act]]
            kept = act[keep]
            if kept.size:
                srcs.append(order[kept].astype(np.uint32))
                dsts.append(order[idx[keep]].astype(np.uint32))
        # This depth's rings become each member's own ring for the merges
        # above: gap = clockwise distance to the in-segment successor
        # (wrapping to the segment start), or the whole space when alone.
        nxt = np.arange(1, n + 1, dtype=np.int64)
        at_end = nxt == hi
        nxt[at_end] = lo[at_end]
        ring_gap = (sid[nxt] - sid) & mask
        single = hi - lo == 1
        ring_gap[single] = full
        gap[order] = ring_gap

    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        edge = src.astype(np.uint64) * np.uint64(n) + dst.astype(np.uint64)
        edge = np.unique(edge)
        src = (edge // np.uint64(n)).astype(np.int64)
        dst = edge % np.uint64(n)
    else:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.uint64)
    counts = np.bincount(src, minlength=n)
    idx_dt = np.int32 if n < 2**31 and int(dst.size) < 2**31 else np.int64
    indptr = np.zeros(n + 1, dtype=idx_dt)
    np.cumsum(counts, out=indptr[1:])
    neighbors = ids[dst.astype(np.int64)]
    nbr_pos = dst.astype(idx_dt)
    return indptr, neighbors, nbr_pos


def stream_compiled_crescendo(
    size: int,
    levels: int,
    rng,
    space: Optional[IdSpace] = None,
    fanout: int = 10,
    zipf_exponent: float = 1.25,
):
    """Build a population directly into compiled CSR form.

    Returns ``(compiled, top_codes)``: a routable
    :class:`~repro.perf.kernels.CompiledNetwork` (``network`` is ``None``
    — no Python node/link objects ever exist) plus the per-position
    top-level-domain code column for crossing counts.  Ids and hierarchy
    labels come from a generator derived from ``rng``, so populations are
    reproducible per seed token (they are *not* draw-for-draw identical
    to the scalar placement; equivalence to the object path is asserted
    structurally by the oracle test, on shared ids/codes).
    """
    from .kernels import CompiledNetwork

    space = space or IdSpace()
    ids = stream_crescendo_ids(size, rng, bits=space.bits)
    gen = derive_generator(rng)
    codes = stream_hierarchy_codes(
        size, levels, gen, fanout=fanout, zipf_exponent=zipf_exponent
    )
    indptr, neighbors, nbr_pos = stream_crescendo_csr(ids, codes, space)
    compiled = CompiledNetwork.from_arrays(
        metric="ring",
        bits=space.bits,
        ids=ids,
        indptr=indptr,
        neighbors=neighbors,
        nbr_pos=nbr_pos,
    )
    top = (
        codes[:, 0].copy()
        if codes.ndim == 2 and codes.shape[1]
        else np.full(size, -1, dtype=np.int32)
    )
    return compiled, top
