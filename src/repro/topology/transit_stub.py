"""A GT-ITM-style transit-stub internet model (Section 5.2).

The paper generates a 2040-router graph with GT-ITM: routers are grouped
into *transit domains* of *transit nodes*; a *stub domain* (a small graph of
*stub nodes*) hangs off each transit node.  Link latencies are fixed by
class: 100 ms transit-transit, 20 ms transit-stub, 5 ms stub-stub, and 1 ms
from an end host (DHT node) to its stub router.

This module reproduces that model from scratch (GT-ITM itself is not
available offline): the defaults (4 transit domains x 10 transit nodes x 5
stub domains x 10 stub nodes) give exactly 2040 routers.  The paper consumes
only (a) pairwise router latencies and (b) the natural five-level location
hierarchy (root, transit domain, transit node, stub domain, stub node), both
of which are exposed here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from ..core.hierarchy import DomainPath, Hierarchy
from ..core.idspace import IdSpace
from ..obs import metrics as obs_metrics

TRANSIT_TRANSIT_MS = 100.0
TRANSIT_STUB_MS = 20.0
STUB_STUB_MS = 5.0
HOST_STUB_MS = 1.0


@dataclass(frozen=True)
class TopologyParams:
    """Shape of the transit-stub graph.  Defaults reproduce the paper's 2040 routers."""

    transit_domains: int = 4
    transit_per_domain: int = 10
    stub_domains_per_transit: int = 5
    stub_per_domain: int = 10
    #: extra random edges per transit-domain graph / stub-domain graph beyond
    #: the spanning ring that guarantees connectivity.
    extra_edge_fraction: float = 0.3

    @property
    def transit_count(self) -> int:
        return self.transit_domains * self.transit_per_domain

    @property
    def stub_count(self) -> int:
        return (
            self.transit_count * self.stub_domains_per_transit * self.stub_per_domain
        )

    @property
    def router_count(self) -> int:
        return self.transit_count + self.stub_count


class TransitStubTopology:
    """The router graph, its all-pairs latencies, and DHT node attachment.

    Routers are integers: transit routers first, then stub routers.  Each
    stub router carries a *location* tuple ``(transit_domain, transit_node,
    stub_domain, stub_node)`` which becomes the DHT node's domain path.
    """

    def __init__(self, params: TopologyParams = TopologyParams(), rng=None) -> None:
        import random as _random

        self.params = params
        self.rng = rng if rng is not None else _random.Random(0)
        self._edges: List[Tuple[int, int, float]] = []
        self.stub_location: Dict[int, Tuple[int, int, int, int]] = {}
        self._build_graph()
        self._latency = self._all_pairs_latency()
        self._attachment: Dict[int, int] = {}
        self._latency_table = None  # lazy LatencyTable, dropped on attach
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.gauge("topology.latency_matrix_bytes").set(
                self._latency.nbytes
            )

    # ------------------------------------------------------------- building

    def _connected_random_graph(
        self, vertices: Sequence[int], latency: float
    ) -> None:
        """A spanning ring plus random chords — connected, low diameter."""
        count = len(vertices)
        order = list(vertices)
        self.rng.shuffle(order)
        for i in range(count):
            if count > 1:
                self._edges.append((order[i], order[(i + 1) % count], latency))
        extra = int(count * self.params.extra_edge_fraction)
        for _ in range(extra):
            a, b = self.rng.sample(order, 2) if count > 1 else (order[0], order[0])
            if a != b:
                self._edges.append((a, b, latency))

    def _build_graph(self) -> None:
        p = self.params
        # Transit routers: ids [0, transit_count).
        transit_of_domain: List[List[int]] = []
        nxt = 0
        for _ in range(p.transit_domains):
            domain = list(range(nxt, nxt + p.transit_per_domain))
            nxt += p.transit_per_domain
            transit_of_domain.append(domain)
            self._connected_random_graph(domain, TRANSIT_TRANSIT_MS)
        # Inter-domain transit edges: a ring of domains plus random chords,
        # connecting random representative routers (100 ms).
        for i in range(p.transit_domains):
            if p.transit_domains > 1:
                a = self.rng.choice(transit_of_domain[i])
                b = self.rng.choice(transit_of_domain[(i + 1) % p.transit_domains])
                self._edges.append((a, b, TRANSIT_TRANSIT_MS))
        # Stub routers: ids [transit_count, router_count).
        sid = p.transit_count
        for td in range(p.transit_domains):
            for tn_index, transit_router in enumerate(transit_of_domain[td]):
                for sd in range(p.stub_domains_per_transit):
                    stub_routers = list(range(sid, sid + p.stub_per_domain))
                    sid += p.stub_per_domain
                    for sn_index, router in enumerate(stub_routers):
                        self.stub_location[router] = (td, tn_index, sd, sn_index)
                    self._connected_random_graph(stub_routers, STUB_STUB_MS)
                    # Attach the stub domain to its transit node (20 ms).
                    gateway = self.rng.choice(stub_routers)
                    self._edges.append((transit_router, gateway, TRANSIT_STUB_MS))

    def _all_pairs_latency(self) -> np.ndarray:
        count = self.params.router_count
        rows = [a for a, _, _ in self._edges] + [b for _, b, _ in self._edges]
        cols = [b for _, b, _ in self._edges] + [a for a, _, _ in self._edges]
        vals = [w for _, _, w in self._edges] * 2
        graph = csr_matrix((vals, (rows, cols)), shape=(count, count))
        dist = shortest_path(graph, method="D", directed=False)
        if not np.isfinite(dist).all():
            raise RuntimeError("transit-stub graph is not connected")
        return dist.astype(np.float32)

    # ------------------------------------------------------------ interface

    @property
    def stub_routers(self) -> List[int]:
        # stub_location is fixed after _build_graph, so sort once.
        cached = self.__dict__.get("_stub_routers")
        if cached is None:
            cached = self.__dict__["_stub_routers"] = sorted(self.stub_location)
        return cached

    def router_latency(self, a: int, b: int) -> float:
        """Shortest-path latency between two routers (ms)."""
        return float(self._latency[a, b])

    def attach_nodes(
        self, node_ids: Sequence[int], rng=None
    ) -> Hierarchy:
        """Attach DHT nodes uniformly to stub routers (1 ms access links).

        Returns the induced five-level hierarchy: each node's domain path is
        ``(transit_domain, transit_node, stub_domain, stub_node)``, giving
        rings at the root, transit-domain, transit-node, stub-domain and
        stub-node levels.
        """
        rng = rng if rng is not None else self.rng
        hierarchy = Hierarchy()
        for node_id in node_ids:
            hierarchy.place(node_id, self.attach_node(node_id, rng))
        return hierarchy

    def attach_node(self, node_id: int, rng=None) -> DomainPath:
        """Attach one DHT node to a uniform random stub router.

        Returns the node's domain path; used by churn drivers to attach
        nodes that join after the initial population.  Draws exactly the
        randomness one :meth:`attach_nodes` iteration draws.
        """
        rng = rng if rng is not None else self.rng
        stubs = self.stub_routers
        router = stubs[rng.randrange(len(stubs))]
        self._attachment[node_id] = router
        self._latency_table = None
        td, tn, sd, sn = self.stub_location[router]
        path: DomainPath = (f"t{td}", f"n{tn}", f"s{sd}", f"r{sn}")
        return path

    def router_of(self, node_id: int) -> int:
        """The stub router a DHT node is attached to."""
        try:
            return self._attachment[node_id]
        except KeyError:
            raise KeyError(
                f"node {node_id} is not attached to this topology "
                f"(call attach_nodes/attach_node first; "
                f"{len(self._attachment)} nodes are attached)"
            ) from None

    def node_latency(self, a: int, b: int) -> float:
        """End-to-end latency between two attached DHT nodes (ms)."""
        if a == b:
            return 0.0
        ra, rb = self.router_of(a), self.router_of(b)
        return 2 * HOST_STUB_MS + float(self._latency[ra, rb])

    def latency_table(self, node_ids: Optional[Sequence[int]] = None):
        """A :class:`repro.perf.latency.LatencyTable` over the attachment.

        With no ``node_ids`` the table covers every attached node and is
        cached until the next attachment; the batch routing kernels and
        the measurement harness use it to accumulate per-hop latency with
        vectorized gathers instead of one :meth:`node_latency` call per
        hop (totals stay bit-identical — see :mod:`repro.perf.latency`).
        """
        from ..perf.latency import LatencyTable

        if node_ids is not None:
            return LatencyTable.from_topology(self, node_ids)
        if self._latency_table is None:
            self._latency_table = LatencyTable.from_topology(self)
        return self._latency_table

    def path_ms(self, path: Sequence[int]) -> float:
        """Latency of a hop path over the *current* attachment.

        Delegates to the cached latency table (rebuilt after attachments),
        so churn drivers can hand the topology itself to
        :func:`repro.simulation.churn.run_churn` as the latency oracle and
        keep vectorized accumulation while nodes join dynamically.
        """
        return self.latency_table().path_ms(path)

    def average_direct_latency(self, samples: int, rng=None) -> float:
        """Mean node-to-node shortest-path latency over random pairs.

        This is the paper's stretch denominator: stretch 1 means overlay
        routing is as fast as direct IP routing between the two hosts.
        """
        rng = rng if rng is not None else self.rng
        nodes = list(self._attachment)
        if len(nodes) < 2:
            return 0.0
        total = 0.0
        for _ in range(samples):
            a, b = rng.sample(nodes, 2)
            total += self.node_latency(a, b)
        return total / samples
