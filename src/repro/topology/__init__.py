"""Transit-stub internet topology model (GT-ITM substitute, Section 5.2)."""

from .transit_stub import (
    HOST_STUB_MS,
    STUB_STUB_MS,
    TRANSIT_STUB_MS,
    TRANSIT_TRANSIT_MS,
    TopologyParams,
    TransitStubTopology,
)

__all__ = [
    "HOST_STUB_MS",
    "STUB_STUB_MS",
    "TRANSIT_STUB_MS",
    "TRANSIT_TRANSIT_MS",
    "TopologyParams",
    "TransitStubTopology",
]
