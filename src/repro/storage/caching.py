"""Hierarchical caching of query answers (Section 4.2).

Inter-domain path convergence means every query for key k issued from inside
domain D exits D through one *proxy node* — the closest predecessor of k
within D (also where content with storage domain D would live).  Answers are
therefore cached at the proxy node of **each** domain level crossed on the
way to the answer, annotated with the level number it serves (level 1 =
highest crossed domain; larger numbers = deeper domains).

Cache replacement exploits the annotations: copies with *larger* level
numbers (deeper domains) are evicted preferentially, since a lost low-level
copy is likely re-served by the copy one level up.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.hierarchy import DomainPath, lca
from ..obs.metrics import record_counter
from .store import HierarchicalStore, SearchResult


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LevelAwareCache:
    """A per-node cache whose eviction prefers deeper (larger) level labels.

    Within a level class, the least recently used entry goes first.  A
    re-inserted key keeps the smaller (higher) level label, as the paper
    prescribes for a node that is proxy for several levels at once.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[object, int]]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key_hash: int) -> Optional[object]:
        """Cached value for the key (refreshing its recency), else None."""
        entry = self._entries.get(key_hash)
        if entry is None:
            return None
        self._entries.move_to_end(key_hash)
        return entry[0]

    def level_of(self, key_hash: int) -> Optional[int]:
        """The entry's level annotation, or None if absent."""
        entry = self._entries.get(key_hash)
        return entry[1] if entry else None

    def put(self, key_hash: int, value: object, level: int) -> None:
        """Insert/refresh an entry, evicting per the level policy if full."""
        existing = self._entries.get(key_hash)
        if existing is not None:
            level = min(level, existing[1])
        self._entries[key_hash] = (value, level)
        self._entries.move_to_end(key_hash)
        while len(self._entries) > self.capacity:
            self._evict_one()

    def _evict_one(self) -> None:
        worst_level = max(level for _, level in self._entries.values())
        for key_hash, (_, level) in self._entries.items():  # LRU order
            if level == worst_level:
                del self._entries[key_hash]
                self.evictions += 1
                record_counter("storage.cache.evictions")
                return


class CachingStore:
    """A :class:`HierarchicalStore` augmented with proxy-node caching.

    ``get`` first walks the greedy path checking caches (a hit at the proxy
    of the lowest domain shared with a previous querier short-circuits the
    lookup); on a miss that is eventually answered, the answer is cached at
    the proxy node of every domain level crossed, annotated with its level.
    """

    def __init__(self, store: HierarchicalStore, capacity: int = 128) -> None:
        self.store = store
        self.network = store.network
        self.hierarchy = store.hierarchy
        self.capacity = capacity
        self._caches: Dict[int, LevelAwareCache] = {}
        self.stats = CacheStats()

    def cache_at(self, node: int) -> LevelAwareCache:
        """The (lazily created) cache hosted at ``node``."""
        cache = self._caches.get(node)
        if cache is None:
            cache = LevelAwareCache(self.capacity)
            self._caches[node] = cache
        return cache

    def put(self, origin: int, key: object, value: object, **kwargs):
        """Insert content (delegates to the underlying hierarchical store)."""
        return self.store.put(origin, key, value, **kwargs)

    def get(self, origin: int, key: object) -> SearchResult:
        """Cache-aware hierarchical lookup (see class docstring)."""
        key_hash = self.store.space.hash_key(key)
        # Stage 1: walk the greedy path looking for cached or stored answers.
        path = [origin]
        cur = origin
        result: Optional[SearchResult] = None
        origin_path = self.hierarchy.path_of(origin)
        while True:
            cached = self._caches.get(cur)
            hit = cached.get(key_hash) if cached else None
            if hit is not None:
                self.stats.hits += 1
                record_counter("storage.cache.hits")
                result = SearchResult(key, [hit], path, cur, False, 0)
                break
            routing_domain = lca(origin_path, self.hierarchy.path_of(cur))
            local = self.store._local_answer(cur, key, key_hash, routing_domain)
            if local is not None:
                values, via_pointer, pointer_hops, content_node = local
                self.stats.misses += 1
                record_counter("storage.cache.misses")
                result = SearchResult(
                    key, values, path, cur, via_pointer, pointer_hops,
                    content_node,
                )
                break
            nxt = self.store._greedy_step(cur, key_hash)
            if nxt is None:
                self.stats.misses += 1
                record_counter("storage.cache.misses")
                return SearchResult(key, [], path, None, False, 0)
            path.append(nxt)
            cur = nxt
        # Stage 2: install the answer at the proxy node of every level
        # crossed between the origin and the answering node.
        if result.found and result.values:
            # Cache levels are computed against the node physically holding
            # the content: an answer fetched through a pointer came from the
            # pointer's home, not the pointer node itself.
            self._install(
                origin,
                result.content_node or result.found_at,
                key_hash,
                result.values[0],
            )
        return result

    def _install(self, origin: int, answered_at: int, key_hash: int, value: object) -> None:
        origin_path = self.hierarchy.path_of(origin)
        answer_domain = lca(origin_path, self.hierarchy.path_of(answered_at))
        # Every ancestor domain of the origin strictly deeper than the shared
        # domain was exited on the way to the answer: cache at its proxy.
        # The highest such domain is annotated level 1, the next level 2, and
        # so on down to the origin's leaf domain (paper's example: an answer
        # found outside CS but within Stanford is cached at p(Q, CS) with
        # level 1 and at p(Q, DB) with level 2).
        for depth in range(len(answer_domain) + 1, len(origin_path) + 1):
            domain: DomainPath = origin_path[:depth]
            proxy = self.store.home_node(key_hash, domain)
            level = depth - len(answer_domain)
            self.cache_at(proxy).put(key_hash, value, level)
            self.stats.insertions += 1
            record_counter("storage.cache.insertions")

    def eviction_count(self) -> int:
        """Total evictions across every node's cache."""
        return sum(cache.evictions for cache in self._caches.values())
