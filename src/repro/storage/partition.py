"""Partition balance via smart ID selection (Section 4.3).

Random ID selection leaves a Theta(log^2 n) ratio between the largest and
smallest partitions of the hash space.  The paper's scheme (Manku & Ganesan)
reduces the ratio to a constant of 4 w.h.p. with O(log n) join messages:

  A joining node picks a random ID, routes to the node n' responsible for
  it, examines the nodes sharing a B-bit ID prefix with n' (B chosen so only
  a logarithmic number of nodes share it), and **bisects the largest
  partition** among them; the bisection point becomes its ID.  Partitions
  and IDs then form a binary tree.  Deletions are handled symmetrically.

For hierarchies, global balance alone does not balance each level.  The
hierarchical variant additionally spreads the *top* ~log2(c) ID bits of the
c members of each lowest-level domain as far apart as possible (first node
0..., second 1..., third 00/11..., ...; Section 4.3), which the paper states
suffices to balance every level.  We realise the spreading with the
bit-reversed counter (van der Corput sequence), which maximises the minimum
pairwise prefix distance; the remaining bits are chosen by bisection within
the prefix cell.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Tuple

from ..core.hierarchy import DomainPath, Hierarchy
from ..core.idspace import IdSpace, predecessor_index


class BalancedIdAllocator:
    """Bisection-based ID allocation over a single ring.

    Tracks the live IDs in sorted order; :meth:`join` returns the ID a new
    node should adopt, :meth:`leave` retires one.  The max/min partition
    ratio stays bounded by a small constant (4 w.h.p. in the paper; exactly
    <= 4 in every randomized run we test), versus Theta(log^2 n) for random
    IDs.
    """

    def __init__(self, space: IdSpace, rng) -> None:
        self.space = space
        self.rng = rng
        self.ids: List[int] = []

    def __len__(self) -> int:
        return len(self.ids)

    def _prefix_bits(self) -> int:
        """B such that ~4*log2(n) nodes share each B-bit prefix.

        The paper only requires a logarithmic cohort; empirically a cohort
        of ~log n occasionally misses the largest partition class (ratio 8),
        while ~4 log n achieves the claimed ratio of 4 w.h.p.
        """
        count = len(self.ids)
        if count < 4:
            return 0
        return max(0, int(math.log2(count / max(1.0, math.log2(count)))) - 2)

    def partition_size(self, node_id: int) -> int:
        """Size of the partition [node, successor) managed by a node."""
        pos = self.ids.index(node_id)
        nxt = self.ids[(pos + 1) % len(self.ids)]
        return self.space.ring_distance(node_id, nxt) or self.space.size

    def join(self) -> int:
        """Allocate an ID for a joining node and insert it."""
        if not self.ids:
            first = self.space.random_id(self.rng)
            self.ids.append(first)
            return first
        probe = self.space.random_id(self.rng)
        anchor = self.ids[predecessor_index(self.ids, probe)]
        prefix_bits = self._prefix_bits()
        prefix = self.space.prefix(anchor, prefix_bits)
        cohort = [
            i for i in self.ids if self.space.prefix(i, prefix_bits) == prefix
        ]
        victim = max(cohort, key=self.partition_size)
        new_id = self.space.add(victim, self.partition_size(victim) // 2)
        if new_id in set(self.ids):
            raise RuntimeError("identifier space exhausted in this region")
        bisect.insort(self.ids, new_id)
        return new_id

    def leave(self, node_id: int) -> None:
        """Retire an ID (its partition merges into its predecessor's)."""
        self.ids.remove(node_id)

    def partition_ratio(self) -> float:
        """Largest/smallest partition over live nodes."""
        if len(self.ids) < 2:
            return 1.0
        sizes = [self.partition_size(i) for i in self.ids]
        return max(sizes) / min(sizes)


def random_partition_ratio(space: IdSpace, count: int, rng) -> float:
    """Baseline: the partition ratio under plain random ID selection."""
    ids = sorted(space.random_ids(count, rng))
    sizes = [
        space.ring_distance(ids[i], ids[(i + 1) % count]) or space.size
        for i in range(count)
    ]
    return max(sizes) / max(1, min(sizes))


def bit_reverse(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value`` (van der Corput index)."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


class HierarchicalIdAllocator:
    """Per-domain prefix spreading + bisection suffixes (Section 4.3).

    The j-th node to join a lowest-level domain takes a top-bit prefix from
    the bit-reversed counter at the current width ``ceil(log2(j+1))`` —
    guaranteeing members of every domain are maximally spread at every
    prefix length — and fills the remaining bits by bisecting the largest
    gap among same-prefix domain members (falling back to random bits for
    the first member of a cell).

    Balance at the lowest level propagates to all levels of the hierarchy;
    :meth:`level_ratio` lets tests verify this directly.
    """

    #: prefix width ceiling; wider prefixes than this carry no extra balance.
    MAX_SPREAD_BITS = 24

    def __init__(self, space: IdSpace, rng) -> None:
        self.space = space
        self.rng = rng
        self.hierarchy = Hierarchy()
        self._join_counter: Dict[DomainPath, int] = {}

    def join(self, domain: DomainPath) -> int:
        """Allocate an ID for a node joining the given lowest-level domain."""
        index = self._join_counter.get(domain, 0)
        self._join_counter[domain] = index + 1
        width = min(self.MAX_SPREAD_BITS, max(1, (index + 1).bit_length()))
        prefix = bit_reverse(index % (1 << width), width)
        suffix_bits = self.space.bits - width
        cell_lo = prefix << suffix_bits
        # Bisect against *every* node already in the cell (domains share the
        # bit-reversed prefix sequence), so the global ring is a bisection
        # tree too; per-domain balance comes from the prefix spreading.
        members = [
            i
            for i in self.hierarchy.sorted_members(())
            if self.space.prefix(i, width) == prefix
        ]
        node_id = self._fill_cell(cell_lo, suffix_bits, members)
        self.hierarchy.place(node_id, domain)
        return node_id

    def _fill_cell(self, cell_lo: int, suffix_bits: int, members: List[int]) -> int:
        """Bisect the largest gap of the cell (midpoint when the cell is empty).

        Both cell boundaries participate, so positions form a deterministic
        bisection lattice; distinct domains landing in the same cell simply
        split it further instead of colliding.
        """
        cell_size = 1 << suffix_bits
        if not members:
            return cell_lo + cell_size // 2
        boundaries = [cell_lo] + sorted(members) + [cell_lo + cell_size]
        best_gap, start = max(
            (nxt - cur, cur) for cur, nxt in zip(boundaries, boundaries[1:])
        )
        if best_gap < 2:
            raise RuntimeError("identifier cell exhausted")
        candidate = start + best_gap // 2
        if candidate in self.hierarchy:
            raise RuntimeError("identifier cell exhausted")
        return candidate

    def leave(self, node_id: int) -> None:
        """Retire a node from its domain."""
        self.hierarchy.remove(node_id)

    def level_ratio(self, domain: DomainPath = ()) -> float:
        """Partition ratio of the ring formed by one domain's members."""
        members = self.hierarchy.sorted_members(domain)
        if len(members) < 2:
            return 1.0
        sizes = [
            self.space.ring_distance(members[i], members[(i + 1) % len(members)])
            or self.space.size
            for i in range(len(members))
        ]
        return max(sizes) / max(1, min(sizes))
