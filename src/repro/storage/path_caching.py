"""The flat-DHT caching baseline the paper compares against (Section 4.2).

"Caching solutions for flat DHT structures all require that the query answer
be cached all along the path used to route the query.  This implies that
there needs to be many copies made of each query answer, leading to higher
overhead.  Moreover, the absence of guaranteed local path convergence
implies that these cached copies cannot be exploited to the fullest extent."

:class:`PathCachingStore` implements exactly that baseline over any
ring-metric network: on a miss, the answer is cached at *every* node of the
query path.  Comparing its copy count and hit rate with
:class:`~repro.storage.caching.CachingStore` (one copy per crossed level,
placed at the convergence proxy) quantifies the paper's argument.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.routing import _best_ring_step
from .store import HierarchicalStore, SearchResult


@dataclass
class PathCacheStats:
    hits: int = 0
    misses: int = 0
    copies_created: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PathCachingStore:
    """Flat path caching: every node on a miss path stores a copy (LRU)."""

    def __init__(self, store: HierarchicalStore, capacity: int = 128) -> None:
        self.store = store
        self.network = store.network
        self.capacity = capacity
        self._caches: Dict[int, "OrderedDict[int, object]"] = {}
        self.stats = PathCacheStats()

    def _cache(self, node: int) -> "OrderedDict[int, object]":
        cache = self._caches.get(node)
        if cache is None:
            cache = OrderedDict()
            self._caches[node] = cache
        return cache

    def put(self, origin: int, key: object, value: object, **kwargs):
        """Insert content (delegates to the underlying hierarchical store)."""
        return self.store.put(origin, key, value, **kwargs)

    def get(self, origin: int, key: object) -> SearchResult:
        """Lookup; on a miss, copies the answer at every path node."""
        key_hash = self.store.space.hash_key(key)
        path = [origin]
        cur = origin
        result: Optional[SearchResult] = None
        from ..core.hierarchy import lca

        origin_path = self.store.hierarchy.path_of(origin)
        while True:
            cache = self._caches.get(cur)
            if cache is not None and key_hash in cache:
                cache.move_to_end(key_hash)
                self.stats.hits += 1
                result = SearchResult(key, [cache[key_hash]], path, cur, False, 0)
                break
            routing_domain = lca(origin_path, self.store.hierarchy.path_of(cur))
            local = self.store._local_answer(cur, key, key_hash, routing_domain)
            if local is not None:
                values, via_pointer, pointer_hops, content_node = local
                self.stats.misses += 1
                result = SearchResult(
                    key, values, path, cur, via_pointer, pointer_hops,
                    content_node,
                )
                break
            nxt = self.store._greedy_step(cur, key_hash)
            if nxt is None:
                self.stats.misses += 1
                return SearchResult(key, [], path, None, False, 0)
            path.append(nxt)
            cur = nxt
        if result.found and result.values:
            # Flat-DHT policy: copy the answer at EVERY node on the path.
            for node in result.path:
                cache = self._cache(node)
                if key_hash not in cache:
                    self.stats.copies_created += 1
                cache[key_hash] = result.values[0]
                cache.move_to_end(key_hash)
                while len(cache) > self.capacity:
                    cache.popitem(last=False)
        return result

    def total_cached_copies(self) -> int:
        """Copies currently resident across all node caches."""
        return sum(len(cache) for cache in self._caches.values())
