"""Hierarchical storage, retrieval and access control (Section 4.1).

A flat DHT gives no choice about placement: a key-value pair lives at the
unique node responsible for the key.  Canon's hierarchy adds two knobs when a
node ``n`` inserts content:

- **storage domain** ``Ds``: a domain containing ``n`` within which the
  content must physically reside.  The pair is stored at the node of ``Ds``
  responsible for the key under the DHT restricted to ``Ds``'s members.
- **access domain** ``Da``: a superset (ancestor) of ``Ds`` whose nodes may
  retrieve the content.  When ``Da`` is larger than ``Ds``, an additional
  *pointer* is placed at the responsible node within ``Da``.

Search is ordinary hierarchical greedy routing with two changes: nodes along
the path may answer from local content — but only content whose access
domain is no smaller than the current *routing level* (the lowest common
ancestor of the query source and the current node) — and pointers are
resolved by fetching the content from the pointed-to node.  A query for
content stored locally in a domain therefore never leaves the domain, and a
query automatically retrieves exactly the content its issuer is permitted to
access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.hierarchy import DomainPath, ROOT, is_ancestor, lca
from ..core.routing import MAX_HOPS, Route
from ..dhts.crescendo import CrescendoNetwork
from ..obs.metrics import record_counter


@dataclass
class StoredItem:
    """A key-value pair with its placement policy."""

    key: object
    key_hash: int
    value: object
    storage_domain: DomainPath
    access_domain: DomainPath

    def visible_at_level(self, routing_domain: DomainPath) -> bool:
        """Access check: the access domain must contain the routing domain."""
        return is_ancestor(self.access_domain, routing_domain)


@dataclass
class Pointer:
    """Indirection stored in the access domain pointing at the content home."""

    key_hash: int
    home_node: int
    storage_domain: DomainPath
    access_domain: DomainPath

    def visible_at_level(self, routing_domain: DomainPath) -> bool:
        """Access check: the access domain must contain the routing domain."""
        return is_ancestor(self.access_domain, routing_domain)


@dataclass
class SearchResult:
    """Outcome of a hierarchical lookup."""

    key: object
    values: List[object]
    path: List[int]
    found_at: Optional[int]
    via_pointer: bool
    #: extra hops spent resolving the pointer indirection (fetch + return).
    pointer_hops: int = 0
    #: the node physically holding the returned value (differs from
    #: ``found_at`` when the answer came through a pointer).
    content_node: Optional[int] = None

    @property
    def found(self) -> bool:
        return self.found_at is not None

    @property
    def hops(self) -> int:
        return len(self.path) - 1 + self.pointer_hops


class HierarchicalStore:
    """Content storage over a built Crescendo (or compatible ring) network.

    The network must expose ``hierarchy``, ``space``, ``links`` and
    ``responsible_node(key, within=...)`` — i.e. any ring-metric
    :class:`~repro.core.network.DHTNetwork` whose greedy routes pass through
    the per-domain responsible nodes (Crescendo's convergence property).
    """

    def __init__(self, network: CrescendoNetwork) -> None:
        network.require_built()
        self.network = network
        self.space = network.space
        self.hierarchy = network.hierarchy
        self._items: Dict[int, Dict[int, List[StoredItem]]] = {}
        self._pointers: Dict[int, Dict[int, List[Pointer]]] = {}

    # -------------------------------------------------------------- helpers

    def home_node(self, key_hash: int, domain: DomainPath) -> int:
        """The node of ``domain`` responsible for the key (Section 4.1)."""
        members = self.hierarchy.sorted_members(domain)
        if not members:
            raise ValueError(f"domain {domain!r} has no members")
        return self.network.responsible_node(key_hash, within=members)

    def items_at(self, node: int) -> List[StoredItem]:
        """All items physically stored at ``node``."""
        return [item for bucket in self._items.get(node, {}).values() for item in bucket]

    def pointers_at(self, node: int) -> List[Pointer]:
        """All pointers hosted at ``node``."""
        return [p for bucket in self._pointers.get(node, {}).values() for p in bucket]

    # ------------------------------------------------------------------ put

    def put(
        self,
        origin: int,
        key: object,
        value: object,
        storage_domain: Optional[DomainPath] = None,
        access_domain: Optional[DomainPath] = None,
    ) -> Tuple[int, Optional[int]]:
        """Insert content; returns ``(home node, pointer node or None)``.

        Defaults are global storage and global access.  The storage domain
        must contain the inserting node; the access domain must be an
        ancestor (superset) of the storage domain.
        """
        storage_domain = ROOT if storage_domain is None else storage_domain
        access_domain = ROOT if access_domain is None else access_domain
        origin_path = self.hierarchy.path_of(origin)
        if not is_ancestor(storage_domain, origin_path):
            raise ValueError(
                f"storage domain {storage_domain!r} does not contain node {origin}"
            )
        if not is_ancestor(access_domain, storage_domain):
            raise ValueError(
                f"access domain {access_domain!r} is not a superset of "
                f"storage domain {storage_domain!r}"
            )
        key_hash = self.space.hash_key(key)
        record_counter("storage.puts")
        home = self.home_node(key_hash, storage_domain)
        item = StoredItem(key, key_hash, value, storage_domain, access_domain)
        self._items.setdefault(home, {}).setdefault(key_hash, []).append(item)
        pointer_node: Optional[int] = None
        if access_domain != storage_domain:
            pointer_node = self.home_node(key_hash, access_domain)
            if pointer_node != home:
                pointer = Pointer(key_hash, home, storage_domain, access_domain)
                self._pointers.setdefault(pointer_node, {}).setdefault(
                    key_hash, []
                ).append(pointer)
        return home, pointer_node

    # ------------------------------------------------------------------ get

    def get(
        self,
        origin: int,
        key: object,
        first_match: bool = True,
    ) -> SearchResult:
        """Hierarchical lookup from ``origin`` (Section 4.1 search protocol).

        Routes greedily toward the key; every node along the path may answer
        from local content passing the access check for the current routing
        level.  With ``first_match`` (single-value applications) the search
        stops at the first hit — so a query for locally stored content never
        leaves the domain.
        """
        key_hash = self.space.hash_key(key)
        record_counter("storage.gets")
        origin_path = self.hierarchy.path_of(origin)
        path = [origin]
        cur = origin
        values: List[object] = []
        for _ in range(MAX_HOPS):
            routing_domain = lca(origin_path, self.hierarchy.path_of(cur))
            hit = self._local_answer(cur, key, key_hash, routing_domain)
            if hit is not None:
                found_values, via_pointer, pointer_hops, content_node = hit
                values.extend(found_values)
                if first_match:
                    return SearchResult(
                        key, values, path, cur, via_pointer, pointer_hops,
                        content_node,
                    )
            nxt = self._greedy_step(cur, key_hash)
            if nxt is None:
                found_at = path[-1] if values else None
                return SearchResult(key, values, path, found_at, False, 0)
            path.append(nxt)
            cur = nxt
        raise RuntimeError("lookup exceeded hop bound; broken network")

    def _local_answer(
        self,
        node: int,
        key: object,
        key_hash: int,
        routing_domain: DomainPath,
    ) -> Optional[Tuple[List[object], bool, int, int]]:
        """Local items/pointers at ``node`` passing the access check.

        Returns ``(values, via_pointer, pointer_hops, content_node)``.
        """
        items = [
            item
            for item in self._items.get(node, {}).get(key_hash, [])
            if item.key == key and item.visible_at_level(routing_domain)
        ]
        if items:
            return [item.value for item in items], False, 0, node
        pointers = [
            p
            for p in self._pointers.get(node, {}).get(key_hash, [])
            if p.visible_at_level(routing_domain)
        ]
        for pointer in pointers:
            remote = [
                item.value
                for item in self._items.get(pointer.home_node, {}).get(key_hash, [])
                if item.key == key
            ]
            if remote:
                # Resolve the indirection: node fetches from the content home
                # and returns it to the query initiator (round trip).
                record_counter("storage.pointer_resolutions")
                fetch = route_hops(self.network, node, pointer.home_node)
                return remote, True, 2 * fetch, pointer.home_node
        return None

    def _greedy_step(self, cur: int, key_hash: int) -> Optional[int]:
        from ..core.routing import _best_ring_step

        return _best_ring_step(self.network, cur, key_hash, None)


def route_hops(network, src: int, dst: int) -> int:
    """Hop count of the greedy route between two nodes."""
    from ..core.routing import route_ring

    return route_ring(network, src, dst).hops
