"""Leaf-set replication of stored content.

The paper keeps replication out of scope but leans on it twice: leaf sets
exist "to deal with node deletions" (§2.3) and the dense intra-group
structure of the proximity adaptation is "necessary even otherwise for
replication and fault tolerance" (§3.6).  This module supplies the standard
DHT mechanism both allude to: every key-value pair is replicated on the
``replicas`` ring successors *within its storage domain*, so content
survives the failure of its home node and domain-scoped content never leaks
replicas outside the domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.hierarchy import DomainPath, ROOT
from ..core.idspace import successor_index
from ..obs.metrics import record_counter
from .store import HierarchicalStore, SearchResult, StoredItem

DEFAULT_REPLICAS = 3


class ReplicatedStore:
    """A :class:`HierarchicalStore` with successor-list replication.

    ``put`` writes the primary copy exactly as the hierarchical store does,
    then copies the item to the next ``replicas`` members of the storage
    domain's ring.  ``get_with_failures`` looks up content with a set of
    live nodes: if the greedy route or the home node is dead, the query is
    answered by the first live replica.
    """

    def __init__(self, store: HierarchicalStore, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("need at least one replica (the primary)")
        self.store = store
        self.network = store.network
        self.replicas = replicas
        #: key_hash -> list of replica holders (primary first).
        self.replica_sets: Dict[int, List[int]] = {}

    def replica_nodes(self, key_hash: int, domain: DomainPath) -> List[int]:
        """Primary + its ring *predecessors* within the storage domain.

        Under the paper's inverted responsibility rule (a node manages keys
        in ``[own id, next id)``), when the primary dies its key range merges
        into its predecessor's — so predecessors are the nodes that will be
        asked for the key, and greedy routing over the surviving nodes lands
        exactly on the first live replica.
        """
        members = self.network.hierarchy.sorted_members(domain)
        if not members:
            raise ValueError(f"domain {domain!r} has no members")
        primary = self.store.home_node(key_hash, domain)
        start = members.index(primary)
        count = min(self.replicas, len(members))
        return [members[(start - i) % len(members)] for i in range(count)]

    def put(
        self,
        origin: int,
        key: object,
        value: object,
        storage_domain: Optional[DomainPath] = None,
        access_domain: Optional[DomainPath] = None,
    ) -> List[int]:
        """Insert with replication; returns the replica holders."""
        storage_domain = ROOT if storage_domain is None else storage_domain
        home, _pointer = self.store.put(
            origin, key, value, storage_domain, access_domain
        )
        key_hash = self.store.space.hash_key(key)
        holders = self.replica_nodes(key_hash, storage_domain)
        item = next(
            it
            for it in self.store._items[home][key_hash]
            if it.key == key
        )
        for holder in holders[1:]:
            replica = StoredItem(
                item.key, item.key_hash, item.value,
                item.storage_domain, item.access_domain,
            )
            self.store._items.setdefault(holder, {}).setdefault(
                key_hash, []
            ).append(replica)
        self.replica_sets[key_hash] = holders
        record_counter("storage.replica_copies", len(holders) - 1)
        return holders

    def get(self, origin: int, key: object) -> SearchResult:
        """Failure-free lookup (identical to the hierarchical store's)."""
        return self.store.get(origin, key)

    def get_with_failures(
        self, origin: int, key: object, alive: Set[int]
    ) -> SearchResult:
        """Lookup when some nodes are dead.

        Routes greedily among live nodes toward the key; any live node along
        the way holding a replica answers (subject to the ordinary access
        check performed by the store's local-answer logic).
        """
        from ..core.hierarchy import lca
        from ..core.routing import _best_ring_step

        if origin not in alive:
            raise ValueError(f"query origin {origin} is dead")
        key_hash = self.store.space.hash_key(key)
        origin_path = self.network.hierarchy.path_of(origin)
        path = [origin]
        cur = origin
        for _ in range(10_000):
            routing_domain = lca(origin_path, self.network.hierarchy.path_of(cur))
            hit = self.store._local_answer(cur, key, key_hash, routing_domain)
            if hit is not None:
                values, via_pointer, pointer_hops, content_node = hit
                return SearchResult(
                    key, values, path, cur, via_pointer, pointer_hops,
                    content_node,
                )
            nxt = _best_ring_step(self.network, cur, key_hash, alive)
            if nxt is None:
                return SearchResult(key, [], path, None, False, 0)
            path.append(nxt)
            cur = nxt
        raise RuntimeError("lookup exceeded hop bound")

    def surviving_copies(self, key: object, alive: Set[int]) -> int:
        """How many replicas of ``key`` are on live nodes."""
        key_hash = self.store.space.hash_key(key)
        holders = self.replica_sets.get(key_hash, [])
        return sum(1 for h in holders if h in alive)
