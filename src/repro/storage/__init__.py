"""Section 4: hierarchical storage and retrieval, access control, proxy-node
caching, and partition-balanced ID allocation."""

from .caching import CacheStats, CachingStore, LevelAwareCache
from .path_caching import PathCacheStats, PathCachingStore
from .replication import DEFAULT_REPLICAS, ReplicatedStore
from .partition import (
    BalancedIdAllocator,
    HierarchicalIdAllocator,
    bit_reverse,
    random_partition_ratio,
)
from .store import HierarchicalStore, Pointer, SearchResult, StoredItem

__all__ = [
    "BalancedIdAllocator",
    "CacheStats",
    "CachingStore",
    "DEFAULT_REPLICAS",
    "PathCacheStats",
    "PathCachingStore",
    "ReplicatedStore",
    "HierarchicalIdAllocator",
    "HierarchicalStore",
    "LevelAwareCache",
    "Pointer",
    "SearchResult",
    "StoredItem",
    "bit_reverse",
    "random_partition_ratio",
]
