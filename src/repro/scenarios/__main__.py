"""CLI: list, run, replay, cross-check and the scenario matrix.

Examples::

    python -m repro.scenarios list
    python -m repro.scenarios run flash_crowd --scale smoke --engine fast
    python -m repro.scenarios run partition_noheal --save fixture.json
    python -m repro.scenarios replay fixture.json --engine reference
    python -m repro.scenarios crosscheck slow_join --scale smoke
    python -m repro.scenarios matrix --scale full --cross-check \\
        --out-json matrix.json --out-md matrix.md

Exit status 0 means every run matched its expectation (clean scenarios
clean, negative controls tripped, engines equivalent when cross-checked).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..obs import metrics as obs_metrics
from ..perf.dynamic import ENGINE_MODES
from ..verify.builders import EXTRA_FAMILIES, FAMILIES
from ..verify.violations import summarize
from .catalog import CATALOG, SCALES
from .dsl import scenario_from_json, scenario_to_json
from .runner import MATRIX_FAMILIES, crosscheck_scenario, run_matrix, run_scenario

ALL_FAMILIES = FAMILIES + EXTRA_FAMILIES


def _parse_families(raw: str):
    families = tuple(f.strip() for f in raw.split(",") if f.strip())
    unknown = [f for f in families if f not in ALL_FAMILIES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown families {unknown}; known: {', '.join(ALL_FAMILIES)}"
        )
    return families


def _parse_scenarios(raw: str):
    names = [s.strip() for s in raw.split(",") if s.strip()]
    unknown = [n for n in names if n not in CATALOG]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown scenarios {unknown}; known: {', '.join(CATALOG)}"
        )
    return names


def _common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--scale", choices=SCALES, default="smoke")
    sub.add_argument(
        "--engine",
        choices=ENGINE_MODES,
        default="auto",
        help="maintenance engine (scenarios are engine-agnostic)",
    )
    sub.add_argument(
        "--families",
        type=_parse_families,
        default=MATRIX_FAMILIES,
        help="families rebuilt and routed at every checkpoint",
    )
    sub.add_argument("--routing-pairs", type=int, default=12)
    sub.add_argument(
        "--no-latency",
        action="store_true",
        help="skip the topology attach and millisecond accounting",
    )
    sub.add_argument(
        "--metrics", metavar="OUT.json", help="write a metrics snapshot JSON"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Named production-traffic scenarios with oracles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="catalog names and descriptions")

    run = sub.add_parser("run", help="run one scenario with oracles")
    run.add_argument("scenario", choices=sorted(CATALOG))
    _common(run)
    run.add_argument(
        "--save",
        metavar="OUT.json",
        help="write the compiled schedule as a replayable fixture",
    )
    run.add_argument(
        "--serve",
        action="store_true",
        help="additionally replay the schedule in serving mode (batched "
        "lookup runtime); its delivered/offered ratio lands in the "
        "slo.* instruments under <scenario>.serve",
    )

    rep = sub.add_parser("replay", help="replay a saved scenario fixture")
    rep.add_argument("fixture", help="path to a scenario JSON")
    _common(rep)

    cross = sub.add_parser(
        "crosscheck", help="replay through both engines, demand equivalence"
    )
    cross.add_argument("scenario", choices=sorted(CATALOG))
    _common(cross)

    matrix = sub.add_parser("matrix", help="the scenario x family matrix")
    _common(matrix)
    matrix.add_argument(
        "--scenarios",
        type=_parse_scenarios,
        default=None,
        help="comma-separated catalog subset (default: everything)",
    )
    matrix.add_argument(
        "--cross-check",
        action="store_true",
        help="also replay every schedule through both engines",
    )
    matrix.add_argument("--out-json", metavar="OUT.json")
    matrix.add_argument("--out-md", metavar="OUT.md")

    args = parser.parse_args(argv)
    registry = obs_metrics.activate(obs_metrics.MetricsRegistry())
    try:
        code = _dispatch(args)
    finally:
        if getattr(args, "metrics", None):
            registry.export_json(args.metrics)
            print(f"wrote metrics snapshot to {args.metrics}", file=sys.stderr)
        obs_metrics.deactivate()
    return code


def _print_result(result) -> None:
    report = result.report
    print(
        f"{result.spec.name}: {len(result.events)} events, population "
        f"{report.final_population}, {report.lookups_delivered}/"
        f"{report.lookups_attempted} lookups delivered "
        f"(availability {result.availability:.3f}), "
        f"{result.message_total} messages, p99 {result.p99_ms():.1f} ms"
    )
    if report.domain_kills or report.partitions or report.heals:
        print(
            f"  correlated events: {report.domain_kills} domain kills "
            f"({report.killed} nodes), {report.partitions} partitions "
            f"({report.suspended} suspended), {report.heals} heals "
            f"({report.revived} revived)"
        )
    print("  checkpoint oracles: " + summarize(result.violations))
    print("  final-state audit:  " + summarize(result.residual))
    if result.spec.expect_violations:
        print(
            "  negative control: "
            + ("tripped as expected" if result.failed else "did NOT trip")
        )


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name, factory in CATALOG.items():
            spec = factory("smoke")
            control = " [negative control]" if spec.expect_violations else ""
            print(f"{name}{control}: {spec.description}")
        return 0

    if args.command == "run":
        spec = CATALOG[args.scenario](args.scale)
        start = time.time()
        result = run_scenario(
            spec,
            seed=args.seed,
            engine=args.engine,
            families=args.families,
            routing_pairs=args.routing_pairs,
            latency=not args.no_latency,
        )
        _print_result(result)
        if args.serve:
            from ..serve.scenario import serve_scenario

            serving = serve_scenario(
                spec,
                seed=args.seed,
                engine=args.engine,
                latency=not args.no_latency,
            )
            counters = serving.report.counters
            print(
                f"  serving mode: {serving.delivered}/{serving.offered} "
                f"delivered (ratio {serving.ratio:.3f}), "
                f"{counters['lost']} lost, "
                f"p99 {serving.report.quantile_ms(0.99):.1f} ms"
            )
        print(f"({time.time() - start:.1f}s)")
        if args.save:
            Path(args.save).write_text(
                scenario_to_json(spec, args.seed, result.events) + "\n"
            )
            print(f"wrote replayable fixture to {args.save}")
        return 0 if result.ok else 1

    if args.command == "replay":
        document = scenario_from_json(Path(args.fixture).read_text())
        result = run_scenario(
            document.spec,
            seed=document.seed,
            engine=args.engine,
            families=args.families,
            routing_pairs=args.routing_pairs,
            events=document.events,
            latency=not args.no_latency,
        )
        _print_result(result)
        return 0 if result.ok else 1

    if args.command == "crosscheck":
        spec = CATALOG[args.scenario](args.scale)
        comparison = crosscheck_scenario(
            spec, seed=args.seed, latency=not args.no_latency
        )
        print(
            f"{spec.name}: reference vs fast — "
            + ("equivalent" if comparison.equivalent else "DIVERGED")
        )
        if not comparison.equivalent:
            print(summarize(comparison.violations))
        return 0 if comparison.equivalent else 1

    if args.command == "matrix":
        start = time.time()
        matrix = run_matrix(
            names=args.scenarios,
            scale=args.scale,
            seed=args.seed,
            engine=args.engine,
            families=args.families,
            routing_pairs=args.routing_pairs,
            cross_check=args.cross_check,
            latency=not args.no_latency,
        )
        print(matrix.render())
        print(f"({time.time() - start:.1f}s)")
        if args.out_json:
            Path(args.out_json).write_text(matrix.to_json() + "\n")
            print(f"wrote {args.out_json}")
        if args.out_md:
            Path(args.out_md).write_text(matrix.to_markdown())
            print(f"wrote {args.out_md}")
        return 0 if matrix.ok else 1

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
