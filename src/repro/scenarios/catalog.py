"""The named scenarios: production traffic shapes the paper argues about.

Each factory takes a ``scale`` (``"smoke"`` for the gating PR job and the
test suite, ``"full"`` for the nightly matrix) and returns a
:class:`~repro.scenarios.dsl.ScenarioSpec`.  Five named shapes plus one
negative control:

- ``flash_crowd`` — Zipf-1.25 key skew concentrated on one domain's ids,
  with a put/get data layer riding along for the durability oracle;
- ``diurnal`` — day/night churn waves (join wave, peak traffic, drain
  wave with crashes, quiet traffic) over two cycles;
- ``regional_failure`` — a whole subtree crashes at once, the survivors
  stabilize and serve, then the region rejoins as fresh capacity;
- ``partition_rejoin`` — a subtree goes dark (state retained), the
  reachable side routes around it, the partition heals and repair runs;
- ``partition_noheal`` — the negative control: the partition rejoins but
  post-rejoin repair never runs, so the stale ring state *must* trip the
  protocol-state oracle (``expect_violations=True``);
- ``slow_join`` — a datacenter comes online: a large ramped join wave
  into one domain, stabilizing every few joins.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .dsl import Phase, ScenarioSpec

SCALES = ("smoke", "full")

#: The hot / failing / joining domains, fixed across scenarios so the
#: matrix rows are comparable (the domain tree is the fuzzer's 3 x 2).
HOT_DOMAIN = ("a", "x")
FAIL_DOMAIN = ("b",)
DARK_DOMAIN = ("c",)
JOIN_DOMAIN = ("b", "y")


def _pick(scale: str, smoke: int, full: int) -> int:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r} (known: {', '.join(SCALES)})")
    return smoke if scale == "smoke" else full


def flash_crowd(scale: str = "full") -> ScenarioSpec:
    """Zipf-1.25 lookup bursts on one domain's ids over a put/get mix."""
    burst = _pick(scale, 40, 240)
    background = _pick(scale, 30, 160)
    return ScenarioSpec(
        name="flash_crowd",
        description=(
            "Zipf-1.25 key skew on one domain's ids after background load; "
            "a 2-replica data layer rides along for the durability oracle"
        ),
        population=_pick(scale, 30, 72),
        data_replicas=2,
        phases=(
            Phase(
                "mix",
                count=background,
                weights=Phase.mix_weights(
                    {"join": 0.12, "leave": 0.06, "crash": 0.04,
                     "lookup": 0.43, "stabilize": 0.10,
                     "put": 0.10, "get": 0.15}
                ),
            ),
            Phase("checkpoint"),
            Phase("traffic", count=burst, domain=HOT_DOMAIN, zipf=1.25),
            Phase("stabilize"),
            Phase("traffic", count=burst, domain=HOT_DOMAIN, zipf=1.25),
            Phase("checkpoint"),
        ),
    )


def diurnal(scale: str = "full") -> ScenarioSpec:
    """Two day/night churn cycles: join wave, peak, drain, quiet."""
    wave = _pick(scale, 8, 36)
    peak = _pick(scale, 25, 150)
    cycle: Tuple[Phase, ...] = (
        Phase("join_wave", count=wave),
        Phase("traffic", count=peak),
        Phase("checkpoint"),
        Phase("leave_wave", count=wave // 2),
        Phase("crash_wave", count=max(1, wave // 4)),
        Phase("stabilize", count=2),
        Phase("traffic", count=peak // 2),
        Phase("checkpoint"),
    )
    return ScenarioSpec(
        name="diurnal",
        description="two day/night churn cycles: join wave, peak "
        "traffic, drain wave with crashes, quiet traffic",
        population=_pick(scale, 28, 64),
        phases=cycle * 2,
    )


def regional_failure(scale: str = "full") -> ScenarioSpec:
    """Kill the ``("b",)`` subtree, stabilize past it, refill it."""
    traffic = _pick(scale, 25, 140)
    rejoin = _pick(scale, 8, 30)
    return ScenarioSpec(
        name="regional_failure",
        description="a whole subtree crashes at once; survivors "
        "stabilize and serve; the region rejoins as fresh capacity",
        population=_pick(scale, 30, 72),
        phases=(
            Phase("traffic", count=traffic),
            Phase("checkpoint"),
            Phase("kill_domain", domain=FAIL_DOMAIN),
            Phase("stabilize", count=2),
            Phase("traffic", count=traffic),
            Phase("checkpoint"),
            Phase("join_wave", count=rejoin, domain=FAIL_DOMAIN, stagger=4),
            Phase("traffic", count=traffic // 2),
            Phase("checkpoint"),
        ),
    )


def partition_rejoin(scale: str = "full", repair: bool = True) -> ScenarioSpec:
    """A subtree goes dark and rejoins; ``repair=False`` is the control."""
    traffic = _pick(scale, 25, 140)
    tail: Tuple[Phase, ...]
    if repair:
        tail = (Phase("heal"), Phase("stabilize", count=2), Phase("checkpoint"))
    else:
        # Negative control: the subtree rejoins with its pre-partition
        # ring state and repair never runs — the post-replay protocol
        # audit must find stale successors / asymmetric leaf sets.
        tail = (Phase("heal"),)
    return ScenarioSpec(
        name="partition_rejoin" if repair else "partition_noheal",
        description=(
            "a subtree goes dark and the reachable side routes around it; "
            + ("the partition heals and repair re-converges"
               if repair
               else "it rejoins but repair is disabled (must trip oracles)")
        ),
        population=_pick(scale, 30, 72),
        expect_violations=not repair,
        phases=(
            Phase("traffic", count=traffic),
            Phase("checkpoint"),
            Phase("partition", domain=DARK_DOMAIN),
            # The reachable side keeps maintaining: its rings re-route
            # around the dark subtree, so the rejoin below brings back
            # members the survivors no longer point at.
            Phase("stabilize", count=2),
            Phase("traffic", count=traffic),
        )
        + tail,
    )


def slow_join(scale: str = "full") -> ScenarioSpec:
    """A datacenter comes online: a staggered ramp into one domain."""
    joiners = _pick(scale, 14, 60)
    traffic = _pick(scale, 25, 140)
    return ScenarioSpec(
        name="slow_join",
        description="a datacenter comes online: a large ramped join "
        "wave into one domain, stabilizing every few joins",
        population=_pick(scale, 24, 48),
        phases=(
            Phase("checkpoint"),
            Phase("join_wave", count=joiners, domain=JOIN_DOMAIN, stagger=3),
            Phase("stabilize"),
            Phase("traffic", count=traffic),
            Phase("checkpoint"),
        ),
    )


CATALOG: Dict[str, Callable[[str], ScenarioSpec]] = {
    "flash_crowd": flash_crowd,
    "diurnal": diurnal,
    "regional_failure": regional_failure,
    "partition_rejoin": lambda scale="full": partition_rejoin(scale, repair=True),
    "partition_noheal": lambda scale="full": partition_rejoin(scale, repair=False),
    "slow_join": slow_join,
}


def scenario_names() -> List[str]:
    """Catalog names in a stable order (controls after their scenarios)."""
    return list(CATALOG)
