"""The scenario DSL: phases -> deterministic, replayable event schedules.

A :class:`ScenarioSpec` is a named list of :class:`Phase` steps over a
fixed domain tree.  :func:`compile_scenario` expands it into the same
:class:`~repro.simulation.churn.Event` vocabulary the verify fuzzer uses:
all randomness (ids, keys, ranks) is consumed at compile time from a
seed-derived RNG, so the compiled schedule replays bit-for-bit, any
sub-list of it still replays (ddmin shrinking), and the JSON form
round-trips exactly through the hardened
:func:`repro.verify.fuzz.event_from_dict` substrate.

Compilation keeps a *membership model* — the bootstrap population plus
every compiled join, minus kills, with partitioned nodes marked dark — so
domain-targeted traffic (the flash crowd's Zipf skew over one domain's
ids) picks plausible hot keys without touching replay-time state.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import DomainPath
from ..core.idspace import IdSpace
from ..simulation.churn import Event
from ..simulation.protocol import SimulatedCrescendo
from ..verify.fuzz import FUZZ_PATHS, event_to_dict, events_from_docs
from ..workloads.queries import zipf_key_workload

#: Phase vocabulary: op -> (required fields, optional fields).  Mirrors
#: the shape of :data:`repro.verify.fuzz.EVENT_FIELDS`; anything outside
#: the allowed set is rejected at validation time.
PHASE_FIELDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "traffic": (("count",), ("domain", "zipf")),
    "mix": (("count",), ("weights",)),
    "join_wave": (("count",), ("domain", "stagger")),
    "leave_wave": (("count",), ()),
    "crash_wave": (("count",), ()),
    "kill_domain": (("domain",), ()),
    "partition": (("domain",), ()),
    "heal": ((), ("domain",)),
    "stabilize": ((), ("count",)),
    "checkpoint": ((), ()),
}

#: Event kinds a ``mix`` phase may weight (put/get need a data layer).
MIX_KINDS = ("join", "leave", "crash", "lookup", "stabilize", "put", "get")


@dataclass(frozen=True)
class Phase:
    """One step of a scenario; which fields apply depends on ``op``.

    - ``traffic``: ``count`` lookups; ``domain`` focuses the keys on that
      subtree's member ids, ``zipf`` skews their popularity (rank by id).
    - ``mix``: ``count`` events drawn from ``weights`` (fuzzer-style
      background load).
    - ``join_wave``: ``count`` joins, into leaf domains under ``domain``
      when given; ``stagger`` inserts a stabilize round every that many
      joins (the ramped "datacenter comes online" shape).
    - ``leave_wave`` / ``crash_wave``: ``count`` rank-addressed departures.
    - ``kill_domain`` / ``partition``: take the ``domain`` subtree down
      (permanently / suspended-but-state-retained).
    - ``heal``: revive suspended nodes (all, or just ``domain``'s).
    - ``stabilize``: ``count`` maintenance rounds (default 1).
    - ``checkpoint``: a quiescent oracle point.
    """

    op: str
    count: Optional[int] = None
    domain: Optional[DomainPath] = None
    zipf: Optional[float] = None
    stagger: Optional[int] = None
    weights: Optional[Tuple[Tuple[str, float], ...]] = None

    @staticmethod
    def mix_weights(mapping: Dict[str, float]) -> Tuple[Tuple[str, float], ...]:
        """Canonical (hashable, ordered) form for ``mix`` weights."""
        return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario: population, domain tree, phases, expectations."""

    name: str
    description: str = ""
    population: int = 32
    bits: int = 32
    domains: Tuple[DomainPath, ...] = FUZZ_PATHS
    #: replication degree of the data layer riding the scenario (None for
    #: a bare network).  Incompatible with ``partition`` phases: the
    #: durability oracle would misread suspended holders as dead.
    data_replicas: Optional[int] = None
    #: True for negative controls: the run *must* trip an oracle.
    expect_violations: bool = False
    phases: Tuple[Phase, ...] = ()


# ---------------------------------------------------------------- validation


def _is_count(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value > 0


def validate_spec(spec: ScenarioSpec) -> None:
    """Reject malformed specs with an error naming the offending phase."""
    where = f"scenario {spec.name!r}"
    if not spec.name or not isinstance(spec.name, str):
        raise ValueError("scenario name must be a non-empty string")
    if not _is_count(spec.population) or spec.population < 4:
        raise ValueError(f"{where}: population must be an integer >= 4")
    if not _is_count(spec.bits) or spec.bits > 64:
        raise ValueError(f"{where}: bits must be an integer in [1, 64]")
    if not spec.domains or not all(
        isinstance(d, tuple) and d and all(isinstance(c, str) for c in d)
        for d in spec.domains
    ):
        raise ValueError(
            f"{where}: domains must be non-empty tuples of domain names"
        )
    if spec.data_replicas is not None and not _is_count(spec.data_replicas):
        raise ValueError(f"{where}: data_replicas must be a positive integer")
    if not spec.phases:
        raise ValueError(f"{where}: at least one phase is required")
    for index, phase in enumerate(spec.phases):
        _validate_phase(spec, phase, f"{where}: phase {index}")


def _validate_phase(spec: ScenarioSpec, phase: Phase, where: str) -> None:
    if phase.op not in PHASE_FIELDS:
        raise ValueError(
            f"{where}: unknown op {phase.op!r} "
            f"(known: {', '.join(PHASE_FIELDS)})"
        )
    where = f"{where} ({phase.op})"
    required, optional = PHASE_FIELDS[phase.op]
    allowed = set(required) | set(optional)
    for name in ("count", "domain", "zipf", "stagger", "weights"):
        value = getattr(phase, name)
        if value is not None and name not in allowed:
            raise ValueError(f"{where}: field {name!r} does not apply")
        if value is None and name in required:
            raise ValueError(f"{where}: missing required field {name!r}")
    if phase.count is not None and not _is_count(phase.count):
        raise ValueError(f"{where}: count must be a positive integer")
    if phase.stagger is not None and not _is_count(phase.stagger):
        raise ValueError(f"{where}: stagger must be a positive integer")
    if phase.zipf is not None and not (
        isinstance(phase.zipf, (int, float))
        and not isinstance(phase.zipf, bool)
        and phase.zipf > 0
    ):
        raise ValueError(f"{where}: zipf must be a positive exponent")
    if phase.domain is not None:
        if not isinstance(phase.domain, tuple) or not all(
            isinstance(c, str) for c in phase.domain
        ):
            raise ValueError(f"{where}: domain must be a tuple of names")
        depth = len(phase.domain)
        if depth and not any(d[:depth] == phase.domain for d in spec.domains):
            raise ValueError(
                f"{where}: domain {phase.domain!r} is not a prefix of any "
                f"scenario domain"
            )
    if phase.op in ("kill_domain", "partition") and phase.domain == ():
        raise ValueError(f"{where}: refusing to take down the whole network")
    if phase.op == "partition" and spec.data_replicas is not None:
        raise ValueError(
            f"{where}: partition phases are incompatible with a data layer "
            f"(the durability oracle would misread suspended holders as dead)"
        )
    if phase.weights is not None:
        if not isinstance(phase.weights, tuple) or not all(
            isinstance(w, tuple)
            and len(w) == 2
            and isinstance(w[0], str)
            and isinstance(w[1], (int, float))
            and not isinstance(w[1], bool)
            and w[1] > 0
            for w in phase.weights
        ):
            raise ValueError(
                f"{where}: weights must be (kind, positive weight) pairs"
            )
        data_kinds = () if spec.data_replicas is not None else ("put", "get")
        for kind, _ in phase.weights:
            if kind not in MIX_KINDS or kind in data_kinds:
                raise ValueError(
                    f"{where}: kind {kind!r} cannot be weighted here "
                    f"(known: {', '.join(MIX_KINDS)}; put/get need "
                    f"data_replicas)"
                )


# --------------------------------------------------------------- compilation


def bootstrap_placement(
    spec: ScenarioSpec, seed: int
) -> List[Tuple[int, DomainPath]]:
    """The seed-derived initial population as (id, leaf domain) pairs.

    Both :func:`bootstrap_scenario` and the compiler's membership model
    derive from this one function, so compiled key choices always refer
    to ids that actually exist at replay time.  Domains are striped
    (shuffled round-robin) rather than drawn independently: every leaf
    domain is guaranteed ~population/len(domains) members, so targeted
    phases (a flash crowd on one domain, a regional kill) always have a
    non-empty target.
    """
    rng = random.Random(f"scenario-bootstrap:{spec.name}:{seed}")
    space = IdSpace(spec.bits)
    stripes = [
        spec.domains[i % len(spec.domains)] for i in range(spec.population)
    ]
    rng.shuffle(stripes)
    return list(zip(space.random_ids(spec.population, rng), stripes))


def bootstrap_scenario(
    spec: ScenarioSpec, seed: int, engine: str = "auto"
) -> SimulatedCrescendo:
    """A bootstrapped, converged network for the scenario (either engine)."""
    from ..perf.dynamic import make_protocol

    net = make_protocol(IdSpace(spec.bits), engine=engine)
    for node_id, path in bootstrap_placement(spec, seed):
        net.join(node_id, path)
    net.stabilize_to_convergence()
    return net


class _Membership:
    """Compile-time view of who is reachable (approximate, deterministic)."""

    def __init__(self, placement: Sequence[Tuple[int, DomainPath]]) -> None:
        self.members: Dict[int, DomainPath] = dict(placement)
        self.dark: Dict[int, DomainPath] = {}

    def under(self, prefix: DomainPath) -> List[int]:
        depth = len(prefix)
        return sorted(
            n for n, p in self.members.items() if p[:depth] == prefix
        )

    def kill(self, prefix: DomainPath) -> None:
        for node in self.under(prefix):
            del self.members[node]

    def suspend(self, prefix: DomainPath) -> None:
        for node in self.under(prefix):
            self.dark[node] = self.members.pop(node)

    def revive(self, prefix: Optional[DomainPath]) -> None:
        depth = len(prefix) if prefix is not None else 0
        for node in sorted(self.dark):
            if prefix is None or self.dark[node][:depth] == prefix:
                self.members[node] = self.dark.pop(node)


def compile_scenario(spec: ScenarioSpec, seed: int) -> List[Event]:
    """Expand the spec into a deterministic event schedule.

    All randomness is drawn here from ``Random(f"scenario:{name}:{seed}")``
    — replaying the output (or any shrunk sub-list) never touches an RNG.
    """
    validate_spec(spec)
    rng = random.Random(f"scenario:{spec.name}:{seed}")
    space = IdSpace(spec.bits)
    membership = _Membership(bootstrap_placement(spec, seed))
    used = set(membership.members)
    events: List[Event] = []

    def fresh_id() -> int:
        node = space.random_id(rng)
        while node in used:
            node = space.random_id(rng)
        used.add(node)
        return node

    def leaf_domains(prefix: Optional[DomainPath]) -> List[DomainPath]:
        if prefix is None:
            return list(spec.domains)
        depth = len(prefix)
        return [d for d in spec.domains if d[:depth] == prefix]

    def emit_join(prefix: Optional[DomainPath]) -> None:
        leaves = leaf_domains(prefix)
        path = leaves[rng.randrange(len(leaves))]
        node = fresh_id()
        membership.members[node] = path
        events.append(Event("join", node=node, path=path))

    def traffic_keys(phase: Phase) -> List[int]:
        pool = membership.under(phase.domain or ())
        if not pool:
            pool = sorted(membership.members)
        if phase.zipf is None and phase.domain is None:
            return [space.random_id(rng) for _ in range(phase.count)]
        exponent = 1.0 if phase.zipf is None else float(phase.zipf)
        ranks = zipf_key_workload(len(pool), phase.count, rng, exponent)
        return [pool[r] for r in ranks]

    for phase in spec.phases:
        if phase.op == "traffic":
            for key in traffic_keys(phase):
                events.append(
                    Event("lookup", rank=rng.randrange(1 << 30), key=key)
                )
        elif phase.op == "mix":
            weights = phase.weights or Phase.mix_weights(
                {"join": 0.15, "leave": 0.08, "crash": 0.05,
                 "lookup": 0.62, "stabilize": 0.10}
            )
            kinds = [k for k, _ in weights]
            probs = [w for _, w in weights]
            put_keys: List[int] = []
            for _ in range(phase.count):
                kind = rng.choices(kinds, probs)[0]
                if kind == "join":
                    emit_join(None)
                elif kind in ("leave", "crash"):
                    events.append(Event(kind, rank=rng.randrange(1 << 30)))
                elif kind == "lookup":
                    events.append(
                        Event(
                            "lookup",
                            rank=rng.randrange(1 << 30),
                            key=space.random_id(rng),
                        )
                    )
                elif kind == "put":
                    token = rng.randrange(1 << 30)
                    put_keys.append(token)
                    events.append(
                        Event(
                            "put",
                            rank=rng.randrange(1 << 30),
                            key=token,
                            depth=rng.randrange(3),
                        )
                    )
                elif kind == "get":
                    if put_keys and rng.random() < 0.8:
                        token = put_keys[rng.randrange(len(put_keys))]
                    else:
                        token = rng.randrange(1 << 30)
                    events.append(
                        Event("get", rank=rng.randrange(1 << 30), key=token)
                    )
                else:
                    events.append(Event("stabilize"))
        elif phase.op == "join_wave":
            for i in range(phase.count):
                emit_join(phase.domain)
                if phase.stagger and (i + 1) % phase.stagger == 0:
                    events.append(Event("stabilize"))
        elif phase.op in ("leave_wave", "crash_wave"):
            kind = "leave" if phase.op == "leave_wave" else "crash"
            for _ in range(phase.count):
                events.append(Event(kind, rank=rng.randrange(1 << 30)))
        elif phase.op == "kill_domain":
            membership.kill(phase.domain)
            events.append(Event("kill_domain", path=phase.domain))
        elif phase.op == "partition":
            membership.suspend(phase.domain)
            events.append(Event("partition", path=phase.domain))
        elif phase.op == "heal":
            membership.revive(phase.domain)
            events.append(Event("heal", path=phase.domain))
        elif phase.op == "stabilize":
            for _ in range(phase.count or 1):
                events.append(Event("stabilize"))
        else:  # checkpoint (validate_spec rejected everything else)
            events.append(Event("checkpoint"))
    return events


# -------------------------------------------------------------- JSON format


def _phase_to_dict(phase: Phase) -> Dict[str, object]:
    out: Dict[str, object] = {"op": phase.op}
    if phase.count is not None:
        out["count"] = phase.count
    if phase.domain is not None:
        out["domain"] = list(phase.domain)
    if phase.zipf is not None:
        out["zipf"] = phase.zipf
    if phase.stagger is not None:
        out["stagger"] = phase.stagger
    if phase.weights is not None:
        out["weights"] = {k: w for k, w in phase.weights}
    return out


def _phase_from_dict(doc: object, index: int) -> Phase:
    where = f"phase {index}"
    if not isinstance(doc, dict):
        raise ValueError(f"{where}: expected an object, got {doc!r}")
    op = doc.get("op")
    if op not in PHASE_FIELDS:
        raise ValueError(
            f"{where}: unknown op {op!r} (known: {', '.join(PHASE_FIELDS)})"
        )
    required, optional = PHASE_FIELDS[op]
    allowed = {"op", *required, *optional}
    unexpected = sorted(set(doc) - allowed)
    if unexpected:
        raise ValueError(
            f"{where} ({op}): unexpected field(s) {', '.join(unexpected)}"
        )
    domain = doc.get("domain")
    if domain is not None:
        if not isinstance(domain, list) or not all(
            isinstance(c, str) for c in domain
        ):
            raise ValueError(f"{where} ({op}): domain must be a list of names")
        domain = tuple(domain)
    weights = doc.get("weights")
    if weights is not None:
        if not isinstance(weights, dict):
            raise ValueError(f"{where} ({op}): weights must be an object")
        weights = Phase.mix_weights(weights)
    return Phase(
        op=op,
        count=doc.get("count"),
        domain=domain,
        zipf=doc.get("zipf"),
        stagger=doc.get("stagger"),
        weights=weights,
    )


@dataclass
class ScenarioDocument:
    """A parsed scenario fixture: spec + seed + the frozen event list.

    The events are stored alongside the spec (not recompiled at load
    time) so shrunk schedules — which no longer match any compiler
    output — stay replayable fixtures.
    """

    spec: ScenarioSpec
    seed: int
    events: List[Event] = field(default_factory=list)

    @property
    def expect_violations(self) -> bool:
        return self.spec.expect_violations


def scenario_to_json(
    spec: ScenarioSpec, seed: int, events: Sequence[Event]
) -> str:
    """A replayable scenario fixture (spec + compiled/shrunk events)."""
    return json.dumps(
        {
            "scenario": spec.name,
            "description": spec.description,
            "seed": seed,
            "population": spec.population,
            "bits": spec.bits,
            "domains": [list(d) for d in spec.domains],
            **(
                {"data_replicas": spec.data_replicas}
                if spec.data_replicas is not None
                else {}
            ),
            "expect_violations": spec.expect_violations,
            "phases": [_phase_to_dict(p) for p in spec.phases],
            "events": [event_to_dict(e) for e in events],
        },
        indent=2,
    )


def scenario_from_json(text: str) -> ScenarioDocument:
    """Parse and fully validate a scenario fixture."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        raise ValueError(f"scenario fixture: not valid JSON ({err})") from err
    if not isinstance(doc, dict):
        raise ValueError(f"scenario fixture: expected a JSON object, got {doc!r}")
    for key in ("scenario", "seed", "population", "domains", "phases", "events"):
        if key not in doc:
            raise ValueError(f"scenario fixture: missing required key {key!r}")
    name = doc["scenario"]
    if not isinstance(name, str) or not name:
        raise ValueError("scenario fixture: scenario must be a non-empty name")
    seed = doc["seed"]
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValueError(f"scenario fixture: seed must be an integer, got {seed!r}")
    domains = doc["domains"]
    if not isinstance(domains, list) or not all(
        isinstance(d, list) and all(isinstance(c, str) for c in d)
        for d in domains
    ):
        raise ValueError(
            "scenario fixture: domains must be a list of domain paths"
        )
    if not isinstance(doc["phases"], list):
        raise ValueError("scenario fixture: phases must be a list")
    spec = ScenarioSpec(
        name=name,
        description=doc.get("description", ""),
        population=doc["population"],
        bits=doc.get("bits", 32),
        domains=tuple(tuple(d) for d in domains),
        data_replicas=doc.get("data_replicas"),
        expect_violations=bool(doc.get("expect_violations", False)),
        phases=tuple(
            _phase_from_dict(p, i) for i, p in enumerate(doc["phases"])
        ),
    )
    validate_spec(spec)
    return ScenarioDocument(
        spec=spec,
        seed=seed,
        events=events_from_docs(doc["events"], where="scenario fixture"),
    )
