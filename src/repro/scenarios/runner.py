"""Replay scenarios with oracles attached; build the scenario matrix.

:func:`run_scenario` replays one compiled schedule through either
maintenance engine with the full verify battery at every quiescent
checkpoint — live protocol-state audit, static family rebuild through the
invariant registry, scalar-vs-batch routing differential, durability
oracle when a data layer rides along — plus a post-replay protocol audit
of the *final* state, stabilized or not.  That last audit is what the
partition negative control trips: its schedule ends right after the
``heal`` event, so the rejoined subtree's stale ring state is still
visible.

Latency is real: every node id the schedule can route through (bootstrap
plus compiled joins) is attached to a seed-derived transit-stub topology
up front, and per-lookup milliseconds come from the cached
:class:`~repro.perf.latency.LatencyTable` vectorized path gather.  With a
metrics registry active, delivered lookups land in the standard ``slo.*``
instruments (scenario name as the label), so ``python -m repro.obs
report`` renders scenario SLOs with no extra plumbing.

:func:`run_matrix` runs a set of catalog scenarios and renders the
scenario summary and scenario x family tables as text, JSON and markdown
— the artifact the nightly CI job publishes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import Table
from ..core.hierarchy import DomainPath, Hierarchy, lca
from ..obs import metrics as obs_metrics
from ..obs.quantiles import percentile
from ..perf.kernels import batch_route
from ..simulation.churn import Event, ScheduleReport, run_schedule
from ..simulation.protocol import SimulatedCrescendo
from ..topology.transit_stub import TopologyParams, TransitStubTopology
from ..verify.builders import PREFIX_FAMILIES, build_family
from ..verify.fuzz import check_protocol_state
from ..verify.invariants import run_checks
from ..verify.oracles import (
    DurabilityMonitor,
    ProtocolComparison,
    check_durability,
    compare_protocols,
    compare_routing,
)
from ..verify.violations import Violation
from .catalog import CATALOG
from .dsl import ScenarioSpec, bootstrap_placement, bootstrap_scenario, compile_scenario

#: Default matrix families: the six hierarchy families whose member ids
#: the latency table covers.  The prefix families (CAN, Can-Can) route
#: over zone ids, so they get hops-only rows when explicitly requested.
MATRIX_FAMILIES: Tuple[str, ...] = (
    "chord", "crescendo", "symphony", "cacophony", "kademlia", "kandy",
)

#: Router graph for scenario latency: small (104 routers) but the same
#: transit-stub shape and link speeds as the paper-scale topology.
SCENARIO_TOPOLOGY = TopologyParams(
    transit_domains=2,
    transit_per_domain=4,
    stub_domains_per_transit=3,
    stub_per_domain=4,
)


def scenario_latency(
    spec: ScenarioSpec, seed: int, events: Sequence[Event]
) -> Tuple[TransitStubTopology, Dict[int, DomainPath]]:
    """A seed-derived topology with every routable id attached.

    Attachment order is bootstrap ids then join events in schedule order,
    all from one seeded RNG — so identical (spec, seed, events) yield
    bit-identical latencies, and the returned id -> domain-path map covers
    nodes even after the protocol has purged them.
    """
    rng = random.Random(f"scenario-topology:{spec.name}:{seed}")
    topology = TransitStubTopology(SCENARIO_TOPOLOGY, rng)
    node_paths: Dict[int, DomainPath] = {}
    for node_id, path in bootstrap_placement(spec, seed):
        topology.attach_node(node_id)
        node_paths[node_id] = path
    for event in events:
        if event.kind == "join" and event.node not in node_paths:
            topology.attach_node(event.node)
            node_paths[event.node] = event.path
    return topology, node_paths


@dataclass
class FamilyStats:
    """Per-family routing samples and oracle tallies across checkpoints."""

    hops: List[int] = field(default_factory=list)
    ms: List[float] = field(default_factory=list)
    checks: int = 0
    violations: int = 0

    def p99_hops(self) -> float:
        """p99 of the sampled hop counts (0.0 when nothing routed)."""
        return percentile(sorted(self.hops), 0.99)

    def p99_ms(self) -> float:
        """p99 of the sampled per-lookup milliseconds."""
        return percentile(sorted(self.ms), 0.99)


@dataclass
class ScenarioResult:
    """One scenario replay plus everything the oracles observed."""

    spec: ScenarioSpec
    seed: int
    engine: str
    events: List[Event]
    report: ScheduleReport
    #: checkpoint-oracle findings (invariants, routing, durability, state).
    violations: List[Violation]
    #: the post-replay audit of the final (possibly unstabilized) state.
    residual: List[Violation]
    families: Dict[str, FamilyStats]
    lookup_ms: List[float]
    lookup_levels: List[int]
    messages: Dict[str, int]

    @property
    def availability(self) -> float:
        if not self.report.lookups_attempted:
            return 1.0
        return self.report.lookups_delivered / self.report.lookups_attempted

    @property
    def message_total(self) -> int:
        return sum(self.messages.values())

    def p99_ms(self) -> float:
        """p99 of the delivered schedule-lookup milliseconds."""
        return percentile(sorted(self.lookup_ms), 0.99)

    @property
    def failed(self) -> bool:
        return bool(self.violations or self.residual)

    @property
    def ok(self) -> bool:
        """Did the run match the spec's expectation (clean, or tripped)?"""
        return self.failed == self.spec.expect_violations

    def to_dict(self) -> Dict[str, object]:
        """The JSON-artifact row for this replay."""
        return {
            "scenario": self.spec.name,
            "seed": self.seed,
            "engine": self.engine,
            "events": len(self.events),
            "population": self.report.final_population,
            "availability": self.availability,
            "lookups_attempted": self.report.lookups_attempted,
            "lookups_delivered": self.report.lookups_delivered,
            "messages": self.message_total,
            "messages_by_kind": dict(sorted(self.messages.items())),
            "p99_ms": self.p99_ms(),
            "checkpoint_violations": len(self.violations),
            "residual_violations": len(self.residual),
            "expect_violations": self.spec.expect_violations,
            "ok": self.ok,
            "families": {
                name: {
                    "p99_hops": stats.p99_hops(),
                    "p99_ms": stats.p99_ms(),
                    "checks": stats.checks,
                    "violations": stats.violations,
                }
                for name, stats in sorted(self.families.items())
            },
        }


def _checkpoint_oracles(
    spec: ScenarioSpec,
    seed: int,
    families: Sequence[str],
    routing_pairs: int,
    violations: List[Violation],
    stats: Dict[str, FamilyStats],
    latency,
    data=None,
    monitor=None,
) -> Callable[[SimulatedCrescendo, int, bool], None]:
    """The per-checkpoint verify battery (the fuzzer's, plus sampling)."""

    def on_checkpoint(net: SimulatedCrescendo, index: int, converged: bool) -> None:
        if not converged:
            violations.append(
                Violation(
                    check="convergence",
                    family="protocol",
                    message=f"checkpoint {index}: stabilization did not converge",
                    level=index,
                )
            )
        violations.extend(check_protocol_state(net))
        if data is not None:
            violations.extend(check_durability(net, data, monitor))
        live = sorted(n for n, node in net.nodes.items() if node.alive)
        paths = [net.nodes[n].path for n in live]
        hierarchy = Hierarchy()
        for node_id, path in zip(live, paths):
            hierarchy.place(node_id, path)
        rng = random.Random(
            f"scenario-checkpoint:{spec.name}:{seed}:{index}"
        )
        for family in families:
            static = build_family(
                family,
                net.space,
                hierarchy=None if family in PREFIX_FAMILIES else hierarchy,
                rng=rng,
                domain_paths=paths,
            )
            fam = stats[family]
            found = run_checks(static)
            fam.checks += 1
            fam.violations += len(found)
            violations.extend(found)
            if routing_pairs and static.size >= 2:
                ids = static.node_ids
                pairs = [
                    (ids[rng.randrange(len(ids))], ids[rng.randrange(len(ids))])
                    for _ in range(routing_pairs)
                ]
                differences = compare_routing(static, pairs)
                fam.violations += len(differences)
                violations.extend(differences)
                table = None if family in PREFIX_FAMILIES else latency
                batch = batch_route(static, pairs, paths=True, latency=table)
                for idx, route in enumerate(batch.routes()):
                    if not route.success:
                        continue
                    fam.hops.append(len(route.path) - 1)
                    if table is not None:
                        fam.ms.append(float(batch.latency_ms[idx]))

    return on_checkpoint


def _record_slo(
    label: str,
    report: ScheduleReport,
    lookup_ms: Sequence[float],
    lookup_levels: Sequence[int],
    direct_ms: Sequence[float],
) -> None:
    """Land delivered-lookup latencies in the standard slo.* instruments."""
    registry = obs_metrics.active_registry()
    if registry is None:
        return
    registry.counter(f"slo.samples.{label}").inc(report.lookups_attempted)
    registry.counter(f"slo.delivered.{label}").inc(report.lookups_delivered)
    if not lookup_ms:
        return
    registry.histogram(f"slo.lookup_ms.{label}").observe_many(lookup_ms)
    registry.histogram(f"slo.direct_ms.{label}").observe_many(direct_ms)
    by_level: Dict[int, List[int]] = {}
    for idx, level in enumerate(lookup_levels):
        by_level.setdefault(level, []).append(idx)
    for level, indices in sorted(by_level.items()):
        registry.histogram(f"slo.lookup_ms.{label}.L{level}").observe_many(
            [lookup_ms[i] for i in indices]
        )
        registry.histogram(f"slo.direct_ms.{label}.L{level}").observe_many(
            [direct_ms[i] for i in indices]
        )


def run_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    engine: str = "auto",
    families: Sequence[str] = MATRIX_FAMILIES,
    routing_pairs: int = 12,
    events: Optional[Sequence[Event]] = None,
    latency: bool = True,
    slo_label: Optional[str] = None,
) -> ScenarioResult:
    """Replay one scenario with the oracle battery attached.

    ``events`` overrides the compiled schedule (fixture replay, shrunk
    sub-schedules); ``latency=False`` skips the topology attach and all
    millisecond accounting (hops and oracles still run).  ``slo_label``
    overrides the scenario name as the ``slo.*`` instrument label.
    """
    event_list = (
        compile_scenario(spec, seed) if events is None else list(events)
    )
    table = None
    node_paths: Dict[int, DomainPath] = {}
    if latency:
        topology, node_paths = scenario_latency(spec, seed, event_list)
        table = topology.latency_table()
    net = bootstrap_scenario(spec, seed, engine=engine)
    data = monitor = None
    if spec.data_replicas is not None:
        from ..perf.storage import FastDataLayer

        data = FastDataLayer(net, replicas=spec.data_replicas)
        monitor = DurabilityMonitor(net, data)
    violations: List[Violation] = []
    stats = {family: FamilyStats() for family in families}
    report = run_schedule(
        net,
        event_list,
        on_checkpoint=_checkpoint_oracles(
            spec, seed, families, routing_pairs, violations, stats,
            table, data, monitor,
        ),
        data=data,
    )
    residual = check_protocol_state(net)
    lookup_ms: List[float] = []
    lookup_levels: List[int] = []
    direct_ms: List[float] = []
    if table is not None:
        for (delivered, _terminal), path in zip(
            report.lookup_outcomes, report.lookup_paths
        ):
            if not delivered:
                continue
            lookup_ms.append(table.path_ms(path))
            src, terminal = path[0], path[-1]
            lookup_levels.append(
                len(lca(node_paths[src], node_paths[terminal]))
            )
            direct_ms.append(table.node_latency(src, terminal))
    result = ScenarioResult(
        spec=spec,
        seed=seed,
        engine=engine,
        events=event_list,
        report=report,
        violations=violations,
        residual=residual,
        families=stats,
        lookup_ms=lookup_ms,
        lookup_levels=lookup_levels,
        messages=dict(net.msgs.stats.counts),
    )
    _record_slo(
        slo_label or spec.name, report, lookup_ms, lookup_levels, direct_ms
    )
    return result


def crosscheck_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    events: Optional[Sequence[Event]] = None,
    latency: bool = True,
) -> ProtocolComparison:
    """Replay the scenario through *both* engines and demand equivalence.

    Identical lookup outcomes, hop paths, per-kind message counts and
    final protocol state — plus bit-identical per-lookup latency totals
    (scalar fold vs. vectorized gather) when ``latency`` is on.
    """
    event_list = (
        compile_scenario(spec, seed) if events is None else list(events)
    )
    table = None
    if latency:
        topology, _ = scenario_latency(spec, seed, event_list)
        table = topology.latency_table()
    return compare_protocols(
        lambda engine: bootstrap_scenario(spec, seed, engine=engine),
        event_list,
        latency=table,
    )


# -------------------------------------------------------------- the matrix


@dataclass
class MatrixResult:
    """Every scenario's result plus the rendered artifact tables."""

    scale: str
    seed: int
    engine: str
    results: Dict[str, ScenarioResult]
    #: scenario -> engines-equivalent verdict (empty unless cross-checked).
    crosschecks: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results.values()) and all(
            self.crosschecks.values()
        )

    def summary_table(self) -> Table:
        """One row per scenario: availability, cost, p99, status."""
        table = Table(
            f"Scenario matrix (scale={self.scale} seed={self.seed} "
            f"engine={self.engine})",
            (
                "scenario", "events", "pop", "avail", "p99 ms",
                "messages", "violations", "status",
            ),
        )
        for name, r in self.results.items():
            status = "ok" if r.ok else "FAIL"
            if r.spec.expect_violations and r.ok:
                status = "tripped (expected)"
            if name in self.crosschecks and not self.crosschecks[name]:
                status = "ENGINES DIVERGE"
            table.add_row(
                name,
                len(r.events),
                r.report.final_population,
                f"{r.availability:.3f}",
                r.p99_ms(),
                r.message_total,
                len(r.violations) + len(r.residual),
                status,
            )
        return table

    def family_table(self) -> Table:
        """One row per scenario x family: p99 hops/ms, oracle tallies."""
        table = Table(
            "Scenario x family routing (per-checkpoint rebuild samples)",
            ("scenario", "family", "p99 hops", "p99 ms", "violations"),
        )
        for name, r in self.results.items():
            for family, stats in sorted(r.families.items()):
                table.add_row(
                    name,
                    family,
                    stats.p99_hops(),
                    stats.p99_ms(),
                    stats.violations,
                )
        return table

    def to_dict(self) -> Dict[str, object]:
        """The full matrix document (what the JSON artifact contains)."""
        return {
            "scale": self.scale,
            "seed": self.seed,
            "engine": self.engine,
            "ok": self.ok,
            "scenarios": {
                name: {
                    **r.to_dict(),
                    **(
                        {"engines_equivalent": self.crosschecks[name]}
                        if name in self.crosschecks
                        else {}
                    ),
                }
                for name, r in self.results.items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The matrix document as JSON text."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    def to_markdown(self) -> str:
        """Both tables plus verdicts as a markdown artifact."""
        lines = [
            "# Scenario matrix",
            "",
            f"scale `{self.scale}` · seed `{self.seed}` · engine "
            f"`{self.engine}` · overall: "
            + ("**ok**" if self.ok else "**FAILED**"),
            "",
            self.summary_table().to_markdown(),
            "",
            self.family_table().to_markdown(),
        ]
        if self.crosschecks:
            verdicts = ", ".join(
                f"{name}: {'equivalent' if ok else 'DIVERGED'}"
                for name, ok in self.crosschecks.items()
            )
            lines += ["", f"Engine cross-check — {verdicts}"]
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """Both tables as aligned terminal text."""
        return (
            self.summary_table().render()
            + "\n\n"
            + self.family_table().render()
        )


def run_matrix(
    names: Optional[Sequence[str]] = None,
    scale: str = "smoke",
    seed: int = 0,
    engine: str = "auto",
    families: Sequence[str] = MATRIX_FAMILIES,
    routing_pairs: int = 12,
    cross_check: bool = False,
    latency: bool = True,
) -> MatrixResult:
    """Run catalog scenarios and collect the matrix artifact."""
    if names is None:
        names = list(CATALOG)
    unknown = [n for n in names if n not in CATALOG]
    if unknown:
        raise ValueError(
            f"unknown scenarios {unknown} (known: {', '.join(CATALOG)})"
        )
    results: Dict[str, ScenarioResult] = {}
    crosschecks: Dict[str, bool] = {}
    for name in names:
        spec = CATALOG[name](scale)
        results[name] = run_scenario(
            spec,
            seed=seed,
            engine=engine,
            families=families,
            routing_pairs=routing_pairs,
            latency=latency,
        )
        if cross_check:
            comparison = crosscheck_scenario(
                spec, seed=seed, events=results[name].events, latency=latency
            )
            crosschecks[name] = comparison.equivalent
    return MatrixResult(
        scale=scale,
        seed=seed,
        engine=engine,
        results=results,
        crosschecks=crosschecks,
    )
