"""Scenario zoo: named production-traffic shapes as replayable schedules.

The paper's hierarchical designs are motivated by exactly the failure
shapes a flat DHT handles badly — correlated regional failure, whole-domain
partition, skewed per-domain load — but random churn mixes rarely produce
them.  This package makes those shapes first-class:

- :mod:`repro.scenarios.dsl` — a declarative phase language
  (:class:`~repro.scenarios.dsl.ScenarioSpec` /
  :class:`~repro.scenarios.dsl.Phase`) compiling to deterministic
  :class:`~repro.simulation.churn.Event` schedules, JSON round-trippable
  on the same substrate as :mod:`repro.verify.fuzz` fixtures and
  shrinkable with the same ddmin pass;
- :mod:`repro.scenarios.catalog` — the named scenarios: flash crowd,
  diurnal churn waves, correlated regional failure, partition/rejoin
  (plus its no-repair negative control), slow massive join;
- :mod:`repro.scenarios.runner` — replay through either maintenance
  engine with per-checkpoint invariant-registry, delivery and durability
  oracles, latency-true ``slo.*`` accounting, and the family x scenario
  matrix artifact behind ``python -m repro.scenarios``.
"""

from .catalog import CATALOG, scenario_names
from .dsl import (
    Phase,
    ScenarioSpec,
    bootstrap_placement,
    bootstrap_scenario,
    compile_scenario,
    scenario_from_json,
    scenario_to_json,
)
from .runner import (
    MATRIX_FAMILIES,
    MatrixResult,
    ScenarioResult,
    crosscheck_scenario,
    run_matrix,
    run_scenario,
)

__all__ = [
    "CATALOG",
    "MATRIX_FAMILIES",
    "MatrixResult",
    "Phase",
    "ScenarioResult",
    "ScenarioSpec",
    "bootstrap_placement",
    "bootstrap_scenario",
    "compile_scenario",
    "crosscheck_scenario",
    "run_matrix",
    "run_scenario",
    "scenario_from_json",
    "scenario_names",
    "scenario_to_json",
]
