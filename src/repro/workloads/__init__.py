"""Workload generators: query pairs (random / locality-scoped / Zipf keys)
and the Figure 9 multicast-tree workload."""

from .multicast import (
    count_interdomain_edges,
    multicast_interdomain_profile,
    multicast_tree,
)
from .queries import locality_pair, locality_pairs, random_pair, zipf_key_workload

__all__ = [
    "count_interdomain_edges",
    "locality_pair",
    "locality_pairs",
    "multicast_interdomain_profile",
    "multicast_tree",
    "random_pair",
    "zipf_key_workload",
]
