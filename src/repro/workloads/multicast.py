"""Multicast-tree workload (Figure 9 of the paper).

Pick 1000 random sources and route a query from each to one common random
destination; the union of the 1000 paths is a multicast tree rooted at the
destination (data flows along the reversed query paths).  The bandwidth
metric is the number of *inter-domain* edges in that tree, for domains
defined at each level of the hierarchy — inter-domain links are the
expensive, bottleneck-prone ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple

from ..core.hierarchy import Hierarchy
from ..core.network import DHTNetwork
from ..core.routing import Route

Router = Callable[[DHTNetwork, int, int], Route]


def multicast_tree(
    network: DHTNetwork,
    router: Router,
    sources: Sequence[int],
    dest: int,
) -> Set[Tuple[int, int]]:
    """Union of the query paths' edges from every source to ``dest``."""
    edges: Set[Tuple[int, int]] = set()
    for src in sources:
        if src == dest:
            continue
        route = router(network, src, dest)
        if not route.success:
            continue
        edges.update(route.edges())
    return edges


def count_interdomain_edges(
    hierarchy: Hierarchy, edges: Set[Tuple[int, int]], depth: int
) -> int:
    """Edges whose endpoints lie in different depth-``depth`` domains."""
    count = 0
    for a, b in edges:
        if hierarchy.path_of(a)[:depth] != hierarchy.path_of(b)[:depth]:
            count += 1
    return count


def multicast_interdomain_profile(
    network: DHTNetwork,
    router: Router,
    sources: Sequence[int],
    dest: int,
    depths: Sequence[int] = (1, 2, 3),
) -> Dict[int, int]:
    """Inter-domain edge counts of one multicast tree at several depths."""
    edges = multicast_tree(network, router, sources, dest)
    return {
        depth: count_interdomain_edges(network.hierarchy, edges, depth)
        for depth in depths
    }
