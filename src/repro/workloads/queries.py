"""Query workloads: random pairs, locality-scoped pairs, popularity skew.

The Section 5.3 experiment ("latency as a function of query locality") draws
a source at random and a destination from the source's level-L domain: a
"Top Level" query may target anything; a "Level 1" query targets the
source's transit domain; and so on down the hierarchy.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.hierarchy import Hierarchy


def random_pair(node_ids: Sequence[int], rng) -> Tuple[int, int]:
    """Two distinct nodes uniformly at random."""
    if len(node_ids) < 2:
        raise ValueError("need at least two nodes")
    src = rng.choice(node_ids)
    dst = rng.choice(node_ids)
    while dst == src:
        dst = rng.choice(node_ids)
    return src, dst


def locality_pair(
    hierarchy: Hierarchy, node_ids: Sequence[int], rng, level: int
) -> Tuple[int, int]:
    """A random pair whose destination lies in the source's level-``level`` domain.

    ``level`` counts domain depth from the root: 0 is a top-level query
    (destination anywhere), 1 restricts the destination to the source's
    depth-1 domain, etc.  Sources without enough same-domain peers are
    re-drawn.
    """
    for _ in range(10_000):
        src = rng.choice(node_ids)
        path = hierarchy.path_of(src)
        depth = min(level, len(path))
        members = hierarchy.members(path[:depth])
        candidates = [m for m in members if m != src]
        if candidates:
            return src, rng.choice(candidates)
    raise RuntimeError(f"no level-{level} pair found; domains too small")


def locality_pairs(
    hierarchy: Hierarchy,
    node_ids: Sequence[int],
    rng,
    level: int,
    count: int,
) -> Iterator[Tuple[int, int]]:
    """Yield ``count`` locality-scoped pairs (see :func:`locality_pair`)."""
    for _ in range(count):
        yield locality_pair(hierarchy, node_ids, rng, level)


def zipf_key_workload(
    universe: int, count: int, rng, exponent: float = 0.8
) -> List[int]:
    """Key indices with Zipfian popularity (for the caching experiments).

    Returns ``count`` draws from ``range(universe)`` where the k-th most
    popular key has probability proportional to ``1/(k+1)**exponent``.
    """
    weights = [1.0 / ((k + 1) ** exponent) for k in range(universe)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    out: List[int] = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out
