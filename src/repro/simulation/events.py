"""A minimal discrete-event simulator with message accounting.

Protocol code (node joins, leaves, stabilization, lookups) runs as events on
a virtual clock; every inter-node message is delayed by a pluggable latency
model and counted by type, so tests can verify the paper's O(log n) message
bound for Crescendo joins and experiments can measure protocol traffic.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


class Simulator:
    """Event queue + virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self.events_run = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), action))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue (optionally up to virtual time ``until``).

        Returns the number of events executed.
        """
        executed = 0
        while self._queue and executed < max_events:
            when, _, action = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self.now = when
            action()
            executed += 1
        self.events_run += executed
        if executed >= max_events:
            raise RuntimeError("event budget exhausted: runaway protocol?")
        return executed

    @property
    def pending(self) -> int:
        return len(self._queue)


class ConstantLatency:
    """Every message takes the same time (default 1 unit)."""

    def __init__(self, latency: float = 1.0) -> None:
        self.latency = latency

    def __call__(self, src: int, dst: int) -> float:
        return self.latency


@dataclass
class MessageStats:
    """Per-type message counters, resettable between measurement windows."""

    counts: Counter = field(default_factory=Counter)

    def record(self, kind: str) -> None:
        """Count one message of the given type."""
        self.counts[kind] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def reset(self) -> Counter:
        """Zero the counters, returning the pre-reset snapshot."""
        snapshot = Counter(self.counts)
        self.counts.clear()
        return snapshot


class MessageLayer:
    """Delivers node-to-node messages through the simulator with latency."""

    def __init__(self, sim: Simulator, latency_model: Callable[[int, int], float]) -> None:
        self.sim = sim
        self.latency = latency_model
        self.stats = MessageStats()

    def send(self, src: int, dst: int, kind: str, action: Callable[[], None]) -> None:
        """Send one message; ``action`` runs at the destination on arrival."""
        self.stats.record(kind)
        self.sim.schedule(self.latency(src, dst), action)
