"""A minimal discrete-event simulator with message accounting.

Protocol code (node joins, leaves, stabilization, lookups) runs as events on
a virtual clock; every inter-node message is delayed by a pluggable latency
model and counted by type, so tests can verify the paper's O(log n) message
bound for Crescendo joins and experiments can measure protocol traffic.

Two queue backends share one total order (virtual time, then scheduling
sequence): the reference :class:`Simulator` keeps a single binary heap,
while :class:`FastSimulator` swaps in a :class:`CalendarQueue` — slot
buckets over virtual time, the classic O(1)-amortized discrete-event
structure — through the same ``_push``/``_peek``/``_pop`` storage methods.
Both accept two event representations: the classic zero-argument closure
(:meth:`Simulator.schedule`) and a lightweight ``(kind, args)`` tuple
(:meth:`Simulator.post`) dispatched through a handler table registered
with :meth:`Simulator.on`, which avoids allocating a closure per message
on hot paths.

Observability (:mod:`repro.obs`): a :class:`Simulator` built while a tracer
is active (or given one explicitly) emits one trace event per drained
event, carrying the virtual time; a :class:`MessageLayer` built while a
metrics registry is active mirrors its per-type message counts into
``messages.<kind>`` counters — accumulated locally and flushed per queue
drain (see :meth:`MessageStats.flush`), not per message.  With neither
attached, the only overhead is one ``is None`` check per event.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

#: A queue entry: ``(virtual time, tie-break sequence, payload)`` where the
#: payload is either a zero-argument callable or a ``(kind, args)`` tuple.
QueueItem = Tuple[float, int, object]


class CalendarQueue:
    """Slot/bucket priority queue over virtual time.

    Entries hash into buckets by ``int(when // bucket_width)``; each bucket
    is a small binary heap and the active bucket slots are kept as a sorted
    list.  With event delays clustered around the bucket width (message
    latencies are), push and pop touch O(1) entries instead of the
    O(log n) sift of one global heap.  The total order — ``(when, seq)``,
    exactly the reference heap's — is preserved because slots partition
    virtual time into disjoint, ordered ranges.
    """

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        self.bucket_width = bucket_width
        self._buckets: Dict[int, List[QueueItem]] = {}
        self._slots: List[int] = []  # sorted ids of non-empty buckets
        self._size = 0

    def push(self, item: QueueItem) -> None:
        """Insert an item into its time bucket."""
        slot = int(item[0] // self.bucket_width)
        bucket = self._buckets.get(slot)
        if bucket is None:
            self._buckets[slot] = bucket = []
            insort(self._slots, slot)
        heapq.heappush(bucket, item)
        self._size += 1

    def peek(self) -> Optional[QueueItem]:
        """Earliest item without removing it, or ``None`` if empty."""
        if not self._size:
            return None
        return self._buckets[self._slots[0]][0]

    def pop(self) -> QueueItem:
        """Remove and return the earliest item."""
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        slot = self._slots[0]
        bucket = self._buckets[slot]
        item = heapq.heappop(bucket)
        if not bucket:
            del self._buckets[slot]
            self._slots.pop(0)
        self._size -= 1
        return item

    def __len__(self) -> int:
        return self._size


class Simulator:
    """Event queue + virtual clock (reference heap backend).

    ``tracer`` defaults to the process-wide active tracer (if any) at
    construction time; pass ``tracer=None`` explicitly *after* activating a
    tracer only if you want this simulator silent — construction captures
    the active tracer, so the common case needs no wiring at all.
    """

    def __init__(self, tracer: Optional["obs_trace.Tracer"] = None) -> None:
        self.now = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self._handlers: Dict[str, Callable[..., None]] = {}
        self._drain_hooks: List[Callable[[], None]] = []
        self.events_run = 0
        self.tracer = tracer if tracer is not None else obs_trace.active_tracer()

    # ------------------------------------------------------ queue storage
    # Subclasses swap the backing structure by overriding these three
    # methods (plus ``pending``); ``run`` only goes through them.

    def _push(self, item: QueueItem) -> None:
        heapq.heappush(self._queue, item)

    def _peek(self) -> Optional[QueueItem]:
        return self._queue[0] if self._queue else None

    def _pop(self) -> QueueItem:
        return heapq.heappop(self._queue)

    @property
    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------- scheduling

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._push((self.now + delay, next(self._seq), action))

    def on(self, kind: str, handler: Callable[..., None]) -> None:
        """Register the handler dispatched for :meth:`post` events of ``kind``."""
        self._handlers[kind] = handler

    def post(self, delay: float, kind: str, *args) -> None:
        """Schedule a lightweight ``(kind, args)`` event ``delay`` from now.

        Equivalent to ``schedule(delay, lambda: handler(*args))`` but
        without allocating a closure per event; the handler registered via
        :meth:`on` is resolved at execution time.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._push((self.now + delay, next(self._seq), (kind, args)))

    def add_drain_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` at the end of every :meth:`run` call.

        The flush point for batched accounting (see
        :meth:`MessageStats.flush`)."""
        self._drain_hooks.append(hook)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue (optionally up to virtual time ``until``).

        Returns the number of events executed.  Raises ``RuntimeError`` if
        runnable events remain after ``max_events`` executions — draining
        the queue with *exactly* the budget is not an error.
        """
        executed = 0
        tracer = self.tracer
        while True:
            head = self._peek()
            if head is None:
                break
            when = head[0]
            if until is not None and when > until:
                break
            if executed >= max_events:
                self.events_run += executed
                self._flush_drain_hooks()
                raise RuntimeError(
                    f"event budget exhausted: {executed} events run, virtual "
                    f"time {self.now:g} reached, {self.pending} still "
                    f"queued: runaway protocol?"
                )
            _, _, payload = self._pop()
            self.now = when
            if callable(payload):
                payload()
                label = payload if tracer is not None else None
            else:
                kind, args = payload
                self._handlers[kind](*args)
                label = kind
            executed += 1
            if tracer is not None:
                self._trace_event(tracer, when, label)
        self.events_run += executed
        self._flush_drain_hooks()
        return executed

    @staticmethod
    def _action_name(label: object) -> str:
        return (
            label
            if isinstance(label, str)
            else getattr(label, "__qualname__", repr(label))
        )

    def _trace_event(
        self, tracer: "obs_trace.Tracer", when: float, label: object
    ) -> None:
        """Emit the trace record for one drained event (overridable)."""
        tracer.event("sim.event", t=when, action=self._action_name(label))

    def _flush_drain_hooks(self) -> None:
        for hook in self._drain_hooks:
            hook()


class FastSimulator(Simulator):
    """:class:`Simulator` with a :class:`CalendarQueue` backend.

    Behaviorally identical — same total event order, same API — but pop
    cost no longer grows with the global queue size.  ``bucket_width``
    should sit near the dominant message latency (default 1.0 matches
    :class:`ConstantLatency`).

    Tracing parity: the fast engine emits the same per-event ``sim.event``
    records as the reference heap — same order, same ``t``/``action``
    attrs — but buffers them during the drain and flushes one batch per
    :meth:`run` (through :meth:`Tracer.events_many`), so ``--trace`` under
    ``--engine fast`` costs one lock round-trip per drain instead of one
    per event.  Only the wall-clock ``ts`` differs (shared per batch);
    virtual time lives in the ``t`` attr either way.
    """

    def __init__(
        self,
        tracer: Optional["obs_trace.Tracer"] = None,
        bucket_width: float = 1.0,
    ) -> None:
        super().__init__(tracer)
        self._calendar = CalendarQueue(bucket_width)
        self._trace_buffer: List[Dict[str, object]] = []

    def _push(self, item: QueueItem) -> None:
        self._calendar.push(item)

    def _peek(self) -> Optional[QueueItem]:
        return self._calendar.peek()

    def _pop(self) -> QueueItem:
        return self._calendar.pop()

    @property
    def pending(self) -> int:
        return len(self._calendar)

    def _trace_event(
        self, tracer: "obs_trace.Tracer", when: float, label: object
    ) -> None:
        self._trace_buffer.append({"t": when, "action": self._action_name(label)})

    def _flush_drain_hooks(self) -> None:
        if self._trace_buffer and self.tracer is not None:
            self.tracer.events_many("sim.event", self._trace_buffer)
            self._trace_buffer = []
        super()._flush_drain_hooks()


class ConstantLatency:
    """Every message takes the same time (default 1 unit)."""

    def __init__(self, latency: float = 1.0) -> None:
        self.latency = latency

    def __call__(self, src: int, dst: int) -> float:
        return self.latency


@dataclass
class MessageStats:
    """Per-type message counters, resettable between measurement windows.

    Two mirroring hooks feed an external consumer such as a
    :class:`repro.obs.metrics.MetricsRegistry`:

    - ``sink`` is called with each recorded kind, per message (the
      original immediate hook, see
      :meth:`~repro.obs.metrics.MetricsRegistry.message_sink`);
    - ``batch_sink`` receives a ``{kind: count}`` mapping on each
      :meth:`flush` — counts accumulate locally in ``pending`` between
      flushes, so the hot recording path is one Counter increment (see
      :meth:`~repro.obs.metrics.MetricsRegistry.message_sink_batch`).

    When both are set, ``sink`` wins (no double counting).
    """

    counts: Counter = field(default_factory=Counter)
    sink: Optional[Callable[[str], None]] = None
    batch_sink: Optional[Callable[[Mapping[str, int]], None]] = None
    pending: Counter = field(default_factory=Counter)

    def record(self, kind: str) -> None:
        """Count one message of the given type."""
        self.counts[kind] += 1
        if self.sink is not None:
            self.sink(kind)
        elif self.batch_sink is not None:
            self.pending[kind] += 1

    def record_many(self, kind: str, n: int) -> None:
        """Count ``n`` messages of one type (one increment, same mirroring)."""
        if n <= 0:
            return
        self.counts[kind] += n
        if self.sink is not None:
            for _ in range(n):
                self.sink(kind)
        elif self.batch_sink is not None:
            self.pending[kind] += n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def flush(self) -> None:
        """Push counts accumulated since the last flush to ``batch_sink``."""
        if self.batch_sink is not None and self.pending:
            self.batch_sink(self.pending)
            self.pending.clear()

    def reset(self) -> Counter:
        """Zero the counters, returning the pre-reset snapshot.

        Pending batched counts are flushed first so no mirrored count is
        lost across a measurement-window boundary.
        """
        self.flush()
        snapshot = Counter(self.counts)
        self.counts.clear()
        return snapshot


class MessageLayer:
    """Delivers node-to-node messages through the simulator with latency.

    ``metrics`` defaults to the process-wide active registry (if any) at
    construction time; when present, per-kind message counts are mirrored
    into the registry's ``messages.<kind>`` counters — accumulated locally
    and flushed when the simulator drains its queue (a drain hook is
    registered here) or when :meth:`MessageStats.flush`/``reset`` runs,
    not on every message.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_model: Callable[[int, int], float],
        metrics: Optional["obs_metrics.MetricsRegistry"] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency_model
        registry = metrics if metrics is not None else obs_metrics.active_registry()
        self.stats = MessageStats(
            batch_sink=(
                registry.message_sink_batch() if registry is not None else None
            )
        )
        if registry is not None:
            sim.add_drain_hook(self.stats.flush)

    def send(self, src: int, dst: int, kind: str, action: Callable[[], None]) -> None:
        """Send one message; ``action`` runs at the destination on arrival."""
        self.stats.record(kind)
        self.sim.schedule(self.latency(src, dst), action)
